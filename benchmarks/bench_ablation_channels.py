"""Ablation A1 — conservative vs optimistic channels.

"Pia allows for both possibilities through conservative and optimistic
channels" (paper 2.2.2).  The trade: conservative channels pay safe-time
traffic and stalls on every advance; optimistic channels run free but pay
checkpoints and, when communication does arrive unexpectedly, rollbacks.

The sweep varies how far the receiving subsystem can run ahead (its
private busy-work) for a fixed message stream, and reports stalls,
safe-time requests, rollbacks and events for both modes.
"""

import pytest

from repro.bench import Table, assert_order, format_count, streaming_pair
from repro.distributed import ChannelMode

MESSAGES = 30
PERIOD = 1.0
RUN_AHEAD = {"none": 0.0, "some": 10.0, "lots": 60.0}


def _run(mode, work):
    cosim = streaming_pair(
        MESSAGES, PERIOD, mode=mode, consumer_work=work,
        snapshot_interval=5.0 if mode is ChannelMode.OPTIMISTIC else None)
    cosim.run()
    consumer = cosim.component("consumer")
    assert len(consumer.received) == MESSAGES
    return {
        "stalls": cosim.stalls(),
        "safe_time": cosim.safe_time_requests(),
        "rollbacks": len(cosim.recovery.rollbacks),
        "messages": cosim.transport.accounting.total_messages,
        "events": sum(ss.scheduler.dispatched
                      for ss in cosim.subsystems.values()),
        "received": list(consumer.received),
    }


@pytest.fixture(scope="module")
def ablation():
    rows = {}
    for label, work in RUN_AHEAD.items():
        for mode in (ChannelMode.CONSERVATIVE, ChannelMode.OPTIMISTIC):
            rows[(label, mode.value)] = _run(mode, work)
    return rows


def test_ablation_report(ablation):
    table = Table("A1 — conservative vs optimistic channels",
                  ["consumer run-ahead", "mode", "stalls", "safe-time reqs",
                   "rollbacks", "transport msgs", "events"])
    for (label, mode), row in ablation.items():
        table.add(label, mode, format_count(row["stalls"]),
                  format_count(row["safe_time"]),
                  format_count(row["rollbacks"]),
                  format_count(row["messages"]),
                  format_count(row["events"]))
    table.note("optimism trades safe-time chatter for rollbacks once the "
               "receiver can actually run ahead")
    table.show()
    table.save("ablation_channels")


def test_results_identical_across_modes(ablation):
    for label in RUN_AHEAD:
        conservative = ablation[(label, "conservative")]["received"]
        optimistic = ablation[(label, "optimistic")]["received"]
        assert conservative == optimistic, label


def test_conservative_pays_safe_time_never_rolls_back(ablation):
    for (label, mode), row in ablation.items():
        if mode == "conservative":
            assert row["rollbacks"] == 0
            assert row["safe_time"] > 0


def test_optimism_rolls_back_only_under_run_ahead(ablation):
    assert ablation[("none", "optimistic")]["rollbacks"] == 0
    assert ablation[("lots", "optimistic")]["rollbacks"] >= 1


def test_optimism_cuts_safe_time_traffic(ablation):
    for label in RUN_AHEAD:
        assert ablation[(label, "optimistic")]["safe_time"] <= \
            ablation[(label, "conservative")]["safe_time"]


def test_benchmark_both_modes(benchmark):
    def once():
        return (_run(ChannelMode.CONSERVATIVE, 10.0)["events"],
                _run(ChannelMode.OPTIMISTIC, 10.0)["events"])

    benchmark.pedantic(once, rounds=1, iterations=1)
