"""Ablation A2 — checkpoint interval vs rollback cost.

Optimistic channels "require each subsystem to occasionally save state so
that it can fully recover if a consistency error occurs" (paper 2.2.2.2),
and "the only impact could be more expensive restores if optimistic
channels are poorly placed".  The knob is how often to snapshot: frequent
snapshots cost marks and storage, sparse snapshots make every rollback
rewind further.

The sweep holds the workload fixed (a consumer running far ahead of a
producer) and varies ``snapshot_interval``.
"""

import pytest

from repro.bench import Table, format_bytes, format_count, streaming_pair
from repro.distributed import ChannelMode

INTERVALS = [2.0, 5.0, 10.0, 25.0]
MESSAGES = 25


def _run(interval):
    cosim = streaming_pair(MESSAGES, 1.0, mode=ChannelMode.OPTIMISTIC,
                           consumer_work=80.0, snapshot_interval=interval)
    cosim.run()
    consumer = cosim.component("consumer")
    assert len(consumer.received) == MESSAGES
    snapshots = len(cosim.registry.snapshots)
    storage = sum(ss.checkpoints.storage_bytes()
                  for ss in cosim.subsystems.values())
    rollback_distances = [
        restored for __, ___, restored in cosim.recovery.rollbacks]
    return {
        "snapshots": snapshots,
        "storage": storage,
        "rollbacks": len(cosim.recovery.rollbacks),
        "events": sum(ss.scheduler.dispatched
                      for ss in cosim.subsystems.values()),
        "received": list(consumer.received),
    }


@pytest.fixture(scope="module")
def ablation():
    return {interval: _run(interval) for interval in INTERVALS}


def test_ablation_report(ablation):
    table = Table("A2 — snapshot interval vs recovery cost (optimistic)",
                  ["interval (virt s)", "snapshots", "storage",
                   "rollbacks", "events (incl. re-execution)"])
    for interval, row in ablation.items():
        table.add(f"{interval:g}", format_count(row["snapshots"]),
                  format_bytes(row["storage"]),
                  format_count(row["rollbacks"]),
                  format_count(row["events"]))
    table.note("sparser snapshots => fewer images but longer re-execution "
               "after each straggler")
    table.show()
    table.save("ablation_checkpoint")


def test_results_independent_of_interval(ablation):
    results = {tuple(row["received"]) for row in ablation.values()}
    assert len(results) == 1


def test_every_interval_recovers(ablation):
    for interval, row in ablation.items():
        assert row["rollbacks"] >= 1, interval
        assert row["snapshots"] >= 1, interval


def test_denser_snapshots_store_more(ablation):
    assert ablation[2.0]["snapshots"] >= ablation[25.0]["snapshots"]
    assert ablation[2.0]["storage"] >= ablation[25.0]["storage"]


def test_rollbacks_reexecute_events(ablation):
    """Re-execution shows up as extra dispatched events: the run with the
    most rollbacks dispatches the most events, the one with the fewest
    dispatches the least."""
    by_rollbacks = sorted(ablation.values(), key=lambda r: r["rollbacks"])
    assert by_rollbacks[0]["events"] <= by_rollbacks[-1]["events"]


def test_benchmark_mid_interval(benchmark):
    benchmark.pedantic(lambda: _run(5.0), rounds=1, iterations=1)
