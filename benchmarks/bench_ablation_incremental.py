"""Ablation A3 — full vs incremental checkpoints.

"Although Pia's current checkpoint facility saves complete component
images, we plan to look into incremental checkpoints at some point in the
future" (paper 2.1.2).  This bench implements that future: the same
checkpoint schedule is stored through the full-image store and the
incremental (diff-chain) store, comparing storage and restore fidelity.
"""

import pytest

from repro.core import (
    Advance,
    CheckpointStore,
    IncrementalCheckpointStore,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
    Simulator,
)

CHECKPOINTS = 16
BULK_WORDS = 4000


class BigStateWorker(ProcessComponent):
    """Mostly-constant bulk state plus a small hot set — the profile that
    favours incremental images."""

    def __init__(self, name):
        super().__init__(name)
        self.bulk = list(range(BULK_WORDS))
        self.hot = 0
        self.add_port("in", PortDirection.IN)

    def run(self):
        while True:
            t, value = yield Receive("in")
            self.hot += value     # the hot set; self.bulk stays constant


class Feeder(ProcessComponent):
    def __init__(self, name, count):
        super().__init__(name)
        self.count = count
        self.add_port("out", PortDirection.OUT)

    def run(self):
        for index in range(self.count):
            yield Advance(1.0)
            yield Send("out", index)


def _run(store):
    sim = Simulator(checkpoint_store=store)
    worker = sim.add(BigStateWorker("worker"))
    feeder = sim.add(Feeder("feeder", CHECKPOINTS * 2))
    sim.wire("n", feeder.port("out"), worker.port("in"))
    ids = []
    for step in range(CHECKPOINTS):
        sim.run(until=float(2 * step + 1))
        ids.append(sim.checkpoint())
    sim.run()
    final_hot = worker.hot
    # restore the middle checkpoint and re-run to verify identical end state
    sim.restore(ids[CHECKPOINTS // 2])
    sim.run()
    assert worker.hot == final_hot
    return store.storage_bytes(), final_hot


@pytest.fixture(scope="module")
def ablation():
    full_bytes, full_hot = _run(CheckpointStore())
    results = {"full": full_bytes}
    for full_every in (4, 8, 1000):
        size, hot = _run(IncrementalCheckpointStore(full_every=full_every))
        assert hot == full_hot
        results[f"incremental (full every {full_every})"] = size
    return results


def test_ablation_report(ablation):
    from repro.bench import Table, format_bytes
    table = Table("A3 — checkpoint storage: full vs incremental images",
                  ["store", "bytes", "vs full"])
    full = ablation["full"]
    for label, size in ablation.items():
        table.add(label, format_bytes(size), f"{size / full:.2f}x")
    table.note(f"{CHECKPOINTS} checkpoints of a component with "
               f"{BULK_WORDS} words of mostly-constant state")
    table.show()
    table.save("ablation_incremental")


def test_incremental_is_substantially_smaller(ablation):
    assert ablation["incremental (full every 1000)"] < ablation["full"] / 3


def test_periodic_full_images_cost_more_than_pure_chain(ablation):
    assert ablation["incremental (full every 4)"] >= \
        ablation["incremental (full every 1000)"]


def test_benchmark_incremental_store(benchmark):
    benchmark.pedantic(
        lambda: _run(IncrementalCheckpointStore(full_every=8)),
        rounds=1, iterations=1)
