"""Ablation A6 — static vs dynamic (optimistic) synchronous addresses.

Paper 2.1.1: if interrupt-touched addresses are known statically, mark
them synchronous up front; otherwise "the simulator can make the
optimistic assumption and treat all memory as safe", detect violations,
mark dynamically, and rewind.

The sweep varies how often the firmware touches the contested mailbox and
compares: gate waits paid by the static policy, versus rollbacks paid by
the dynamic policy — with both producing identical final state.
"""

import pytest

from repro.bench import Table, format_count
from repro.core import (
    Advance,
    FunctionComponent,
    Send,
    Simulator,
    SyncPolicy,
)
from repro.processor import InterruptController, MemRead, SoftwareComponent

MAILBOX = 0x200
READS = {"rarely": 4, "often": 16}


class PollingFirmware(SoftwareComponent):
    """Reads the mailbox between compute blocks; sums what it sees."""

    def __init__(self, name, reads, **kw):
        super().__init__(name, **kw)
        self.reads = reads
        self.observed = []

    def firmware(self):
        for __ in range(self.reads):
            yield self.timer.block(alu=40_000)        # 40 ms at 1 MHz
            value = yield MemRead(MAILBOX)
            self.observed.append(value)


class MailboxController(InterruptController):
    def __init__(self, name, memory):
        super().__init__(name, memory, base_addr=0x400)
        self.add_port("line")

    def on_event(self, port, time, value):
        self.memory.external_write(MAILBOX, value, time)


def _build(policy, reads):
    sim = Simulator()
    marks = range(MAILBOX, MAILBOX + 4) if policy is SyncPolicy.STATIC \
        else ()
    cpu = sim.add(PollingFirmware("cpu", reads, sync_policy=policy,
                                  synchronous_addresses=marks))
    ctl = sim.add(MailboxController("ctl", cpu.memory))

    def device(comp):
        for value in (11, 22, 33):
            yield Advance(0.1)
            yield Send("out", value)

    dev = sim.add(FunctionComponent("dev", device, ports={"out": "out"}))
    sim.wire("irq", dev.port("out"), ctl.port("line"))
    return sim, cpu


def _run(policy, reads):
    sim, cpu = _build(policy, reads)
    if policy is SyncPolicy.STATIC:
        sim.run()
        rollbacks = 0
    else:
        sim.run_with_recovery(sync_tables=[cpu.sync_table])
        rollbacks = sim.recoveries
    gates = sum(1 for kind, flag in cpu._log if kind == "gate" and flag)
    return {
        "observed": list(cpu.observed),
        "rollbacks": rollbacks,
        "gates": gates,
        "dynamic_marks": len(cpu.sync_table.dynamic_marks),
        "events": sim.subsystem.scheduler.dispatched,
    }


@pytest.fixture(scope="module")
def ablation():
    rows = {}
    for label, reads in READS.items():
        for policy in (SyncPolicy.STATIC, SyncPolicy.OPTIMISTIC):
            rows[(label, policy.value)] = _run(policy, reads)
    return rows


def test_ablation_report(ablation):
    table = Table("A6 — interrupt handling: static vs dynamic sync marks",
                  ["mailbox reads", "policy", "gated waits", "rollbacks",
                   "dynamic marks", "events"])
    for (label, policy), row in ablation.items():
        table.add(label, policy, format_count(row["gates"]),
                  format_count(row["rollbacks"]),
                  format_count(row["dynamic_marks"]),
                  format_count(row["events"]))
    table.note("static marking pays a gate per access; the optimistic "
               "policy pays rollbacks only when a late write really lands")
    table.show()
    table.save("ablation_interrupts")


def test_final_state_identical(ablation):
    for label in READS:
        static = ablation[(label, "static")]["observed"]
        dynamic = ablation[(label, "optimistic")]["observed"]
        assert static == dynamic, label


def test_static_gates_dynamic_rolls_back(ablation):
    for label in READS:
        assert ablation[(label, "static")]["gates"] > 0
        assert ablation[(label, "static")]["rollbacks"] == 0
        assert ablation[(label, "optimistic")]["rollbacks"] >= 1
        assert ablation[(label, "optimistic")]["dynamic_marks"] >= 1


def test_benchmark_recovery_path(benchmark):
    benchmark.pedantic(lambda: _run(SyncPolicy.OPTIMISTIC, 8),
                       rounds=1, iterations=1)
