"""Ablation A7 — channel delay as lookahead.

A channel's virtual delay is also the safe-time protocol's *lookahead*:
every grant gets the delay added on top of the peer's floor (paper
2.2.2.1: the reported time plus the channel crossing).  The classic
conservative-PDES result is that lookahead buys parallelism: the more of
it, the fewer safe-time consultations per event.  This sweep measures
exactly that on a fixed ping-pong workload.
"""

import pytest

from repro.bench import Table, format_count
from repro.core import Advance, FunctionComponent, Receive, Send
from repro.distributed import CoSimulation

ROUNDS = 20
DELAYS = [0.0, 0.05, 0.25, 1.0]


def _run(delay):
    cosim = CoSimulation()
    ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
    ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")

    def ping(comp):
        # Sends, then keeps doing fine-grained local work while the reply
        # is in flight: exactly the shape where lookahead lets the local
        # steps run without re-consulting the peer.
        from repro.core import WaitUntil
        comp.times = []
        for index in range(ROUNDS):
            yield Advance(1.0)
            yield Send("tx", index)
            for __ in range(4):
                yield WaitUntil(comp.local_time + 0.05)
            t, v = yield Receive("rx")
            comp.times.append(t)

    def pong(comp):
        while True:
            t, v = yield Receive("rx")
            yield Advance(0.25)
            yield Send("tx", v)

    a = FunctionComponent("ping", ping, ports={"tx": "out", "rx": "in"})
    b = FunctionComponent("pong", pong, ports={"tx": "out", "rx": "in"})
    ss_a.add(a)
    ss_b.add(b)
    channel = cosim.connect(ss_a, ss_b, delay=delay)
    channel.split_net(ss_a.wire("f", a.port("tx")),
                      ss_b.wire("f", b.port("rx")))
    channel.split_net(ss_b.wire("r", b.port("tx")),
                      ss_a.wire("r", a.port("rx")))
    cosim.run()
    assert len(a.times) == ROUNDS
    events = sum(ss.scheduler.dispatched for ss in cosim.subsystems.values())
    return {
        "safe_time": cosim.safe_time_requests(),
        "stalls": cosim.stalls(),
        "events": events,
        "round_trip": a.times[0],
        "final": a.times[-1],
    }


@pytest.fixture(scope="module")
def ablation():
    return {delay: _run(delay) for delay in DELAYS}


def test_ablation_report(ablation):
    table = Table("A7 — channel delay as conservative lookahead",
                  ["channel delay", "safe-time reqs", "reqs/event",
                   "stalls", "first round trip"])
    for delay, row in ablation.items():
        table.add(f"{delay:g}", format_count(row["safe_time"]),
                  f"{row['safe_time'] / row['events']:.2f}",
                  format_count(row["stalls"]),
                  f"t={row['round_trip']:g}")
    table.note("more lookahead => fewer consultations; the virtual round "
               "trip grows by 2x the delay, the classic PDES trade")
    table.show()
    table.save("ablation_lookahead")


def test_lookahead_reduces_safe_time_traffic(ablation):
    assert ablation[1.0]["safe_time"] < ablation[0.0]["safe_time"]


def test_monotone_improvement(ablation):
    requests = [ablation[d]["safe_time"] for d in DELAYS]
    assert all(b <= a for a, b in zip(requests, requests[1:]))


def test_delay_shows_up_in_virtual_time(ablation):
    # reply lands at 1.0 compute + delay + 0.25 echo + delay, but the
    # ping side consumes it no earlier than its local work (1.0 + 0.2)
    for delay in DELAYS:
        assert ablation[delay]["round_trip"] == \
            pytest.approx(max(1.25 + 2 * delay, 1.2))


def test_benchmark_zero_vs_full_lookahead(benchmark):
    benchmark.pedantic(lambda: (_run(0.0), _run(1.0)),
                       rounds=1, iterations=1)
