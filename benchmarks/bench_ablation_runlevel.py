"""Ablation A4 — what each detail level costs on the wire.

The paper's selective-focus principle: "it allows the designer to reduce
the communication bandwidth at times when detail isn't required"
(section 2).  For the WubbleU page payload this bench reports, per detail
level (including a user-defined assertion-based level), the wire values,
nominal wire bytes and modelled transfer time of one full page — plus the
measured event counts of an actual simulated load at each level.
"""

import pytest

from repro.apps import WubbleUConfig, build_local, build_page, run_page_load
from repro.bench import Table, format_bytes, format_count, format_seconds
from repro.protocols import ActionRule, assertion_level, packet_protocol

CONFIG = dict(total_bytes=24_000, image_count=3, image_size=64)


def _protocol_with_custom_level():
    protocol = packet_protocol("syslink")
    # A user-supplied level: small transfers in one shot, bulk in 4 KB
    # chunks with a per-chunk cost — entered as assertions (paper ref [7]).
    assertion_level(protocol, "custom", [
        ActionRule(when="size <= 256", chunks="1", dt="2e-6"),
        ActionRule(when="size > 256", chunks="ceil(size / 4096)",
                   dt="1e-5 + chunk_size / 20e6"),
    ])
    return protocol


@pytest.fixture(scope="module")
def static_costs():
    page = build_page(**CONFIG)
    protocol = _protocol_with_custom_level()
    rows = {}
    for level in ("word", "packet", "transaction", "custom"):
        codec = protocol.codec(level)
        chunks = sum(1 for __ in codec.chunk_payload(page.html)) + 1
        rows[level] = {
            "chunks": chunks,
            "wire_bytes": codec.wire_bytes(page.html),
            "time": codec.transfer_time(page.html),
        }
    return page, rows


@pytest.fixture(scope="module")
def simulated_costs():
    rows = {}
    for level in ("word", "packet", "transaction"):
        cosim, __, ___ = build_local(WubbleUConfig(level=level, **CONFIG))
        rows[level] = run_page_load(cosim, location="local", level=level)
    return rows


def test_static_report(static_costs):
    page, rows = static_costs
    table = Table(
        f"A4 — one {len(page.html)}-byte page body per detail level",
        ["level", "wire values", "nominal wire bytes", "transfer time"])
    for level, row in rows.items():
        table.add(level, format_count(row["chunks"]),
                  format_bytes(row["wire_bytes"]),
                  format_seconds(row["time"]))
    table.show()
    table.save("ablation_runlevel_static")


def test_simulated_report(simulated_costs):
    table = Table("A4 — full simulated page load per detail level",
                  ["level", "events", "cpu", "virtual time"])
    for level, result in simulated_costs.items():
        table.add(level, format_count(result.events),
                  format_seconds(result.cpu_seconds),
                  format_seconds(result.virtual_time))
    table.show()
    table.save("ablation_runlevel_simulated")


def test_word_level_orders_of_magnitude_chattier(static_costs):
    __, rows = static_costs
    assert rows["word"]["chunks"] > 100 * rows["packet"]["chunks"]
    assert rows["packet"]["chunks"] > rows["transaction"]["chunks"]


def test_custom_level_sits_between(static_costs):
    __, rows = static_costs
    assert rows["transaction"]["chunks"] <= rows["custom"]["chunks"] \
        <= rows["packet"]["chunks"]


def test_event_counts_follow_detail(simulated_costs):
    assert simulated_costs["word"].events > simulated_costs["packet"].events \
        > simulated_costs["transaction"].events


def test_payload_identical_at_every_level(simulated_costs):
    loaded = {result.bytes_loaded for result in simulated_costs.values()}
    assert loaded == {24_000}


def test_benchmark_word_level_load(benchmark):
    def once():
        cosim, __, ___ = build_local(WubbleUConfig(level="word", **CONFIG))
        return run_page_load(cosim, location="local", level="word")

    benchmark.pedantic(once, rounds=1, iterations=1)
