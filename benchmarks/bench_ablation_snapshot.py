"""Ablation A5 — Chandy-Lamport marker overhead vs system size.

Every global checkpoint costs two marks per channel plus one local image
per subsystem (paper 2.2.3).  This bench grows a chain of subsystems and
measures marks, images and wall time per snapshot, while traffic is in
flight (the hard case the algorithm exists for).
"""

import time as _time

import pytest

from repro.bench import Table, format_bytes, format_count, format_seconds
from repro.bench.workloads import ring_of_pairs

SIZES = [2, 4, 6, 8]


def _run(subsystem_count):
    cosim = ring_of_pairs(subsystem_count, messages_each=6)
    cosim.run(until=3.0)          # leave work (and messages) outstanding
    started = _time.perf_counter()
    snap_id = cosim.snapshot()
    elapsed = _time.perf_counter() - started
    snap = cosim.registry.snapshots[snap_id]
    assert snap.complete
    marks = sum(m.marks_sent for m in cosim._managers.values())
    storage = sum(ss.checkpoints.storage_bytes()
                  for ss in cosim.subsystems.values())
    cosim.run()                   # the system still finishes correctly
    tail = cosim.component(f"c{subsystem_count - 1}")
    assert tail.seen == 6
    return {
        "marks": marks,
        "channels": len(cosim.channels),
        "images": len(snap.cuts),
        "storage": storage,
        "wall": elapsed,
        "recorded": len(snap.recorded_messages()),
    }


@pytest.fixture(scope="module")
def ablation():
    return {count: _run(count) for count in SIZES}


def test_ablation_report(ablation):
    table = Table("A5 — Chandy-Lamport snapshot cost vs chain length",
                  ["subsystems", "channels", "marks sent", "local images",
                   "recorded msgs", "storage", "wall time"])
    for count, row in ablation.items():
        table.add(count, format_count(row["channels"]),
                  format_count(row["marks"]), format_count(row["images"]),
                  format_count(row["recorded"]),
                  format_bytes(row["storage"]),
                  format_seconds(row["wall"]))
    table.note("marks = 2 per channel (one per direction), as the "
               "algorithm prescribes")
    table.show()
    table.save("ablation_snapshot")


def test_two_marks_per_channel(ablation):
    for count, row in ablation.items():
        assert row["marks"] == 2 * row["channels"], count


def test_one_image_per_subsystem(ablation):
    for count, row in ablation.items():
        assert row["images"] == count


def test_cost_scales_linearly_not_worse(ablation):
    """Marks grow linearly with the chain; a quadratic blow-up would show
    as marks exceeding 2*(n-1)."""
    for count, row in ablation.items():
        assert row["channels"] == count - 1


def test_benchmark_snapshot_of_chain(benchmark):
    benchmark.pedantic(lambda: _run(6), rounds=1, iterations=1)
