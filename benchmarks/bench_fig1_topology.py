"""Fig. 1 — "Several Pia nodes connected through the Internet".

The figure shows Pia nodes holding simulator subsystems, a user interface,
and a *remote hardware connection*, all joined through the Internet.  This
bench brings up exactly that topology — three nodes: a designer's
workstation (subsystem + UI-ish component), a collaborator's workstation
(subsystem), and a lab machine serving real (simulated-Pamette) hardware —
runs a short co-simulation across it, and reports the per-link traffic the
figure's arrows correspond to.
"""

import pytest

from repro.bench import Table, format_bytes, format_count
from repro.core import Advance, FunctionComponent, Receive, Send
from repro.distributed import CoSimulation
from repro.hw import (
    HardwareComponent,
    RemoteHardwareClient,
    RemoteHardwareServer,
    SimulatedPamette,
    counter_bitstream,
)
from repro.transport import INTERNET, LAN


def _build():
    cosim = CoSimulation()
    seattle = cosim.add_node("seattle")
    boston = cosim.add_node("boston")
    lab = cosim.add_node("lab")
    cosim.set_link_model("seattle", "boston", INTERNET)
    cosim.set_link_model("seattle", "lab", INTERNET)
    cosim.set_link_model("boston", "lab", INTERNET)

    ss_a = cosim.add_subsystem(seattle, "design-a")
    ss_b = cosim.add_subsystem(boston, "design-b")

    # Subsystem A: a stimulus generator plus the remote hardware wrapper.
    def stimulus(comp):
        for index in range(20):
            yield Advance(1e-3)
            yield Send("out", index)

    stim = FunctionComponent("stim", stimulus, ports={"out": "out"})
    ss_a.add(stim)

    board = SimulatedPamette(counter_bitstream(4, irq_on_wrap=True),
                             clock_hz=100e3)
    server = RemoteHardwareServer(lab)
    server.attach("pamette0", board)
    client = RemoteHardwareClient(seattle, "lab", "pamette0")
    hw = HardwareComponent("hw", client, window=2e-3, lifetime=20e-3,
                           irq_lines=["wrap"])
    ss_a.add(hw)

    # Subsystem B: a checker consuming both streams.
    def checker(comp):
        comp.values = 0
        comp.wraps = 0
        while True:
            t, v = yield Receive("in")
            if v == "wrap":
                comp.wraps += 1
            else:
                comp.values += 1

    def wrap_relay(comp):
        while True:
            t, v = yield Receive("in")
            yield Send("out", "wrap")

    check = FunctionComponent("check", checker, ports={"in": "in"})
    relay = FunctionComponent("relay", wrap_relay,
                              ports={"in": "in", "out": "out"})
    ss_b.add(check)
    ss_a.add(relay)

    channel = cosim.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("stream", stim.port("out"),
                                relay.port("out")),
                      ss_b.wire("stream", check.port("in")))
    ss_a.wire("wrapline", hw.port("wrap"), relay.port("in"))
    return cosim, check, server


@pytest.fixture(scope="module")
def fig1():
    cosim, check, server = _build()
    cosim.run()
    return cosim, check, server


def test_fig1_report(fig1):
    cosim, check, server = fig1
    table = Table("Fig. 1 — three Pia nodes through the Internet",
                  ["link", "model", "messages", "bytes"])
    for src, dst, model, messages, size, *__ in \
            cosim.transport.accounting.report():
        table.add(f"{src} -> {dst}", model, format_count(messages),
                  format_bytes(size))
    table.note(f"sockets on lab node: {sorted(cosim.node('lab').sockets)}")
    table.show()
    table.save("fig1_topology")


def test_all_three_links_used(fig1):
    cosim, __, ___ = fig1
    links = set(cosim.transport.accounting.links)
    assert ("seattle", "boston") in links       # subsystem channel
    assert ("seattle", "lab") in links          # hardware calls
    assert ("lab", "seattle") in links          # hardware replies


def test_behaviour_crossed_the_topology(fig1):
    __, check, server = fig1
    assert check.values == 20                   # stream made it to boston
    assert check.wraps >= 1                     # hardware irq crossed twice
    assert server.calls_served > 10


def test_benchmark_bringup_and_run(benchmark):
    def once():
        cosim, check, __ = _build()
        cosim.run()
        return check.values

    assert benchmark.pedantic(once, rounds=1, iterations=1) == 20
