"""Fig. 2 — "A pair of Pia subsystems ... the dark net is split between
the subsystems".

The figure illustrates what moving components across a subsystem boundary
does: the crossed net is split into two half-nets, each gaining a hidden
port owned by a channel component.  This bench performs the move for a
sweep of cuts through the WubbleU component graph — from everything local
to everything-but-the-UI remote — and reports, for each cut, exactly the
objects Fig. 2 draws: split nets, hidden ports, channel components.
"""

import pytest

from repro.apps import WubbleUConfig, build_design
from repro.bench import Table, format_count
from repro.distributed import CoSimulation, deploy

#: Progressive cuts: each moves one more stage of the pipeline away.
CUTS = {
    "nothing remote": set(),
    "origin remote": {"Origin"},
    "server+origin remote": {"Origin", "Server"},
    "chip remote (paper)": {"Origin", "Server", "NetIf"},
    "stack too": {"Origin", "Server", "NetIf", "Stack"},
    "browser too": {"Origin", "Server", "NetIf", "Stack", "Browser"},
}


def _deploy_cut(moved):
    config = WubbleUConfig(total_bytes=12_000, image_count=2, image_size=48)
    design, __ = build_design(config)
    assignment = {name: ("far" if name in moved else "near")
                  for name in design.components}
    cosim = CoSimulation()
    deployment = deploy(design, assignment, cosim)
    return design, cosim, deployment, assignment


def _hidden_ports(cosim):
    return sum(
        1
        for subsystem in cosim.subsystems.values()
        for net in subsystem.nets.values()
        for port in net.ports if port.hidden)


def _channel_components(cosim):
    return sum(
        1
        for subsystem in cosim.subsystems.values()
        for name in subsystem.components if name.startswith("__channel"))


@pytest.fixture(scope="module")
def fig2():
    rows = {}
    for label, moved in CUTS.items():
        design, cosim, deployment, assignment = _deploy_cut(moved)
        rows[label] = {
            "cut_nets": sorted(deployment.splits),
            "predicted": sorted(design.cut_nets(assignment)),
            "hidden_ports": _hidden_ports(cosim),
            "channel_components": _channel_components(cosim),
            "channels": len(deployment.channels),
        }
    return rows


def test_fig2_report(fig2):
    table = Table("Fig. 2 — net splitting across subsystem boundaries",
                  ["cut", "split nets", "hidden ports",
                   "channel components", "channels"])
    for label, row in fig2.items():
        table.add(label, format_count(len(row["cut_nets"])),
                  format_count(row["hidden_ports"]),
                  format_count(row["channel_components"]),
                  format_count(row["channels"]))
    table.note("every split net contributes one hidden port per side, "
               "owned by the pair of channel components")
    table.show()
    table.save("fig2_net_split")


def test_split_matches_graph_cut(fig2):
    """deploy() must split exactly the nets the component-graph cut
    predicts (the paper: 'determined by a cut of the component graph')."""
    for label, row in fig2.items():
        assert row["cut_nets"] == row["predicted"], label


def test_hidden_ports_two_per_split_net(fig2):
    for label, row in fig2.items():
        assert row["hidden_ports"] == 2 * len(row["cut_nets"]), label


def test_one_channel_component_pair_per_pair(fig2):
    """One channel (a pair of dummy components) per communicating
    subsystem pair, regardless of how many nets are split."""
    for label, row in fig2.items():
        if row["cut_nets"]:
            assert row["channels"] == 1, label
            assert row["channel_components"] == 2, label
        else:
            assert row["channels"] == 0, label


def test_paper_cut_splits_the_bus(fig2):
    assert len(fig2["nothing remote"]["cut_nets"]) == 0
    # the paper's cut (chip remote) splits the bus pair plus the irq line
    assert fig2["chip remote (paper)"]["cut_nets"] == \
        ["bus_bwd", "bus_fwd", "netirq"]


def test_benchmark_deploy(benchmark):
    benchmark.pedantic(
        lambda: _deploy_cut({"Origin", "Server", "NetIf"}),
        rounds=3, iterations=1)
