"""Fig. 3 — "Subsystem 1 must stall to maintain continuous consistency".

The figure's scenario: Subsystem 1 is at time 10 with its next event at
20; Subsystem 2 is at 30/40 and may still send a message stamped, say, 15.
On a single host the simulator would just advance to 20 — distributed, it
must stall until Subsystem 2 grants a safe time past 20.

This bench builds the scenario both ways:

* **conservative** — Subsystem 1 stalls (we count the stalls) and the
  message at 15 is delivered before the local event at 20;
* **optimistic** — Subsystem 1 barrels ahead to 20, the message at 15
  arrives as a straggler, and a rollback repairs history.

Either way the observable behaviour is identical to a single-host run.

Run statistics are read from the :mod:`repro.observability` layer — the
``RunReport`` each run assembles — rather than by poking scheduler or
recovery internals.
"""

import pytest

from repro.bench import Table, format_count
from repro.core import Advance, FunctionComponent, Receive, Send, WaitUntil
from repro.distributed import ChannelMode, CoSimulation
from repro.observability import Telemetry


def _build(mode: ChannelMode, send_time: float = 15.0, *,
           telemetry_enabled: bool = True):
    cosim = CoSimulation(
        snapshot_interval=5.0 if mode is ChannelMode.OPTIMISTIC else None,
        telemetry=Telemetry(enabled=telemetry_enabled))
    # Name ss1 so it is scheduled first: under optimism it runs ahead.
    ss1 = cosim.add_subsystem(cosim.add_node("n1"), "a-ss1")
    ss2 = cosim.add_subsystem(cosim.add_node("n2"), "z-ss2")

    def sender(comp):
        yield Advance(send_time)
        yield Send("out", "x")

    def waiter(comp):
        comp.order = []
        t = yield WaitUntil(20.0)
        comp.order.append(("local-event", t))

    def listener(comp):
        comp.order = []
        t, v = yield Receive("in")
        comp.order.append(("message", t))

    send = FunctionComponent("sender", sender, ports={"out": "out"})
    wait = FunctionComponent("waiter", waiter)
    listen = FunctionComponent("listener", listener, ports={"in": "in"})
    ss2.add(send)
    ss1.add(wait)
    ss1.add(listen)
    channel = cosim.connect(ss1, ss2, mode=mode)
    channel.split_net(ss1.wire("xnet", listen.port("in")),
                      ss2.wire("xnet", send.port("out")))
    cosim.run()
    return cosim, wait, listen


@pytest.fixture(scope="module")
def fig3():
    rows = {}
    reports = {}
    for mode in (ChannelMode.CONSERVATIVE, ChannelMode.OPTIMISTIC):
        cosim, wait, listen = _build(mode)
        report = cosim.report(title=f"fig3-{mode.value}")
        rows[mode.value] = {
            "stalls": report.counter("scheduler.stalls"),
            "rollbacks": report.counter("rollback.count"),
            "message_at": listen.order[0][1],
            "event_at": wait.order[0][1],
            "safe_time_requests": report.counter("safetime.requests"),
        }
        reports[mode.value] = report
    return rows, reports


def test_fig3_report(fig3):
    rows, __ = fig3
    table = Table("Fig. 3 — the stall scenario, conservative vs optimistic",
                  ["mode", "stalls", "rollbacks", "msg delivered at",
                   "local event at", "safe-time reqs"])
    for mode, row in rows.items():
        table.add(mode, format_count(row["stalls"]),
                  format_count(row["rollbacks"]),
                  f"t={row['message_at']:g}", f"t={row['event_at']:g}",
                  format_count(row["safe_time_requests"]))
    table.note("both modes end with the message (t=15) observed and the "
               "local event (t=20) fired — identical behaviour; all "
               "statistics sourced from repro.observability RunReport")
    table.show()
    table.save("fig3_stall")


def test_conservative_stalls_at_least_once(fig3):
    rows, __ = fig3
    assert rows["conservative"]["stalls"] >= 1
    assert rows["conservative"]["rollbacks"] == 0


def test_optimistic_rolls_back_instead(fig3):
    rows, __ = fig3
    assert rows["optimistic"]["rollbacks"] >= 1


def test_behaviour_identical_across_modes(fig3):
    rows, __ = fig3
    for mode in ("conservative", "optimistic"):
        assert rows[mode]["message_at"] == 15.0
        assert rows[mode]["event_at"] == 20.0


def test_report_counters_sourced_from_observability(fig3):
    """Acceptance: nonzero dispatch, stall and per-link byte counters all
    come out of the telemetry layer, not scattered internals."""
    __, reports = fig3
    report = reports["conservative"]
    data = report.to_dict()
    assert data["counters"]["scheduler.dispatched"] > 0
    assert data["counters"]["scheduler.stalls"] >= 1
    link_bytes = {name: value for name, value in data["counters"].items()
                  if name.startswith("link.") and name.endswith(".bytes")}
    assert link_bytes, "per-link byte counters missing from the registry"
    assert all(value > 0 for value in link_bytes.values())
    # The accounting table and the counters describe the same traffic.
    assert sum(link_bytes.values()) == report.link_totals()["bytes"]
    assert data["counters"]["transport.bytes"] == \
        report.link_totals()["bytes"]


def test_rollback_recorded_in_report(fig3):
    __, reports = fig3
    data = reports["optimistic"].to_dict()
    assert data["counters"]["rollback.count"] == len(data["rollbacks"])
    assert all(row["straggler_time"] == 15.0 for row in data["rollbacks"])


def test_benchmark_conservative_scenario(benchmark):
    benchmark.pedantic(lambda: _build(ChannelMode.CONSERVATIVE),
                       rounds=3, iterations=1)


def test_benchmark_conservative_telemetry_disabled(benchmark):
    """The no-op fast path: same scenario with telemetry off, for
    side-by-side overhead comparison in the benchmark report."""
    cosim, *_ = benchmark.pedantic(
        lambda: _build(ChannelMode.CONSERVATIVE, telemetry_enabled=False),
        rounds=3, iterations=1)
    assert cosim.report().to_dict()["counters"] == {}
