"""Fig. 4 — the safe-time protocol among three subsystems.

"If SS1 is ready to advance its own subsystem time it must first get safe
times from both SS2 and SS3.  Once it has these, it must compare these to
the time value of the next event it has scheduled."

This bench reproduces the figure: SS1 holds components with local events
and conservative channels to SS2 and SS3.  We count safe-time requests per
subsystem-time advance, verify the grants observe self-restriction removal
(an idle peer grants infinity rather than deadlocking), and that SS1 never
advances past an ungranted horizon.
"""

import time

import pytest

from repro.bench import Table, format_count, record_bench
from repro.core import Advance, FunctionComponent, Receive, Send, WaitUntil
from repro.distributed import CoSimulation, compute_grant
from repro.distributed.conservative import UNBOUNDED


def _build(events_in_ss1=10, batching=False):
    cosim = CoSimulation(batching=batching)
    ss1 = cosim.add_subsystem(cosim.add_node("n1"), "ss1")
    ss2 = cosim.add_subsystem(cosim.add_node("n2"), "ss2")
    ss3 = cosim.add_subsystem(cosim.add_node("n3"), "ss3")

    def stepper(comp):
        for __ in range(events_in_ss1):
            yield WaitUntil(comp.local_time + 1.0)
            yield Send("to2", comp.local_time)
            yield Send("to3", comp.local_time)

    def echo(comp):
        comp.seen = 0
        while True:
            t, v = yield Receive("in")
            comp.seen += 1
            yield Advance(0.1)
            yield Send("back", v)

    def collect(comp):
        while True:
            yield Receive("back")

    c12 = FunctionComponent("c12", stepper,
                            ports={"to2": "out", "to3": "out"})
    c4a = FunctionComponent("c4a", collect, ports={"back": "in"})
    c4b = FunctionComponent("c4b", collect, ports={"back": "in"})
    e2 = FunctionComponent("e2", echo, ports={"in": "in", "back": "out"})
    e3 = FunctionComponent("e3", echo, ports={"in": "in", "back": "out"})
    ss1.add(c12)
    ss1.add(c4a)
    ss1.add(c4b)
    ss2.add(e2)
    ss3.add(e3)

    ch2 = cosim.connect(ss1, ss2)
    ch3 = cosim.connect(ss1, ss3)
    ch2.split_net(ss1.wire("f2", c12.port("to2")),
                  ss2.wire("f2", e2.port("in")))
    ch3.split_net(ss1.wire("f3", c12.port("to3")),
                  ss3.wire("f3", e3.port("in")))
    ch2.split_net(ss2.wire("ret2", e2.port("back")),
                  ss1.wire("ret2", c4a.port("back")))
    ch3.split_net(ss3.wire("ret3", e3.port("back")),
                  ss1.wire("ret3", c4b.port("back")))
    return cosim, ss1, ss2, ss3, ch3


@pytest.fixture(scope="module")
def fig4():
    cosim, ss1, ss2, ss3, ch3 = _build()
    # wire the ss3 return separately (ret net already attached to ch2 on
    # the ss1 side; ss3's echo uses its own net)
    cosim.run()
    return cosim, ss1, ss2, ss3


def test_fig4_report(fig4):
    cosim, ss1, ss2, ss3 = fig4
    report = cosim.report(title="fig4-safe-time")
    table = Table("Fig. 4 — safe-time requests among three subsystems",
                  ["subsystem", "events dispatched", "safe-time reqs sent",
                   "stalls", "final time"])
    for row in report.subsystems:
        table.add(row["name"],
                  format_count(row["dispatched"]),
                  format_count(row["safe_time_requests"]),
                  format_count(row["stalls"]),
                  f"t={row['time']:g}")
    total = report.counter("safetime.requests")
    events = report.counter("scheduler.dispatched")
    table.note(f"{total} requests for {events} events "
               f"({total / max(events, 1):.2f} requests/event) — "
               "statistics sourced from repro.observability RunReport")
    table.show()
    table.save("fig4_safe_time")


def test_report_totals_match_legacy_accessors(fig4):
    """The telemetry counters agree with the pre-existing ad-hoc tallies
    (which remain for API compatibility)."""
    cosim, ss1, ss2, ss3 = fig4
    report = cosim.report()
    assert report.counter("safetime.requests") == cosim.safe_time_requests()
    assert report.counter("scheduler.stalls") == cosim.stalls()
    assert report.counter("scheduler.dispatched") == \
        sum(ss.scheduler.dispatched for ss in (ss1, ss2, ss3))


def test_ss1_consults_both_peers(fig4):
    cosim, ss1, __, ___ = fig4
    requests = {ep.peer_subsystem: ep.safe_time_requests
                for ep in ss1.channels.values()}
    assert requests.get("ss2", 0) > 0
    assert requests.get("ss3", 0) > 0


def test_idle_peer_grants_unbounded(fig4):
    """Self-restriction removal: once everything is quiet, a peer's grant
    (ignoring the requester's own restriction) is unbounded — this is the
    rule that prevents the two-subsystem deadlock."""
    cosim, ss1, ss2, __ = fig4
    grant = compute_grant(ss2, "ss1")
    assert grant == UNBOUNDED


def test_echoes_happened(fig4):
    cosim, __, ss2, ss3 = fig4
    assert ss2.components["e2"].seen == 10
    assert ss3.components["e3"].seen == 10


def _timed_run(batching):
    start = time.perf_counter()
    cosim, *_ = _build(batching=batching)
    cosim.run()
    wall = time.perf_counter() - start
    return cosim.report(title=f"fig4 batching={batching}"), wall


def test_batching_comparison(fig4_batching):
    """ISSUE 3's acceptance bar on this figure: batching on must send at
    least 2x fewer transport frames and no more safe-time requests, while
    leaving the simulation itself bit-identical."""
    base, batched = fig4_batching

    def progress(report):
        return sorted((row["name"], row["time"], row["dispatched"])
                      for row in report.subsystems)

    assert progress(batched.report) == progress(base.report)
    assert batched.frames * 2 <= base.frames
    assert batched.requests <= base.requests


@pytest.fixture(scope="module")
def fig4_batching():
    class Run:
        def __init__(self, batching):
            self.report, self.wall = _timed_run(batching)
            totals = self.report.link_totals()
            self.frames = totals["frames"]
            self.bytes = totals["bytes"]
            self.requests = self.report.counter("safetime.requests")

    base, batched = Run(False), Run(True)
    record_bench("fig4_safe_time", "batching_off", report=base.report,
                 wall_seconds=base.wall)
    record_bench("fig4_safe_time", "batching_on", report=batched.report,
                 wall_seconds=batched.wall,
                 extra={"frame_ratio": base.frames / batched.frames})
    return base, batched


def test_batching_comparison_report(fig4_batching):
    base, batched = fig4_batching
    table = Table("Fig. 4 — batched fast path vs. per-message frames",
                  ["config", "frames", "bytes", "safe-time reqs",
                   "grants pushed"])
    for label, run in (("batching off", base), ("batching on", batched)):
        table.add(label, format_count(run.frames), format_count(run.bytes),
                  format_count(run.requests),
                  format_count(run.report.counter("safetime.pushed")))
    table.note(f"frame ratio: {base.frames / batched.frames:.2f}x "
               "(acceptance bar: >= 2x, identical simulation state)")
    table.show()
    table.save("fig4_batching")


def test_benchmark_safe_time_round(benchmark):
    def once():
        cosim, *_ = _build(events_in_ss1=5)
        cosim.run()
        return cosim.safe_time_requests()

    assert benchmark.pedantic(once, rounds=3, iterations=1) > 0
