"""Fig. 5 — "A communication flow diagram for the WubbleU handheld web
browser".

The figure draws the module graph; its runtime meaning is which edges
carry how much traffic during a page load.  This bench runs the load
locally and reports, per net of the module graph, the number of values
posted and (for the protocol links) the payload bytes and transfer counts
of each interface — the quantified version of the figure's arrows.
"""

import pytest

from repro.apps import WubbleUConfig, build_local, run_page_load
from repro.bench import Table, format_bytes, format_count

CONFIG = dict(total_bytes=24_000, image_count=3, image_size=64)


@pytest.fixture(scope="module")
def fig5():
    cosim, deployment, page = build_local(
        WubbleUConfig(level="packet", **CONFIG))
    result = run_page_load(cosim, location="local", level="packet")
    return cosim, page, result


def test_fig5_report(fig5):
    cosim, page, __ = fig5
    subsystem = cosim.subsystem("handheld")
    table = Table("Fig. 5 — WubbleU communication graph, traffic per edge",
                  ["net", "posts"])
    for name in sorted(subsystem.nets):
        table.add(name, format_count(subsystem.nets[name].posts))
    table.show()
    table.save("fig5_commgraph_nets")

    iface_table = Table("Fig. 5 — per-interface transfers",
                        ["interface", "level", "transfers out",
                         "chunks out", "payload bytes"])
    for comp_name in sorted(subsystem.components):
        component = subsystem.components[comp_name]
        for iface in component.interfaces.values():
            iface_table.add(iface.full_name, iface.level,
                            format_count(iface.sent_transfers),
                            format_count(iface.sent_chunks),
                            format_bytes(iface.sent_payload_bytes))
    iface_table.show()
    iface_table.save("fig5_commgraph_interfaces")


def test_every_module_graph_edge_carried_traffic(fig5):
    cosim, __, ___ = fig5
    subsystem = cosim.subsystem("handheld")
    for name, net in subsystem.nets.items():
        if name == "ui_next":
            # session-control edge: only pulses between page loads, and
            # this is a single-load run
            continue
        assert net.posts > 0, f"edge {name} carried nothing"


def test_bulk_flows_through_bus_and_air(fig5):
    cosim, page, __ = fig5
    stack = cosim.component("Stack")
    netif = cosim.component("NetIf")
    server = cosim.component("Server")
    # The full page body crossed the modem's bus interface downstream.
    assert netif.interface("bus").sent_payload_bytes >= page.total_bytes
    assert netif.dma_bytes >= page.total_bytes
    # ... and the air interface upstream carried the (small) requests.
    requests = netif.interface("air").sent_transfers
    assert requests == 1 + len(page.images)
    assert server.requests_proxied == requests


def test_request_response_counts_match(fig5):
    cosim, page, __ = fig5
    expected = 1 + len(page.images)
    assert cosim.component("Stack").requests_handled == expected
    assert cosim.component("Origin").requests_served == expected
    assert cosim.component("Browser").pages_loaded == 1


def test_benchmark_local_load(benchmark):
    def once():
        cosim, __, ___ = build_local(WubbleUConfig(level="packet", **CONFIG))
        return run_page_load(cosim, location="local", level="packet")

    result = benchmark.pedantic(once, rounds=3, iterations=1)
    assert result.bytes_loaded == 24_000
