"""Fig. 6 — "A possible architecture for the WubbleU system, and its
simulation topology".

The figure shows the chosen mapping (all processes on the processor, the
network interface on the cellular ASIC) and the simulation topology used
to evaluate it: the cellular chip operated remotely.  This bench sweeps
the placement boundary across the pipeline and reports, for each
topology, the traffic that crosses the cut and the resulting simulation
time — quantifying why the paper put the boundary at the chip and dropped
the link's detail level.
"""

import pytest

from repro.apps import WubbleUConfig, build_design, run_page_load
from repro.bench import Table, format_bytes, format_count, format_seconds
from repro.distributed import CoSimulation, deploy
from repro.transport import LAN

CONFIG = dict(total_bytes=24_000, image_count=3, image_size=64)

PLACEMENTS = {
    "all local": set(),
    "origin remote": {"Origin"},
    "server remote": {"Origin", "Server"},
    "chip remote (paper)": {"Origin", "Server", "NetIf"},
    "stack remote": {"Origin", "Server", "NetIf", "Stack"},
}


def _run(moved, level):
    config = WubbleUConfig(level=level, **CONFIG)
    design, page = build_design(config)
    assignment = {name: ("far" if name in moved else "near")
                  for name in design.components}
    cosim = CoSimulation()
    deployment = deploy(design, assignment, cosim,
                        placement={"near": "host-a", "far": "host-b"})
    if moved:
        cosim.set_link_model("host-a", "host-b", LAN)
    result = run_page_load(cosim, location="split" if moved else "local",
                           level=level)
    return result, deployment


@pytest.fixture(scope="module")
def fig6():
    rows = {}
    for label, moved in PLACEMENTS.items():
        result, deployment = _run(moved, "packet")
        rows[label] = {
            "result": result,
            "splits": sorted(deployment.splits),
        }
    return rows


def test_fig6_report(fig6):
    table = Table("Fig. 6 — placement sweep at packet level (LAN link)",
                  ["placement", "split nets", "inter-node msgs",
                   "wire bytes", "sim time", "virtual"])
    for label, row in fig6.items():
        result = row["result"]
        table.add(label, format_count(len(row["splits"])),
                  format_count(result.messages),
                  format_bytes(result.wire_bytes),
                  format_seconds(result.simulation_time),
                  format_seconds(result.virtual_time))
    table.note("the paper's boundary (chip remote) is the last cut before "
               "the page body must cross the network at bus granularity")
    table.show()
    table.save("fig6_architecture")


def test_virtual_behaviour_placement_independent(fig6):
    times = {label: row["result"].virtual_time for label, row in fig6.items()}
    assert len(set(times.values())) == 1, times


def test_paper_boundary_splits_the_bus(fig6):
    assert fig6["chip remote (paper)"]["splits"] == \
        ["bus_bwd", "bus_fwd", "netirq"]
    assert fig6["server remote"]["splits"] == ["air_bwd", "air_fwd"]


def test_traffic_grows_as_cut_moves_inward(fig6):
    """Moving the boundary towards the CPU crosses fatter links."""
    bytes_by = {label: row["result"].wire_bytes for label, row in fig6.items()}
    assert bytes_by["all local"] == 0
    assert bytes_by["origin remote"] > 0
    assert bytes_by["chip remote (paper)"] >= bytes_by["server remote"] * 0.5


def test_benchmark_paper_placement(benchmark):
    benchmark.pedantic(
        lambda: _run({"Origin", "Server", "NetIf"}, "packet"),
        rounds=1, iterations=1)
