#!/usr/bin/env python
"""Parallel speedup: one GIL versus many processes.

The compute-star workload (hub + W WubbleU-style word-level nodes, each
grinding a pure-Python checksum loop per round) runs under all three
deployment modes — cooperative :class:`CoSimulation`, thread-per-node
:class:`ThreadedCoSimulation`, process-per-node
:class:`MultiprocessCoSimulation` — at 1, 2 and 4 workers.

Two claims are checked:

* **Determinism** — every mode must report bit-identical per-subsystem
  virtual times and dispatched-event counts (the conservative protocol
  makes deployment a pure performance choice).  Always asserted.
* **Speedup** — at 4 workers the multiprocess run must beat the threaded
  run by >= 1.5x wall clock.  Threads serialise the checksum loops on the
  GIL; processes do not.  Only asserted when the machine actually has
  >= 4 usable cores — on smaller runners the numbers are recorded and the
  assertion is skipped with a note.

All coordinator wall-clock numbers land in ``BENCH_pr4.json``
(``repro.bench.record``), keyed ``<mode>_w<workers>``, with the observed
core count so readers can judge the scaling numbers in context.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py
"""

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.bench import record_bench                      # noqa: E402
from repro.bench.workloads import (                       # noqa: E402
    compute_star,
    compute_star_multiprocess,
)

ROUNDS = int(os.environ.get("PIA_SPEEDUP_ROUNDS", "8"))
WORDS = int(os.environ.get("PIA_SPEEDUP_WORDS", "120000"))
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_mode(mode: str, workers: int) -> dict:
    if mode == "multiprocess":
        cosim = compute_star_multiprocess(workers, ROUNDS, words=WORDS)
    else:
        cosim = compute_star(workers, ROUNDS, words=WORDS, executor=mode)
    start = time.perf_counter()
    events = cosim.run(until=float("inf")) if mode != "multiprocess" \
        else cosim.run(until=float("inf"), timeout=300.0)
    wall = time.perf_counter() - start
    report = cosim.report(title=f"parallel-speedup {mode} w={workers}")
    return {
        "report": report,
        "wall": wall,
        "events": events,
        "progress": sorted((row["name"], row["time"], row["dispatched"])
                           for row in report.subsystems),
    }


def main() -> int:
    cores = usable_cores()
    print(f"compute star: rounds={ROUNDS} words={WORDS} cores={cores}")
    failures = []
    walls = {}
    for workers in WORKER_COUNTS:
        results = {mode: run_mode(mode, workers)
                   for mode in ("cosim", "threaded", "multiprocess")}
        reference = results["cosim"]
        for mode, r in results.items():
            walls[(mode, workers)] = r["wall"]
            record_bench("parallel_speedup", f"{mode}_w{workers}",
                         report=r["report"], wall_seconds=r["wall"],
                         extra={"workers": workers, "rounds": ROUNDS,
                                "words": WORDS, "cores": cores})
            if r["events"] != reference["events"] \
                    or r["progress"] != reference["progress"]:
                failures.append(
                    f"{mode} w={workers} diverged from cosim:\n"
                    f"  cosim: {reference['events']} events, "
                    f"{reference['progress']}\n"
                    f"  {mode}: {r['events']} events, {r['progress']}")
        line = "  ".join(f"{mode}={results[mode]['wall']:.2f}s"
                         for mode in ("cosim", "threaded", "multiprocess"))
        print(f"w={workers}: {line}  "
              f"({reference['events']} events, identical virtual times: "
              f"{'yes' if not failures else 'CHECK FAILED'})")

    speedup = walls[("threaded", 4)] / walls[("multiprocess", 4)]
    print(f"multiprocess vs threaded at 4 workers: {speedup:.2f}x")
    if cores >= 4:
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"multiprocess speedup at 4 workers is {speedup:.2f}x, "
                f"below the {SPEEDUP_FLOOR}x floor (cores={cores})")
    else:
        print(f"SKIP: speedup floor not asserted — only {cores} usable "
              f"core(s); need >= 4 for the parallelism claim")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("parallel speedup OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
