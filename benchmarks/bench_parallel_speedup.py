#!/usr/bin/env python
"""Parallel speedup: one GIL versus many processes, and what it costs.

The compute-star workload (hub + W WubbleU-style word-level nodes, each
grinding a pure-Python checksum loop per round) runs under four
deployment modes — cooperative :class:`CoSimulation`, thread-per-node
:class:`ThreadedCoSimulation`, and process-per-node
:class:`MultiprocessCoSimulation` over both its data planes (loopback
TCP and shared-memory rings) — at 1, 2 and 4 workers.  Multiprocess
cases share one warm :class:`WorkerPool`: the first run of each case
pays the spawn (recorded as ``cold_wall_seconds``), the timed number is
the warm steady state, which is what a parameter sweep or long-lived
service actually sees.

Three claims are checked; the first two are asserted on *any* machine:

* **Determinism** — every mode must report bit-identical per-subsystem
  virtual times and dispatched-event counts (the conservative protocol
  makes deployment a pure performance choice).  Always asserted.
* **Overhead** — at 1 worker there is no parallelism to win, so the
  process deployment's warm wall clock is pure coordination cost.  The
  shared-memory run must stay within ``OVERHEAD_CEILING`` (2x) of the
  cooperative executor.  Always asserted — a single core is enough to
  measure overhead honestly.
* **Speedup** — with >= 4 usable cores, multiprocess-shm at 4 workers
  must beat the threaded run by >= 1.5x; with 2-3 cores the same claim
  is asserted at 2 workers against a 1.2x floor (2 workers can at best
  2x, minus coordination).  On a single core parallel speedup is
  physically impossible, so the numbers are recorded and that one gate
  is skipped with an honest note.

All coordinator wall-clock numbers land in ``BENCH_pr6.json``
(``repro.bench.record``), keyed ``<mode>_w<workers>``, with the observed
core count so readers can judge the scaling numbers in context.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py
"""

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.bench import record_bench                      # noqa: E402
from repro.bench.workloads import (                       # noqa: E402
    compute_star,
    compute_star_multiprocess,
)
from repro.distributed import WorkerPool                  # noqa: E402

ROUNDS = int(os.environ.get("PIA_SPEEDUP_ROUNDS", "8"))
WORDS = int(os.environ.get("PIA_SPEEDUP_WORDS", "120000"))
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5         # multiprocess-shm vs threaded, w=4, >=4 cores
SMALL_SPEEDUP_FLOOR = 1.2   # same claim at w=2 on 2-3 core machines
OVERHEAD_CEILING = 2.0      # multiprocess-shm vs cosim, w=1, any machine

#: Mode name -> multiprocess transport; other modes are single-process.
MP_MODES = {"multiprocess": "tcp", "multiprocess_shm": "shm"}
ALL_MODES = ("cosim", "threaded", "multiprocess", "multiprocess_shm")


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_mode(mode: str, workers: int, pool: WorkerPool) -> dict:
    cold_wall = None
    if mode in MP_MODES:
        cosim = compute_star_multiprocess(workers, ROUNDS, words=WORDS,
                                          transport=MP_MODES[mode],
                                          pool=pool)
        # Cold run: spawns whatever the shared pool is still missing.
        start = time.perf_counter()
        cosim.run(until=float("inf"), timeout=300.0)
        cold_wall = time.perf_counter() - start
        # Warm run: the steady state the gates judge.
        start = time.perf_counter()
        events = cosim.run(until=float("inf"), timeout=300.0)
        wall = time.perf_counter() - start
    else:
        cosim = compute_star(workers, ROUNDS, words=WORDS, executor=mode)
        start = time.perf_counter()
        events = cosim.run(until=float("inf"))
        wall = time.perf_counter() - start
    report = cosim.report(title=f"parallel-speedup {mode} w={workers}")
    return {
        "report": report,
        "wall": wall,
        "cold_wall": cold_wall,
        "events": events,
        "progress": sorted((row["name"], row["time"], row["dispatched"])
                           for row in report.subsystems),
    }


def main() -> int:
    cores = usable_cores()
    print(f"compute star: rounds={ROUNDS} words={WORDS} cores={cores}")
    failures = []
    walls = {}
    with WorkerPool() as pool:
        for workers in WORKER_COUNTS:
            results = {mode: run_mode(mode, workers, pool)
                       for mode in ALL_MODES}
            reference = results["cosim"]
            for mode, r in results.items():
                walls[(mode, workers)] = r["wall"]
                extra = {"workers": workers, "rounds": ROUNDS,
                         "words": WORDS, "cores": cores}
                if r["cold_wall"] is not None:
                    extra["cold_wall_seconds"] = round(r["cold_wall"], 6)
                record_bench("parallel_speedup", f"{mode}_w{workers}",
                             report=r["report"], wall_seconds=r["wall"],
                             extra=extra)
                if r["events"] != reference["events"] \
                        or r["progress"] != reference["progress"]:
                    failures.append(
                        f"{mode} w={workers} diverged from cosim:\n"
                        f"  cosim: {reference['events']} events, "
                        f"{reference['progress']}\n"
                        f"  {mode}: {r['events']} events, {r['progress']}")
            line = "  ".join(f"{mode}={results[mode]['wall']:.2f}s"
                             for mode in ALL_MODES)
            print(f"w={workers}: {line}  "
                  f"({reference['events']} events, identical virtual times: "
                  f"{'yes' if not failures else 'CHECK FAILED'})")

    # Gate 1 (always): warm single-worker overhead versus cooperative.
    overhead = walls[("multiprocess_shm", 1)] / walls[("cosim", 1)]
    print(f"multiprocess-shm overhead at 1 worker: {overhead:.2f}x "
          f"of cosim (ceiling {OVERHEAD_CEILING}x)")
    if overhead > OVERHEAD_CEILING:
        failures.append(
            f"multiprocess-shm w=1 warm wall is {overhead:.2f}x the "
            f"cooperative executor's, above the {OVERHEAD_CEILING}x "
            f"overhead ceiling (cores={cores})")

    # Gate 2 (cores permitting): real parallel speedup over the GIL.
    speedup4 = walls[("threaded", 4)] / walls[("multiprocess_shm", 4)]
    speedup2 = walls[("threaded", 2)] / walls[("multiprocess_shm", 2)]
    print(f"multiprocess-shm vs threaded: {speedup2:.2f}x at 2 workers, "
          f"{speedup4:.2f}x at 4 workers")
    if cores >= 4:
        if speedup4 < SPEEDUP_FLOOR:
            failures.append(
                f"multiprocess-shm speedup at 4 workers is {speedup4:.2f}x, "
                f"below the {SPEEDUP_FLOOR}x floor (cores={cores})")
    elif cores >= 2:
        if speedup2 < SMALL_SPEEDUP_FLOOR:
            failures.append(
                f"multiprocess-shm speedup at 2 workers is {speedup2:.2f}x, "
                f"below the {SMALL_SPEEDUP_FLOOR}x floor (cores={cores})")
    else:
        print("SKIP: parallel-speedup floor not asserted — 1 usable core "
              "cannot run anything in parallel; overhead and determinism "
              "gates were still enforced")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("parallel speedup OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
