"""Section 5 — "the principles of selective focus ... offset" the cost.

The paper's conclusion: geographic distribution could hurt performance,
"but we showed how the principles of selective focus introduced in [6] can
be used to offset this."  Concretely: keep the remote link at full (word)
detail only while the designer needs it, and drop to packet level for the
bulk of the run.

This bench runs the remote WubbleU three ways — pure word, pure packet,
and word-with-a-switchpoint that drops the link to packet level early in
the load — and shows the mixed run's traffic landing near the packet
level's, orders below pure word.
"""

import pytest

from repro.apps import WubbleUConfig, build_split, run_page_load
from repro.bench import Table, format_count, format_seconds
from repro.transport import INTERNET

SMALL = dict(total_bytes=24_000, image_count=3, image_size=64)

#: Drop detail once the origin has started serving the first request:
#: the designer has watched the request handshake cross the link in full
#: word-level detail; the bulk responses are not worth that bandwidth.
SWITCH_AT = 0.004


def _run(level, *, switchpoint=False):
    config = WubbleUConfig(level=level, **SMALL)
    cosim, __, ___ = build_split(config, network=INTERNET)
    if switchpoint:
        cosim.add_switchpoint(
            f"when Origin.localtime >= {SWITCH_AT}: "
            "Stack.bus -> packet, NetIf.bus -> packet")
    result = run_page_load(
        cosim, location="remote",
        level=f"{level}+switch" if switchpoint else level)
    return result


@pytest.fixture(scope="module")
def focus():
    return {
        "word (full detail)": _run("word"),
        "word -> packet switchpoint": _run("word", switchpoint=True),
        "packet (abstract)": _run("packet"),
    }


def test_selective_focus_report(focus):
    table = Table("Selective focus on the remote link (paper section 5)",
                  ["configuration", "inter-node msgs", "modelled net time",
                   "simulation time", "virtual time"])
    for label, result in focus.items():
        table.add(label, format_count(result.messages),
                  format_seconds(result.network_delay),
                  format_seconds(result.simulation_time),
                  format_seconds(result.virtual_time))
    table.note("switchpoint drops the bus link to packet level once the "
               "origin starts serving — full detail only while the "
               "designer watches the request handshake")
    table.show()
    table.save("selective_focus")


def test_switch_lands_near_packet_cost(focus):
    word = focus["word (full detail)"].messages
    mixed = focus["word -> packet switchpoint"].messages
    packet = focus["packet (abstract)"].messages
    assert mixed < word / 5, "selective focus must shed most word traffic"
    assert mixed < 5 * max(packet, 1)


def test_payload_unaffected(focus):
    loaded = {result.bytes_loaded for result in focus.values()}
    assert loaded == {24_000}


def test_levels_actually_switched(focus):
    assert focus["word -> packet switchpoint"].messages != \
        focus["word (full detail)"].messages


def test_benchmark_mixed_run(benchmark):
    benchmark.pedantic(lambda: _run("word", switchpoint=True),
                       rounds=1, iterations=1)
