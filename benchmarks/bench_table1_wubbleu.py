"""Table 1 — "Time and simulation overhead on several configurations of
the WubbleU example".

The paper loads a ~66 KB page (HTML + graphics) through the co-simulated
WubbleU system in five configurations and reports the wall-clock time of
each load:

    HotJava (no simulation)        0.54 s
    local  word passage            (unreadable in the surviving scan)
    local  packet passage         43.1  s
    remote word passage          604    s
    remote packet passage         80.3  s

This bench regenerates all five rows.  "Remote" means the cellular chip
(and everything behind it) on a second node across an Internet-class link;
the wall time of remote rows is measured CPU time plus the modelled
network time of every message that crossed the link (DESIGN.md,
substitutions).  The absolute numbers of the 1998 testbed are not
reproducible; the required *shape* is asserted:

* the un-instrumented reference is far below every simulation;
* word passage is far more expensive than packet passage when remote
  (the paper's 604 vs 80.3);
* the remote penalty at word level dwarfs the local run;
* remote packet passage stays within an interactive factor of the local
  simulation — the paper's point that detail reduction makes remote
  co-simulation usable.
"""

import pytest

from repro.apps import WubbleUConfig, fetch_like_hotjava, page_load
from repro.bench import (
    PAPER_TABLE1,
    Table,
    assert_factor,
    assert_order,
    format_count,
    format_seconds,
    record_bench,
)
from repro.transport import INTERNET


def _run_all():
    results = {}
    reference = fetch_like_hotjava()
    results["HotJava"] = {
        "time": reference.simulation_time,
        "messages": 0,
        "events": 0,
    }
    for location, remote in (("local", False), ("remote", True)):
        for level in ("word", "packet"):
            key = f"{location} {level} passage"
            outcome = page_load(level, remote=remote, network=INTERNET,
                                config=WubbleUConfig(level=level))
            results[key] = {
                "time": outcome.simulation_time,
                "messages": outcome.messages,
                "events": outcome.events,
                "virtual": outcome.virtual_time,
            }
    return results


@pytest.fixture(scope="module")
def table1():
    return _run_all()


def test_table1_report(table1):
    table = Table(
        "Table 1 — WubbleU page load (66 KB), measured vs paper",
        ["Location", "Detail level", "simulation time", "paper",
         "inter-node msgs", "events"])
    order = ["HotJava", "local word passage", "local packet passage",
             "remote word passage", "remote packet passage"]
    for key in order:
        row = table1[key]
        location, __, level = key.partition(" ")
        table.add(location if level else "n/a",
                  level or "HotJava",
                  format_seconds(row["time"]),
                  format_seconds(PAPER_TABLE1.get(key)),
                  format_count(row["messages"]),
                  format_count(row["events"]))
    table.note("remote rows: measured CPU + modelled network wall time "
               "(internet preset: 35 ms latency, 128 kB/s)")
    table.note("paper local-word entry is unreadable in the surviving scan")
    table.show()
    table.save("table1_wubbleu")


def test_shape_reference_below_everything(table1):
    """The un-instrumented load is cheapest.  At packet level our
    simulator adds so little overhead that wall-clock noise can make the
    two comparable — itself a result worth noting — so the local-packet
    comparison allows a small tolerance while the others are strict."""
    times = {key: row["time"] for key, row in table1.items()}
    assert_order(times, "HotJava", "local word passage")
    assert_order(times, "HotJava", "remote packet passage")
    assert_order(times, "HotJava", "remote word passage")
    assert times["HotJava"] < 5 * times["local packet passage"]


def test_shape_remote_word_dwarfs_remote_packet(table1):
    """The paper's 604 s vs 80.3 s (7.5x); we require at least 5x."""
    times = {key: row["time"] for key, row in table1.items()}
    assert_factor(times, "remote packet passage", "remote word passage", 5.0)


def test_shape_remote_word_dwarfs_local_word(table1):
    times = {key: row["time"] for key, row in table1.items()}
    assert_factor(times, "local word passage", "remote word passage", 10.0)


def test_shape_remote_packet_is_interactive(table1):
    """Packet passage keeps the remote run "fast enough to allow the
    designer to play with the simulated hardware" — within ~100x of the
    local simulation rather than the word level's thousands."""
    times = {key: row["time"] for key, row in table1.items()}
    local = max(times["local packet passage"], 1e-3)
    assert times["remote packet passage"] / local < 1000.0
    assert times["remote word passage"] / local > \
        10 * (times["remote packet passage"] / local)


def test_word_messages_track_word_count(table1):
    """Word passage ships one message per 4-byte word (plus headers and
    safe-time traffic): tens of thousands for 66 KB."""
    assert table1["remote word passage"]["messages"] > 15_000
    assert table1["remote packet passage"]["messages"] < 1_000


def test_same_virtual_behaviour_everywhere(table1):
    """Distribution must not change the simulated system's behaviour:
    local and remote runs of the same detail level land on the identical
    virtual completion time.  Across levels the codecs' timing models
    differ slightly (that is the fidelity being traded), but only by a
    fraction of a percent here."""
    for level in ("word", "packet"):
        assert table1[f"local {level} passage"]["virtual"] == \
            table1[f"remote {level} passage"]["virtual"]
    word = table1["local word passage"]["virtual"]
    packet = table1["local packet passage"]["virtual"]
    assert abs(word - packet) / packet < 0.01


@pytest.fixture(scope="module")
def table1_batching():
    """Remote packet passage, batching off vs on — the ISSUE 3 workload.

    ``simulation_time`` here is CPU plus *modelled* network wall time (one
    latency charge per wire frame at the Internet preset's 35 ms), so the
    batching win on it is deterministic, unlike raw wall clock."""
    runs = {}
    for batching in (False, True):
        outcome = page_load("packet", remote=True, network=INTERNET,
                            config=WubbleUConfig(level="packet"),
                            batching=batching)
        case = "batching_on" if batching else "batching_off"
        runs[case] = outcome
        record_bench("table1_wubbleu", case, extra={
            "frames": outcome.frames,
            "messages": outcome.messages,
            "wire_bytes": outcome.wire_bytes,
            "events": outcome.events,
            "virtual_time": outcome.virtual_time,
            "network_delay": outcome.network_delay,
            "simulation_time": outcome.simulation_time,
        })
    return runs["batching_off"], runs["batching_on"]


def test_batching_halves_remote_frames(table1_batching):
    """The acceptance bar: >= 2x fewer wire frames with identical final
    simulation state (virtual time, event count, payload delivered)."""
    base, batched = table1_batching
    assert batched.frames * 2 <= base.frames
    assert batched.virtual_time == base.virtual_time
    assert batched.events == base.events
    assert batched.bytes_loaded == base.bytes_loaded


def test_batching_lowers_modelled_simulation_time(table1_batching):
    """Fewer frames means fewer 35 ms latency charges: the modelled
    network component — which dominates the remote rows — must drop
    nearly in half.  (The bandwidth term is charged per byte and does not
    shrink, so the delay ratio trails the frame ratio slightly.)"""
    base, batched = table1_batching
    assert batched.network_delay < 0.55 * base.network_delay
    assert batched.simulation_time < base.simulation_time


def test_batching_comparison_report(table1_batching):
    base, batched = table1_batching
    table = Table("Table 1 follow-up — remote packet passage, "
                  "batched fast path",
                  ["config", "frames", "msgs", "bytes",
                   "network delay", "simulation time"])
    for label, run in (("batching off", base), ("batching on", batched)):
        table.add(label, format_count(run.frames),
                  format_count(run.messages), format_count(run.wire_bytes),
                  format_seconds(run.network_delay),
                  format_seconds(run.simulation_time))
    table.note(f"frame ratio: {base.frames / batched.frames:.2f}x; "
               "virtual completion time and event counts are identical")
    table.show()
    table.save("table1_batching")


def test_benchmark_local_packet(benchmark):
    """pytest-benchmark hook: the configuration a designer iterates on."""
    config = WubbleUConfig(level="packet")
    benchmark.pedantic(
        lambda: page_load("packet", remote=False, config=config),
        rounds=1, iterations=1)
