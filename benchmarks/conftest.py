"""Benchmark-suite configuration."""

import pytest


def pytest_configure(config):
    # The benchmarks print the regenerated paper tables; keep them visible
    # when running `pytest benchmarks/ --benchmark-only -s`.
    pass
