#!/usr/bin/env python
"""CI smoke for the live telemetry endpoint (ISSUE 10).

Runs a real multiprocess simulation publishing status snapshots with
streaming telemetry on, serves them over
:mod:`repro.observability.serve`, and fetches every route *while the run
is still in flight*:

* ``/status.json`` must be valid JSON with nodes and a ``telemetry``
  section (streamed counters folded across workers);
* ``/metrics`` must be Prometheus text exposition carrying
  ``pia_global_time``, per-link health rows and streamed counters;
* ``/series.json`` and ``/health.json`` must serve their sections.

After the run the final ``phase: "done"`` snapshot must be visible
through the same routes.  Exits non-zero on any failure.

Usage::

    PYTHONPATH=src python benchmarks/http_smoke.py
"""

import json
import os
import sys
import tempfile
import threading
import time
import urllib.request

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.bench import record_bench                      # noqa: E402
from repro.bench.workloads import compute_star_multiprocess  # noqa: E402
from repro.observability.serve import serve_status_file   # noqa: E402

#: The run must stay alive long enough for mid-flight fetches.
ROUNDS = int(os.environ.get("PIA_HTTP_SMOKE_ROUNDS", "300"))
WORDS = int(os.environ.get("PIA_HTTP_SMOKE_WORDS", "2000"))


def fetch(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:  # 4xx/5xx still carry a body
        return error.code, error.read().decode("utf-8")


def main():
    failures = []
    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        status_path = os.path.join(tmp, "status.json")
        server = serve_status_file(status_path, port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        threading.Thread(target=server.serve_forever, daemon=True).start()

        # Before any snapshot exists: /metrics must still answer 200
        # (empty exposition) and the JSON routes must say 503, not hang.
        status, __ = fetch(base, "/metrics")
        if status != 200:
            failures.append(f"pre-run /metrics returned {status}")
        status, __ = fetch(base, "/status.json")
        if status != 503:
            failures.append(f"pre-run /status.json returned {status}, "
                            "expected 503")

        sim = compute_star_multiprocess(
            2, ROUNDS, words=WORDS, series_interval=5.0,
            series_wall_interval=0.05, health=True, stream_telemetry=True)
        run_error = []

        def drive():
            try:
                with sim:
                    sim.run(until=float("inf"), timeout=120.0,
                            status_path=status_path, status_interval=0.05)
            except BaseException as exc:  # surfaced by the main thread
                run_error.append(exc)

        runner = threading.Thread(target=drive)
        runner.start()
        deadline = time.monotonic() + 60.0
        live_metrics = live_status = None
        while time.monotonic() < deadline and runner.is_alive():
            if not os.path.exists(status_path):
                time.sleep(0.02)
                continue
            __, metrics = fetch(base, "/metrics")
            __, body = fetch(base, "/status.json")
            document = json.loads(body)
            # Keep polling until the streamed sections show up — the
            # first snapshots can precede the first folded delta.
            if "pia_counter_total" in metrics and "telemetry" in document \
                    and document.get("phase") == "running":
                live_metrics, live_status = metrics, document
                break
            time.sleep(0.02)
        runner.join()
        if run_error:
            raise run_error[0]

        if live_metrics is None:
            failures.append(
                "never saw a mid-run snapshot with streamed telemetry — "
                "the run finished before the endpoint showed one (raise "
                "PIA_HTTP_SMOKE_ROUNDS) or streaming is broken")
        else:
            for needle in ("pia_global_time", "pia_phase",
                           "pia_node_wire_out_total", "pia_counter_total",
                           "pia_link_health_score"):
                if needle not in live_metrics:
                    failures.append(
                        f"mid-run /metrics is missing {needle}")
            if not live_status.get("nodes"):
                failures.append("mid-run /status.json has no nodes")
            if not live_status.get("health"):
                failures.append("mid-run /status.json has no health rows")

        # Final state: the run's parting "done" snapshot through every
        # route.
        __, body = fetch(base, "/status.json")
        final = json.loads(body)
        if final.get("phase") != "done":
            failures.append(f"final snapshot phase is "
                            f"{final.get('phase')!r}, expected 'done'")
        status, body = fetch(base, "/series.json")
        series = json.loads(body).get("series", {})
        if status != 200 or not series:
            failures.append(f"/series.json returned {status} with "
                            f"{len(series)} series")
        status, body = fetch(base, "/health.json")
        health = json.loads(body).get("health", [])
        if status != 200 or not health:
            failures.append(f"/health.json returned {status} with "
                            f"{len(health)} rows")
        __, metrics = fetch(base, "/metrics")
        if 'pia_phase{phase="done"} 1' not in metrics:
            failures.append("final /metrics does not expose the done phase")
        server.shutdown()
        server.server_close()

    wall = time.perf_counter() - started
    record_bench("http_smoke", "endpoint",
                 wall_seconds=wall,
                 extra={"rounds": ROUNDS,
                        "series": len(series),
                        "health_rows": len(health),
                        "ok": not failures})
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"http smoke OK ({len(series)} series, {len(health)} health "
          f"rows, {wall:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
