#!/usr/bin/env python
"""CI perf smoke: the batched fast path must actually save frames.

Runs the Fig. 4 safe-time scenario (three subsystems, conservative
channels) twice — batching off, then on — and asserts the ISSUE 3
invariants:

* the batched run puts strictly fewer frames on the wire;
* it sends no more safe-time request messages than the unbatched run;
* the simulation itself is unchanged: identical per-subsystem virtual
  times and dispatched-event counts.

Both configurations are recorded into the machine-readable results file
(``BENCH_pr4.json`` / ``$PIA_BENCH_JSON``).  Exits non-zero on any
regression, so CI can gate on it.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))
sys.path.insert(0, _HERE)

from repro.bench import record_bench                      # noqa: E402
from repro.core.events import Event, EventKind            # noqa: E402
from repro.core.subsystem import Subsystem                # noqa: E402
from repro.core.timestamp import Timestamp                # noqa: E402
from bench_fig4_safe_time import _build                   # noqa: E402


def run(batching, telemetry=True):
    cosim, *_ = _build(batching=batching)
    if not telemetry:
        cosim.telemetry.disable()
    start = time.perf_counter()
    cosim.run()
    wall = time.perf_counter() - start
    report = cosim.report(
        title=f"perf-smoke batching={batching} telemetry={telemetry}")
    totals = report.link_totals()
    return {
        "report": report,
        "wall": wall,
        "frames": totals["frames"],
        "bytes": totals["bytes"],
        "requests": report.counter("safetime.requests"),
        "trace_records": len(report.trace_records),
        "progress": sorted((row["name"], row["time"], row["dispatched"])
                           for row in report.subsystems),
    }


def dispatch_rate(events=200_000):
    """Raw scheduler throughput: a single self-rescheduling CONTROL event.

    Exercises exactly the hot path the micro-optimisations target
    (slotted :class:`Event` construction plus the hoisted
    :meth:`Scheduler.run` inner loop); the events/second figure lands in
    the bench JSON so the delta shows up across commits.
    """
    scheduler = Subsystem("ubench").scheduler
    remaining = events

    def tick(event):
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            scheduler.schedule(Event(Timestamp(event.ts.time + 1.0),
                                     EventKind.CONTROL, tick))

    scheduler.schedule(Event(Timestamp(0.0), EventKind.CONTROL, tick))
    start = time.perf_counter()
    dispatched = scheduler.run()
    wall = time.perf_counter() - start
    return dispatched, wall


def main():
    base = run(batching=False)
    batched = run(batching=True)
    silent = run(batching=True, telemetry=False)
    for case, r in (("batching_off", base), ("batching_on", batched),
                    ("telemetry_off", silent)):
        record_bench("perf_smoke", case, report=r["report"],
                     wall_seconds=r["wall"])

    events, wall = dispatch_rate()
    rate = events / wall if wall else float("inf")
    record_bench("perf_smoke", "dispatch_rate", wall_seconds=wall,
                 extra={"events": events,
                        "events_per_second": round(rate)})
    print(f"dispatch rate : {events} events in {wall:.3f}s "
          f"({rate:,.0f} ev/s)")

    print(f"frames        : {base['frames']} -> {batched['frames']} "
          f"({base['frames'] / batched['frames']:.2f}x)")
    print(f"wire bytes    : {base['bytes']} -> {batched['bytes']}")
    print(f"safe-time reqs: {base['requests']} -> {batched['requests']}")
    print(f"telemetry off : {silent['wall']:.3f}s vs {batched['wall']:.3f}s "
          f"on ({silent['trace_records']} trace records)")

    failures = []
    # The disabled path must stay a true no-op: no spans minted, no
    # records buffered, and an identical simulation.
    if silent["trace_records"] != 0:
        failures.append(
            f"telemetry-disabled run still buffered "
            f"{silent['trace_records']} trace records")
    if silent["progress"] != batched["progress"]:
        failures.append(
            "simulation state diverged with telemetry disabled:\n"
            f"  on : {batched['progress']}\n  off: {silent['progress']}")
    if not batched["frames"] < base["frames"]:
        failures.append(
            f"batched run did not send strictly fewer frames: "
            f"{batched['frames']} vs {base['frames']}")
    if not batched["requests"] <= base["requests"]:
        failures.append(
            f"batched run sent more safe-time requests: "
            f"{batched['requests']} vs {base['requests']}")
    if batched["progress"] != base["progress"]:
        failures.append(
            "simulation state diverged between batching modes:\n"
            f"  off: {base['progress']}\n  on : {batched['progress']}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
