#!/usr/bin/env python
"""CI perf smoke: fast paths must stay fast, and the gates say how fast.

Five sections, all recorded into the machine-readable results file
(``BENCH_pr10.json`` / ``$PIA_BENCH_JSON``) and all gated — the script
exits non-zero on any regression so CI can fail on it:

* **Batching** (ISSUE 3): the Fig. 4 safe-time scenario runs with
  batching off then on; the batched run must put strictly fewer frames
  on the wire, send no more safe-time requests, and leave the
  simulation itself bit-identical.
* **Telemetry pay-for-use** (ISSUE 8): the same scenario with telemetry
  disabled must buffer zero trace records and leave the simulation
  unchanged; a dedicated micro-bench additionally proves a disabled
  scheduler run touches no counters, gauges, histograms or traces at
  all.
* **Dispatch hot path** (ISSUES 8 + 9): raw scheduler throughput is
  measured at several event counts (the curve shows whether per-event
  overhead is flat) and the best rate must clear the backend's floor:
  ``$PIA_DISPATCH_FLOOR``, defaulting to 800000 ev/s when the native
  hot core is live and 146000 ev/s (the pre-codec seed's rate) on the
  pure-python fallback.
* **Native/pure parity** (ISSUE 9): when the compiled backend is live,
  the whole smoke re-runs itself in a ``PIA_PURE=1`` subprocess — the
  pure curve must clear ``$PIA_PURE_DISPATCH_FLOOR`` and the Fig. 4
  simulations must finish *bit-identical* across backends (same
  per-subsystem progress, frames, bytes and safe-time requests, both
  batching modes).  Both curves land in the bench JSON, labelled by
  backend, so the trajectory never conflates compiled and fallback
  numbers.
* **Wire codec** (ISSUE 8): every hot message kind is encoded with the
  binary codec and with pickle across a sweep of payload sizes;
  SIGNAL and safe-time frames must be at least 3x smaller than their
  pickles.
* **Continuous telemetry overhead** (ISSUE 10): the dispatch
  micro-bench re-runs with the always-on plane attached (flight
  recorder live, a time-series recorder on the telemetry) and must stay
  within ``$PIA_TELEMETRY_OVERHEAD_FLOOR`` (default 0.90, i.e. <=10%
  overhead) of the telemetry-off rate — on both backends, since the
  pure probe repeats the measurement.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

import json
import os
import pickle
import subprocess
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))
sys.path.insert(0, _HERE)

from repro._native import BACKEND                         # noqa: E402
from repro.bench import record_bench                      # noqa: E402
from repro.core.events import Event, EventKind            # noqa: E402
from repro.core.subsystem import Subsystem                # noqa: E402
from repro.core.timestamp import Timestamp                # noqa: E402
from repro.observability import (                         # noqa: E402
    Telemetry,
    TimeSeriesRecorder,
)
from repro.transport.codec import decode, encode          # noqa: E402
from repro.transport.message import Message, MessageKind  # noqa: E402
from bench_fig4_safe_time import _build                   # noqa: E402

#: Floor for the dispatch micro-bench (events/second), per backend: the
#: native hot core must hold its compiled-speed win, and the pure path
#: must never fall below the pre-codec seed's rate.  Override for
#: unusually slow or fast runners.
DISPATCH_FLOOR = int(os.environ.get(
    "PIA_DISPATCH_FLOOR", "800000" if BACKEND == "c" else "146000"))

#: Floor for the pure-python fallback curve measured by the parity
#: subprocess (only exercised when the native backend is live here).
PURE_DISPATCH_FLOOR = int(os.environ.get(
    "PIA_PURE_DISPATCH_FLOOR", "146000"))

#: SIGNAL / safe-time frames must be at least this many times smaller
#: than the pickle of the same message.
CODEC_RATIO_FLOOR = 3.0

#: Dispatch with the continuous telemetry plane on (flight recorder +
#: time-series recorder) must hold at least this fraction of the
#: telemetry-off rate: the black box only earns "always on" by costing
#: at most the last 10%.
TELEMETRY_OVERHEAD_FLOOR = float(os.environ.get(
    "PIA_TELEMETRY_OVERHEAD_FLOOR", "0.90"))


def run(batching, telemetry=True):
    cosim, *_ = _build(batching=batching)
    if not telemetry:
        cosim.telemetry.disable()
    start = time.perf_counter()
    cosim.run()
    wall = time.perf_counter() - start
    report = cosim.report(
        title=f"perf-smoke batching={batching} telemetry={telemetry}")
    totals = report.link_totals()
    return {
        "report": report,
        "wall": wall,
        "frames": totals["frames"],
        "bytes": totals["bytes"],
        "requests": report.counter("safetime.requests"),
        "trace_records": len(report.trace_records),
        "progress": sorted((row["name"], row["time"], row["dispatched"])
                           for row in report.subsystems),
    }


def dispatch_rate(events=200_000):
    """Raw scheduler throughput: a single self-rescheduling CONTROL event.

    Exercises exactly the hot path the native core targets (Event
    construction, queue push/pop, the :meth:`Scheduler.run` inner loop);
    the events/second figure lands in the bench JSON, labelled with the
    active backend, so the delta shows up across commits.
    """
    scheduler = Subsystem("ubench").scheduler
    remaining = events

    def tick(event):
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            scheduler.schedule(Event(event.time + 1.0,
                                     EventKind.CONTROL, tick))

    scheduler.schedule(Event(Timestamp(0.0), EventKind.CONTROL, tick))
    start = time.perf_counter()
    dispatched = scheduler.run()
    wall = time.perf_counter() - start
    return dispatched, wall


def dispatch_curve(counts=(20_000, 50_000, 100_000, 200_000)):
    """``dispatch_rate`` at several event counts.

    A flat curve means per-event cost dominates (the figure is honest);
    a rate that climbs steeply with size would mean fixed setup cost is
    polluting the small points.
    """
    curve = []
    for events in counts:
        dispatched, wall = dispatch_rate(events)
        rate = dispatched / wall if wall else float("inf")
        curve.append({"events": dispatched, "wall_seconds": round(wall, 6),
                      "events_per_second": round(rate)})
    return curve


def telemetry_noop_probe(events=50_000):
    """Prove a telemetry-disabled scheduler run touches nothing.

    Returns the number of metric instruments plus buffered trace records
    observed after dispatching ``events`` events with telemetry off —
    the gate requires exactly zero.
    """
    subsystem = Subsystem("silent")
    scheduler = subsystem.scheduler
    telemetry = subsystem.telemetry
    telemetry.disable()
    remaining = events

    def tick(event):
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            scheduler.schedule(Event(event.time + 1.0,
                                     EventKind.CONTROL, tick))

    scheduler.schedule(Event(Timestamp(0.0), EventKind.CONTROL, tick))
    scheduler.run()
    snapshot = telemetry.registry.snapshot()
    touches = (len(snapshot["counters"]) + len(snapshot["gauges"])
               + len(snapshot["histograms"])
               + len(telemetry.trace_buffer.records()))
    return touches


def telemetry_overhead_probe(events=200_000, rounds=3):
    """Dispatch rate with the continuous telemetry plane on vs off.

    "On" is the always-on production configuration: the metrics gate is
    disabled (counters, traces and histograms cost nothing) but the
    flight recorder rides along stride-sampling the run loop, and a
    :class:`TimeSeriesRecorder` is attached — exactly what every
    default-constructed :class:`Telemetry` carries.  "Off" is the NULL
    telemetry the raw dispatch bench runs under.  Interleaved best-of-N
    damps scheduler jitter; the gate compares the two best rates.
    """
    def measure(telemetry):
        subsystem = Subsystem("overhead")
        if telemetry is not None:
            subsystem.attach_telemetry(telemetry)
        scheduler = subsystem.scheduler
        remaining = events

        def tick(event):
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                scheduler.schedule(Event(event.time + 1.0,
                                         EventKind.CONTROL, tick))

        scheduler.schedule(Event(Timestamp(0.0), EventKind.CONTROL, tick))
        start = time.perf_counter()
        dispatched = scheduler.run()
        wall = time.perf_counter() - start
        return dispatched / wall if wall else float("inf")

    plane = Telemetry()
    plane.disable()              # metrics gate off; the flight ring stays on
    plane.attach_series(TimeSeriesRecorder(virtual_interval=1000.0))
    best_off = best_on = 0.0
    for _ in range(rounds):
        best_off = max(best_off, measure(None))
        best_on = max(best_on, measure(plane))
    return {"off_events_per_second": round(best_off),
            "on_events_per_second": round(best_on),
            "ratio": round(best_on / best_off, 4)}


#: kind -> payload sweep for the codec micro-bench.  SIGNAL sweeps the
#: carried value from a scalar to 16 KiB blobs; the safe-time kinds and
#: MARK are single-shape protocol messages; CONTROL with a set payload
#: exercises the pickle fallback (the worst case for the ratio).
_CODEC_CASES = [
    ("signal_scalar", Message(MessageKind.SIGNAL, "alpha", "beta",
                              channel="bus", time=1.25, msg_id=12, epoch=1,
                              payload=("engine", "clk", 1))),
    ("signal_str_64", Message(MessageKind.SIGNAL, "alpha", "beta",
                              channel="bus", time=1.25, msg_id=12, epoch=1,
                              payload=("engine", "bus", "x" * 64))),
    ("signal_bytes_1k", Message(MessageKind.SIGNAL, "alpha", "beta",
                                channel="bus", time=1.25, msg_id=12, epoch=1,
                                payload=("engine", "bus", b"x" * 1024))),
    ("signal_bytes_16k", Message(MessageKind.SIGNAL, "alpha", "beta",
                                 channel="bus", time=1.25, msg_id=12, epoch=1,
                                 payload=("engine", "bus", b"x" * 16384))),
    ("safe_time_request", Message(MessageKind.SAFE_TIME_REQUEST,
                                  "alpha", "beta", time=4.0, request_id=7,
                                  payload=("alpha", "gamma",
                                           ("alpha", "beta", "gamma")))),
    ("safe_time_reply", Message(MessageKind.SAFE_TIME_REPLY, "beta", "alpha",
                                time=4.0, request_id=7, payload=(3, 7))),
    ("safe_time_grant", Message(MessageKind.SAFE_TIME_GRANT, "beta", "alpha",
                                time=5.0, payload=(0, 0))),
    ("mark", Message(MessageKind.MARK, "alpha", "beta", time=2.0,
                     payload={"snapshot": "s1", "cut": 4.0})),
    ("control_fallback", Message(MessageKind.CONTROL, "alpha", "beta",
                                 time=0.0, payload={"targets", "as-a-set"})),
]


def codec_bench(iterations=3000):
    """Codec vs pickle: bytes on the wire and round-trip throughput."""
    rows = {}
    for name, message in _CODEC_CASES:
        codec_blob = encode(message)
        pickle_blob = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
        start = time.perf_counter()
        for _ in range(iterations):
            decode(encode(message))
        codec_wall = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            pickle.loads(pickle.dumps(message, pickle.HIGHEST_PROTOCOL))
        pickle_wall = time.perf_counter() - start
        rows[name] = {
            "codec_bytes": len(codec_blob),
            "pickle_bytes": len(pickle_blob),
            "size_ratio": round(len(pickle_blob) / len(codec_blob), 2),
            "codec_roundtrips_per_second":
                round(iterations / codec_wall) if codec_wall else None,
            "pickle_roundtrips_per_second":
                round(iterations / pickle_wall) if pickle_wall else None,
        }
    return rows


def _parity_view(r):
    """The deterministic projection of a :func:`run` result — everything
    that must be bit-identical across backends (and across JSON, so
    tuples are normalised to lists)."""
    return json.loads(json.dumps({
        "frames": r["frames"], "bytes": r["bytes"],
        "requests": r["requests"], "progress": r["progress"],
    }))


def pure_probe():
    """``--pure-probe`` entry point: re-run the deterministic sections in
    this (pure-python) process and print them as JSON for the compiled
    parent to diff and record.  Emits nothing else on stdout."""
    payload = {
        "backend": BACKEND,
        "dispatch_curve": dispatch_curve(),
        "telemetry_overhead": telemetry_overhead_probe(),
        "runs": {
            "batching_off": _parity_view(run(batching=False)),
            "batching_on": _parity_view(run(batching=True)),
        },
    }
    json.dump(payload, sys.stdout)
    return 0


def run_pure_probe():
    """Re-exec this script under ``PIA_PURE=1`` and parse its JSON.

    Returns the parsed payload, or an error string on any failure
    (non-zero exit, no JSON, or the child somehow still binding the
    compiled backend).
    """
    env = dict(os.environ, PIA_PURE="1")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--pure-probe"],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        return (f"pure-python probe exited {proc.returncode}:\n"
                f"{proc.stderr.strip()}")
    try:
        payload = json.loads(proc.stdout)
    except ValueError:
        return f"pure-python probe printed no JSON: {proc.stdout!r}"
    if payload.get("backend") != "python":
        return (f"pure-python probe bound backend "
                f"{payload.get('backend')!r} despite PIA_PURE=1")
    return payload


def main():
    print(f"backend: {BACKEND}")
    record_bench("perf_smoke", "backend",
                 extra={"backend": BACKEND,
                        "dispatch_floor": DISPATCH_FLOOR})
    base = run(batching=False)
    batched = run(batching=True)
    silent = run(batching=True, telemetry=False)
    for case, r in (("batching_off", base), ("batching_on", batched),
                    ("telemetry_off", silent)):
        record_bench("perf_smoke", case, report=r["report"],
                     wall_seconds=r["wall"])

    curve = dispatch_curve()
    best_rate = max(point["events_per_second"] for point in curve)
    for point in curve:
        record_bench("dispatch_rate", f"{BACKEND}_events_{point['events']}",
                     wall_seconds=point["wall_seconds"],
                     extra={"backend": BACKEND,
                            "events": point["events"],
                            "events_per_second": point["events_per_second"]})
    print(f"dispatch curve ({BACKEND}):")
    for point in curve:
        print(f"  {point['events']:>7} events : "
              f"{point['events_per_second']:>9,} ev/s")

    pure = None
    pure_error = None
    pure_best = None
    pure_overhead = None
    if BACKEND == "c":
        pure = run_pure_probe()
        if isinstance(pure, str):
            pure_error, pure = pure, None
        else:
            pure_best = max(point["events_per_second"]
                            for point in pure["dispatch_curve"])
            for point in pure["dispatch_curve"]:
                record_bench(
                    "dispatch_rate", f"python_events_{point['events']}",
                    wall_seconds=point["wall_seconds"],
                    extra={"backend": "python",
                           "events": point["events"],
                           "events_per_second": point["events_per_second"]})
            print("dispatch curve (python fallback):")
            for point in pure["dispatch_curve"]:
                print(f"  {point['events']:>7} events : "
                      f"{point['events_per_second']:>9,} ev/s")
            pure_overhead = pure.get("telemetry_overhead")
            if pure_overhead is not None:
                record_bench("telemetry_overhead", "python",
                             extra=dict(pure_overhead, backend="python",
                                        floor=TELEMETRY_OVERHEAD_FLOOR))
                print(f"telemetry plane (python fallback): "
                      f"{pure_overhead['off_events_per_second']:,} ev/s "
                      f"off -> {pure_overhead['on_events_per_second']:,} "
                      f"ev/s on (ratio {pure_overhead['ratio']:.3f})")

    codec_rows = codec_bench()
    for case, row in codec_rows.items():
        record_bench("codec", case, extra=row)
    print("codec vs pickle (bytes, ratio, round-trips/s):")
    for case, row in codec_rows.items():
        print(f"  {case:<18} {row['codec_bytes']:>6}B vs "
              f"{row['pickle_bytes']:>6}B  ({row['size_ratio']:>5.2f}x)  "
              f"{row['codec_roundtrips_per_second']:>8,}/s vs "
              f"{row['pickle_roundtrips_per_second']:>8,}/s")

    telemetry_touches = telemetry_noop_probe()
    record_bench("perf_smoke", "telemetry_noop",
                 extra={"instrument_touches": telemetry_touches})

    overhead = telemetry_overhead_probe()
    record_bench("telemetry_overhead", BACKEND,
                 extra=dict(overhead, backend=BACKEND,
                            floor=TELEMETRY_OVERHEAD_FLOOR))
    print(f"telemetry plane ({BACKEND}): "
          f"{overhead['off_events_per_second']:,} ev/s off -> "
          f"{overhead['on_events_per_second']:,} ev/s on "
          f"(ratio {overhead['ratio']:.3f})")

    print(f"frames        : {base['frames']} -> {batched['frames']} "
          f"({base['frames'] / batched['frames']:.2f}x)")
    print(f"wire bytes    : {base['bytes']} -> {batched['bytes']}")
    print(f"safe-time reqs: {base['requests']} -> {batched['requests']}")
    print(f"telemetry off : {silent['wall']:.3f}s vs {batched['wall']:.3f}s "
          f"on ({silent['trace_records']} trace records)")

    failures = []
    # The disabled path must stay a true no-op: no spans minted, no
    # records buffered, no instruments touched, an identical simulation.
    if silent["trace_records"] != 0:
        failures.append(
            f"telemetry-disabled run still buffered "
            f"{silent['trace_records']} trace records")
    if telemetry_touches != 0:
        failures.append(
            f"telemetry-disabled scheduler touched {telemetry_touches} "
            f"instruments/records — the disabled path is paying for "
            f"telemetry it does not emit")
    if silent["progress"] != batched["progress"]:
        failures.append(
            "simulation state diverged with telemetry disabled:\n"
            f"  on : {batched['progress']}\n  off: {silent['progress']}")
    if not batched["frames"] < base["frames"]:
        failures.append(
            f"batched run did not send strictly fewer frames: "
            f"{batched['frames']} vs {base['frames']}")
    if not batched["requests"] <= base["requests"]:
        failures.append(
            f"batched run sent more safe-time requests: "
            f"{batched['requests']} vs {base['requests']}")
    if batched["progress"] != base["progress"]:
        failures.append(
            "simulation state diverged between batching modes:\n"
            f"  off: {base['progress']}\n  on : {batched['progress']}")
    if best_rate < DISPATCH_FLOOR:
        failures.append(
            f"dispatch rate regressed: best {best_rate:,} ev/s is below "
            f"the {BACKEND} floor {DISPATCH_FLOOR:,} ev/s "
            f"(PIA_DISPATCH_FLOOR)")
    if pure_error is not None:
        failures.append(pure_error)
    if pure is not None:
        if pure_best < PURE_DISPATCH_FLOOR:
            failures.append(
                f"pure-python dispatch rate regressed: best {pure_best:,} "
                f"ev/s is below the floor {PURE_DISPATCH_FLOOR:,} ev/s "
                f"(PIA_PURE_DISPATCH_FLOOR)")
        for case, native_run in (("batching_off", base),
                                 ("batching_on", batched)):
            native_view = _parity_view(native_run)
            pure_view = pure["runs"][case]
            if native_view != pure_view:
                failures.append(
                    f"RunReport diverged between backends ({case}):\n"
                    f"  c     : {native_view}\n"
                    f"  python: {pure_view}")
    for case in ("signal_scalar", "safe_time_request", "safe_time_reply",
                 "safe_time_grant"):
        ratio = codec_rows[case]["size_ratio"]
        if ratio < CODEC_RATIO_FLOOR:
            failures.append(
                f"codec frame for {case} is only {ratio:.2f}x smaller "
                f"than pickle (floor {CODEC_RATIO_FLOOR}x)")
    if overhead["ratio"] < TELEMETRY_OVERHEAD_FLOOR:
        failures.append(
            f"continuous telemetry plane costs too much on {BACKEND}: "
            f"dispatch with flight+series on is {overhead['ratio']:.3f} "
            f"of the off rate (floor {TELEMETRY_OVERHEAD_FLOOR} — "
            f"PIA_TELEMETRY_OVERHEAD_FLOOR)")
    if pure_overhead is not None \
            and pure_overhead["ratio"] < TELEMETRY_OVERHEAD_FLOOR:
        failures.append(
            f"continuous telemetry plane costs too much on the pure "
            f"fallback: ratio {pure_overhead['ratio']:.3f} is below the "
            f"floor {TELEMETRY_OVERHEAD_FLOOR}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    parity = (f", pure fallback {pure_best:,} ev/s bit-identical"
              if pure is not None else "")
    print(f"perf smoke OK (backend {BACKEND}, best dispatch "
          f"{best_rate:,} ev/s, floor {DISPATCH_FLOOR:,}{parity})")
    return 0


if __name__ == "__main__":
    if "--pure-probe" in sys.argv[1:]:
        sys.exit(pure_probe())
    sys.exit(main())
