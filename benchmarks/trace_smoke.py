#!/usr/bin/env python
"""CI trace smoke: exported timelines must be valid and causally closed.

Runs the compute-star workload twice — clean, then under seeded chaos
(drops, duplicates, delays, reorders with retries) — exports each trace
as Chrome-trace-event JSON in both the virtual and wall views, and
fails on:

* any shape problem :func:`~repro.observability.validate_chrome_trace`
  reports (bad ``ph``, missing ``pid``/``tid``/``ts``, an ``X`` slice
  without ``dur``, a flow finish with no start);
* orphaned causal links in the record stream itself: a ``MSG_RECV``
  whose span was never sent, or a send whose parent span is unknown;
* a chaos run whose duplicated deliveries do *not* share the original
  send's span (every copy of a message must keep one identity).

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py
"""

import json
import os
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.bench.workloads import compute_star                # noqa: E402
from repro.faults import FaultPlan, LinkFaults, RetryPolicy   # noqa: E402
from repro.observability import (                             # noqa: E402
    causal_chains,
    validate_chrome_trace,
    write_chrome_trace,
)

CHAOS = FaultPlan(seed=0, default=LinkFaults(drop=0.12, duplicate=0.15,
                                             delay=0.12, delay_ticks=2,
                                             reorder=0.1))
RETRY = RetryPolicy(max_attempts=8, base_delay=0.0005, max_delay=0.002,
                    jitter=0.0)


def check(name, report):
    failures = []
    chains = causal_chains(report.trace_records)
    sends = len(chains["sends"])
    receives = sum(len(v) for v in chains["receives"].values())
    print(f"{name}: {sends} sends, {receives} span-linked receives, "
          f"max hop {chains['max_hop']}")
    if sends == 0:
        failures.append(f"{name}: no causally linked sends recorded")
    for record in chains["orphan_receives"]:
        failures.append(
            f"{name}: orphaned causal link — receive of span "
            f"{record.get('span')!r} has no recorded send")
    for record in chains["broken_parents"]:
        failures.append(
            f"{name}: send {record.get('span')!r} names unknown parent "
            f"{record.get('parent')!r}")
    for view in ("virtual", "wall"):
        with tempfile.NamedTemporaryFile("r", suffix=".json",
                                         delete=False) as fh:
            path = fh.name
        try:
            write_chrome_trace(path, report, view=view)
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        finally:
            os.unlink(path)
        problems = validate_chrome_trace(document)
        print(f"{name}: {view} view, "
              f"{len(document['traceEvents'])} timeline events, "
              f"{len(problems)} problems")
        failures.extend(f"{name}/{view}: {problem}"
                        for problem in problems[:10])
    return failures, chains


def main():
    failures = []

    clean = compute_star(2, 4, words=50, executor="cosim")
    clean.run(until=100.0)
    clean_failures, __ = check("clean", clean.report())
    failures.extend(clean_failures)

    chaos = compute_star(2, 4, words=50, executor="cosim",
                         fault_plan=CHAOS, retry_policy=RETRY)
    chaos.run(until=100.0)
    chaos_report = chaos.report()
    chaos_failures, chains = check("chaos", chaos_report)
    failures.extend(chaos_failures)
    # Exactly-once suppression drops the redundant copy before MSG_RECV,
    # so the shared span shows up on the suppression record instead: each
    # one must name a span the trace actually sent.
    suppressed = [record for record in chaos_report.trace_records
                  if record.get("action") == "duplicate-suppressed"]
    dup_count = chaos_report.faults.get("fault.duplicates", 0)
    print(f"chaos: {dup_count} injected duplicates, "
          f"{len(suppressed)} redundant copies suppressed")
    if dup_count and not suppressed:
        failures.append(
            "chaos run injected duplicates but recorded no suppressed "
            "copies")
    for record in suppressed:
        span = record.get("span")
        if span is None:
            failures.append(
                f"suppressed duplicate at t={record.get('time')} on "
                f"{record.get('subject')} carried no span — the copy "
                "lost the original send's trace context")
        elif span not in chains["sends"]:
            failures.append(
                f"suppressed duplicate names unknown span {span!r}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
