#!/usr/bin/env python3
"""Chaos experiment: a lossy Internet link and a mid-run node crash.

A producer on one node streams readings to a consumer on another while a
seeded :class:`FaultPlan` drops, duplicates and delays the traffic — and
then kills the consumer's node outright.  The resilience layer retries
the drops, deduplicates at the poll boundary, releases the delays, and
recovers the crashed node from the last Chandy-Lamport snapshot.  Because
every fault decision is a pure function of the plan's seed, the run — and
its fault counters — replay bit for bit.

Run:  python examples/chaos.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import Advance, FunctionComponent, Receive, Send
from repro.distributed import CoSimulation
from repro.faults import FaultPlan, LinkFaults, NodeCrash

VALUES = list(range(16))


def producer(comp):
    for value in VALUES:
        yield Advance(1.0)
        yield Send("out", value)


def collector(comp):
    comp.collected = []
    for __ in range(len(VALUES)):
        t, v = yield Receive("in")
        comp.collected.append((t, v))


def build(fault_plan=None):
    cosim = CoSimulation(snapshot_interval=4.0, fault_plan=fault_plan,
                         failure_policy="recover")
    ss_a = cosim.add_subsystem(cosim.add_node("seattle"), "design")
    ss_b = cosim.add_subsystem(cosim.add_node("boston"), "validation")
    prod = FunctionComponent("prod", producer, ports={"out": "out"})
    cons = FunctionComponent("cons", collector, ports={"in": "in"})
    ss_a.add(prod)
    ss_b.add(cons)
    channel = cosim.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("link", prod.port("out")),
                      ss_b.wire("link", cons.port("in")))
    return cosim, cons


def chaotic_run(seed):
    plan = FaultPlan(
        seed=seed,
        default=LinkFaults(drop=0.2, duplicate=0.1, delay=0.1, delay_ticks=2),
        crashes=(NodeCrash("boston", at_time=9.0),))
    cosim, cons = build(plan)
    cosim.run()
    return cosim, cons


def main():
    # The calm reference: no faults at all.
    reference, ref_cons = build()
    reference.run()

    # The same system under a seeded storm — plus a node crash at t=9.
    cosim, cons = chaotic_run(seed=42)
    assert cons.collected == ref_cons.collected, \
        "faults must never change the simulated behaviour"

    report = cosim.report(title="chaos, seed 42")
    print(report.render())

    # Replay: identical results *and* identical fault counters.
    again, __ = chaotic_run(seed=42)
    assert again.fault_injector.summary() == cosim.fault_injector.summary()
    print("replay of seed 42: fault counters identical, bit for bit")

    different, __ = chaotic_run(seed=7)
    assert different.fault_injector.summary() != cosim.fault_injector.summary()
    print("seed 7: a different storm, same final state")


if __name__ == "__main__":
    main()
