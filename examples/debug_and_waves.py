#!/usr/bin/env python3
"""Debugging a co-simulation: breakpoints, time travel, and waveforms.

The paper lists a debugger as current work (section 5) and asks for
"debugging support ... for the system as a whole" (section 1).  This
example drives the quickstart-style sensor/logger system under the
debugger — halting on a net value, inspecting state, rewinding — while a
VCD tracer captures the waveform (open ``waves.vcd`` in GTKWave: the
``sensor.localtime`` real trace visibly runs ahead of the signal events,
the two-level time model on screen).

Run:  python examples/debug_and_waves.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import (
    Advance,
    FunctionComponent,
    Receive,
    Send,
    Simulator,
    WaitUntil,
)
from repro.debug import Debugger, VcdTracer


def main():
    sim = Simulator("debug-demo")

    def sensor(comp):
        for index in range(16):
            yield WaitUntil(comp.local_time + 1e-3)
            yield Advance(120e-6)                 # conversion time
            yield Send("out", (index * 37) % 100)

    def logger(comp):
        comp.seen = []
        while True:
            t, value = yield Receive("in")
            comp.seen.append(value)

    sensor_c = sim.add(FunctionComponent("sensor", sensor,
                                         ports={"out": "out"}))
    logger_c = sim.add(FunctionComponent("logger", logger,
                                         ports={"in": "in"}))
    net = sim.wire("adc", sensor_c.port("out"), logger_c.port("in"))

    tracer = VcdTracer(timescale="1 us")
    tracer.trace_net(net, width=8)
    tracer.trace_local_time(sensor_c)

    debugger = Debugger(sim)
    debugger.trace(limit=200)
    debugger.watch("adc")
    debugger.break_on_signal("adc", value=85)     # (5*37)%100

    reason = debugger.run()
    print(f"stopped: {reason}")
    print(debugger.where())
    print(f"logger has seen: {debugger.inspect('logger')['seen']}")

    snap = debugger.snapshot("at-85")
    debugger.run()
    print(f"\nran to completion: {len(logger_c.seen)} samples")
    print(f"rewinding to t={debugger.rewind(snap) * 1e3:g} ms ...")
    print(f"logger now: {debugger.inspect('logger')['seen']}")
    debugger.run()
    print(f"replayed: {len(logger_c.seen)} samples "
          f"(watch log holds {len(debugger.watch_log)} changes)")

    path = tracer.write("waves.vcd")
    print(f"\nwaveform with {tracer.change_count()} changes -> {path}")
    print("last trace lines:")
    for line in debugger.backtrace(4):
        print(f"  {line}")


if __name__ == "__main__":
    main()
