#!/usr/bin/env python3
"""Geographically distributed co-design: two design groups, one system.

The Seattle group owns the handheld side of WubbleU; the Boston group owns
the cellular chip and base station (their IP stays on their node — the
paper's intellectual-property story).  The design is partitioned by a cut
of the component graph, the bus nets are split across an Internet-model
channel, and a detail-level slider walks the link from transaction level
down to word level while the page loads keep producing identical results.

Run:  python examples/distributed_codesign.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.apps import ASSIGN_SPLIT, WubbleUConfig, build_design, run_page_load
from repro.bench import Table, format_count, format_seconds
from repro.distributed import CoSimulation, deploy, suggest_partition
from repro.transport import INTERNET


def load_at_level(level: str):
    config = WubbleUConfig(level=level, total_bytes=12_000,
                           image_count=2, image_size=48)
    design, page = build_design(config)
    cosim = CoSimulation()
    deployment = deploy(design, ASSIGN_SPLIT, cosim,
                        placement={"handheld": "seattle",
                                   "cellsite": "boston"})
    cosim.set_link_model("seattle", "boston", INTERNET)
    result = run_page_load(cosim, location="remote", level=level)
    return result, deployment


def main():
    table = Table("Seattle/Boston co-design: link detail vs cost",
                  ["link level", "inter-node msgs", "modelled net time",
                   "virtual time"])
    virtual_times = set()
    for level in ("transaction", "packet", "word"):
        print(f"running at {level} level ...", flush=True)
        result, deployment = load_at_level(level)
        virtual_times.add(round(result.virtual_time, 6))
        table.add(level, format_count(result.messages),
                  format_seconds(result.network_delay),
                  format_seconds(result.virtual_time))
    table.note(f"split nets: {sorted(deployment.splits)}")
    table.show()

    # The framework can also *suggest* where to cut.
    config = WubbleUConfig(total_bytes=12_000, image_count=2, image_size=48)
    design, __ = build_design(config)
    suggestion = suggest_partition(design, weights={
        "bus_fwd": 0.5, "bus_bwd": 0.5,     # cheap to split: low traffic...
        "air_fwd": 5.0, "air_bwd": 5.0,     # ...relative to these
    })
    groups = {}
    for component, home in sorted(suggestion.items()):
        groups.setdefault(home, []).append(component)
    print("suggested balanced partition (Kernighan-Lin):")
    for home, members in sorted(groups.items()):
        print(f"  {home}: {', '.join(members)}")


if __name__ == "__main__":
    main()
