#!/usr/bin/env python3
"""Hardware in the loop: a gate-level Pamette board served remotely.

A lab node serves a simulated DEC Pamette carrying a 6-bit counter
bitstream with a wrap interrupt.  A design node wraps it into the
co-simulation through the hardware/software stub (read/set time, run-for,
interrupt buffering — paper section 2.3) and a firmware component counts
the wraps.  Because the board implements Pia-aware state save, the whole
run — hardware included — can be checkpointed and rewound.

Run:  python examples/hardware_in_the_loop.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import FunctionComponent, Receive
from repro.distributed import CoSimulation
from repro.hw import (
    HardwareComponent,
    RemoteHardwareClient,
    RemoteHardwareServer,
    SimulatedPamette,
    counter_bitstream,
)
from repro.transport import INTERNET


def main():
    cosim = CoSimulation()
    lab = cosim.add_node("lab")
    desk = cosim.add_node("desk")
    cosim.set_link_model("desk", "lab", INTERNET)

    # The lab serves the board: a 6-bit counter at 100 kHz that raises
    # "wrap" every 64 ticks (640 us).
    board = SimulatedPamette(counter_bitstream(6, irq_on_wrap=True),
                             clock_hz=100e3)
    RemoteHardwareServer(lab).attach("counter-board", board)

    # The designer's node patches the web-served board into the circuit.
    ss = cosim.add_subsystem(desk, "bench")
    client = RemoteHardwareClient(desk, "lab", "counter-board")
    print(f"connected to {client.remote_type} @ {client.clock_hz:g} Hz "
          f"(state save: {client.supports_state_save})")

    hw = HardwareComponent("board", client, window=500e-6, lifetime=5e-3,
                           irq_lines=["wrap"])

    def monitor(comp):
        comp.wraps = []
        while True:
            t, __ = yield Receive("in")
            comp.wraps.append(round(t * 1e6))

    mon = FunctionComponent("monitor", monitor, ports={"in": "in"})
    ss.add(hw)
    ss.add(mon)
    ss.wire("irq", hw.port("wrap"), mon.port("in"))

    cosim.run(until=2e-3)
    snapshot = cosim.snapshot()
    print(f"t=2 ms: wraps at {mon.wraps} us; board tick={board.read_time()}")

    cosim.run()
    print(f"t=5 ms: wraps at {mon.wraps} us; board tick={board.read_time()}")

    # Rewind everything — including the hardware.
    cosim.registry.snapshots[snapshot].cuts  # (inspectable)
    cosim.recovery.rollback_to(cosim.registry.snapshots[snapshot])
    print(f"rewound: t={cosim.global_time() * 1e3:g} ms, "
          f"wraps={mon.wraps}, board tick={board.read_time()}")
    cosim.run()
    print(f"replayed to t=5 ms: wraps at {mon.wraps} us")

    report = cosim.transport.accounting.report()
    for src, dst, model, messages, size, delay, __ in report:
        print(f"  link {src}->{dst} [{model}]: {messages} msgs, "
              f"{size} bytes, {delay:.2f} s modelled")


if __name__ == "__main__":
    main()
