#!/usr/bin/env python3
"""An instruction-set simulator as a Pia component.

The paper notes a component could be "an instruction set simulator of a
particular processor".  Here a small assembly program runs on the tiny
ISS: it receives sensor words over a port, keeps a running checksum in
memory, and emits the checksum every four samples — co-simulated against a
behavioural sensor model, with per-instruction timing from the i960
profile.

Run:  python examples/iss_firmware.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.processor import I960, IssComponent, assemble

FIRMWARE = """
        .equ SUM   0x100
        .equ COUNT 0x104
start:
        LDI  r5, 0
        ST   r5, SUM(r0)
        ST   r5, COUNT(r0)
loop:
        IN   r1, sensor          ; blocking read from the sensor port
        BEQ  r1, r0, done        ; 0 terminates the stream
        LD   r2, SUM(r0)
        XOR  r2, r2, r1          ; checksum = xor of samples
        SHL  r3, r2, r4          ; fold a little
        ADDI r4, r4, 1
        ANDI r4, r4, 3
        ST   r2, SUM(r0)
        LD   r6, COUNT(r0)
        ADDI r6, r6, 1
        ST   r6, COUNT(r0)
        ANDI r7, r6, 3
        BNE  r7, r0, loop
        OUT  r2, result          ; every 4th sample: report checksum
        JMP  loop
done:
        LD   r2, SUM(r0)
        OUT  r2, result
        HALT
"""

SAMPLES = [0x11, 0x22, 0x33, 0x44, 0xA5, 0x5A, 0x0F, 0xF0, 0]


def main():
    sim = Simulator("iss-demo")
    cpu = IssComponent("cpu", assemble(FIRMWARE), profile=I960,
                       ports={"sensor": "in", "result": "out"})

    def sensor(comp):
        for sample in SAMPLES:
            yield Advance(100e-6)          # a sample every 100 us
            yield Send("out", sample)

    def console(comp):
        comp.reports = []
        while True:
            t, value = yield Receive("in")
            comp.reports.append((round(t * 1e6, 1), hex(value)))

    feed = FunctionComponent("sensor", sensor, ports={"out": "out"})
    out = FunctionComponent("console", console, ports={"in": "in"})
    sim.add(cpu)
    sim.add(feed)
    sim.add(out)
    sim.wire("sense", feed.port("out"), cpu.port("sensor"))
    sim.wire("report", cpu.port("result"), out.port("in"))

    sim.run()

    print(f"program: {len(assemble(FIRMWARE))} instructions")
    print(f"executed {cpu.instret} instructions "
          f"in {cpu.local_time * 1e6:.1f} us of virtual time "
          f"({cpu.timer.total_cycles} cycles @ {I960.clock_hz / 1e6:g} MHz)")
    expected = 0
    for sample in SAMPLES[:-1]:
        expected ^= sample
    print(f"checksum reports (t_us, value): {out.reports}")
    print(f"final checksum 0x{cpu.memory.read(0x100):x} "
          f"(expected 0x{expected:x})")
    assert cpu.memory.read(0x100) == expected
    assert cpu.memory.read(0x104) == len(SAMPLES) - 1


if __name__ == "__main__":
    main()
