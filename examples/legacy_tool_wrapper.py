#!/usr/bin/env python3
"""Connecting a legacy design tool through a customized wrapper.

"Design tools can have built in support for Pia sockets ... but if not,
the tools can be connected through a customized wrapper" (paper section
2).  Here the legacy tool is a stand-alone checker process — imagine a
vendor's golden-model simulator — that knows nothing about Pia: it reads
JSON on stdin and writes JSON on stdout.  The wrapper runs it as a
subprocess and splices it between two native components; the checker's
compute time (its ``advance`` actions) lands in virtual time like any
other component's.

Run:  python examples/legacy_tool_wrapper.py
"""

import os
import tempfile
import textwrap

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.tools import ExternalToolComponent, python_tool_argv

#: The legacy tool: a parity checker with a 100 us check latency.
CHECKER_TOOL = textwrap.dedent("""
    import json, sys

    def reply(**msg):
        sys.stdout.write(json.dumps(msg) + "\\n")
        sys.stdout.flush()

    checked = 0
    for line in sys.stdin:
        msg = json.loads(line)
        if msg["op"] == "init":
            reply(op="log", text="golden checker v1.7 attached")
            reply(op="yield")
        elif msg["op"] == "deliver":
            word = msg["value"]
            checked += 1
            parity = bin(word).count("1") % 2
            reply(op="advance", dt=100e-6)
            reply(op="send", port="out",
                  value={"word": word, "parity": parity, "n": checked})
            reply(op="yield")
        elif msg["op"] == "quit":
            break
""")


def main():
    with tempfile.TemporaryDirectory() as tooldir:
        tool_path = os.path.join(tooldir, "golden_checker.py")
        with open(tool_path, "w") as handle:
            handle.write(CHECKER_TOOL)

        sim = Simulator("wrapped-tool-demo")
        checker = sim.add(ExternalToolComponent(
            "checker", python_tool_argv(tool_path)))

        def dut(comp):
            for word in (0b1011, 0b1111, 0b0001, 0b0110):
                yield Advance(1e-3)
                yield Send("out", word)

        def verdicts(comp):
            comp.got = []
            while True:
                t, report = yield Receive("in")
                comp.got.append((round(t * 1e3, 2), report))

        device = sim.add(FunctionComponent("dut", dut, ports={"out": "out"}))
        sink = sim.add(FunctionComponent("sink", verdicts,
                                         ports={"in": "in"}))
        sim.wire("stim", device.port("out"), checker.port("in"))
        sim.wire("result", checker.port("out"), sink.port("in"))

        try:
            sim.run()
        finally:
            checker.close()

        print(f"tool said: {checker.tool_log}")
        for time_ms, report in sink.got:
            print(f"  t={time_ms} ms  word=0b{report['word']:04b} "
                  f"parity={report['parity']}")
        assert [r["parity"] for __, r in sink.got] == [1, 0, 1, 0]
        print(f"checked {checker.deliveries} words through the wrapper")


if __name__ == "__main__":
    main()
