#!/usr/bin/env python3
"""Live migration and supervised failover on the multiprocess backplane.

The paper's geographically distributed sessions died with their weakest
workstation; this example shows the repo's answer.  A three-node compute
star runs three times under ``failure_policy="migrate"``:

1. **reference** — fault-free, nothing moves;
2. **live migration** — ``migrate_at()`` moves one worker node to a
   fresh pool process mid-run: halt at a safe point, drain the wire to
   quiescence, take a Chandy-Lamport cut, ship the portable images,
   re-splice every channel endpoint, resume;
3. **failover** — a scheduled crash kills a worker process outright; the
   supervisor's heartbeat detector confirms the death, elects a fresh
   pool worker, rebuilds the node from its factory specs and restores it
   from the last completed global snapshot.

All three runs must finish with bit-identical per-subsystem virtual
times and event counts — a move (voluntary or forced) is invisible in
simulation state.  The placement timeline printed at the end shows each
node's journey between worker processes, and ``report.migrations``
carries the measured pause and snapshot size for every move.

Run:  python examples/migrate_node.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.bench.workloads import compute_star_multiprocess
from repro.faults import FaultPlan, NodeCrash

WORKERS = 2          # n-hub + n-w0 + n-w1: three nodes, three processes
ROUNDS = 6
WORDS = 2_000
MOVE_AT = 2.0        # global virtual time triggering the move / crash


def progress(report):
    return sorted((row["name"], row["time"], row["dispatched"])
                  for row in report.subsystems)


def show_moves(report):
    for record in report.migrations:
        print(f"  {record['kind']:<8} {record['node']:<6} "
              f"({record['reason']}) at t={record['at_global_time']:g}: "
              f"paused {record['wall_pause'] * 1000:.0f} ms, shipped "
              f"{record['snapshot_bytes']} bytes, replayed "
              f"{record['replayed_messages']} in-flight messages")


def show_placement(cosim):
    for entry in cosim.placement_log:
        print(f"  epoch {entry['epoch']}  {entry['node']:<6} "
              f"{entry['event']:<9} {entry['worker']} (pid {entry['pid']})")


def main():
    print(f"compute star: {WORKERS} worker nodes x {ROUNDS} rounds, "
          f"failure_policy='migrate'\n")

    reference = compute_star_multiprocess(WORKERS, ROUNDS, words=WORDS,
                                          failure_policy="migrate")
    events_ref = reference.run(timeout=120.0)
    rows_ref = progress(reference.report())
    print(f"reference run : {events_ref} events, nothing moved")

    moved = compute_star_multiprocess(WORKERS, ROUNDS, words=WORDS,
                                      failure_policy="migrate")
    moved.migrate_at("n-w1", MOVE_AT)
    events_moved = moved.run(timeout=120.0)
    report_moved = moved.report()
    print(f"live migration: {events_moved} events, n-w1 moved at "
          f"t={MOVE_AT:g}")
    show_moves(report_moved)

    crashed = compute_star_multiprocess(
        WORKERS, ROUNDS, words=WORDS, failure_policy="migrate",
        fault_plan=FaultPlan(seed=3,
                             crashes=[NodeCrash("n-w0", at_time=MOVE_AT)]))
    events_crashed = crashed.run(timeout=120.0)
    report_crashed = crashed.report()
    print(f"failover run  : {events_crashed} events, n-w0's worker was "
          f"killed at t={MOVE_AT:g} and adopted by a fresh process")
    show_moves(report_crashed)

    assert progress(report_moved) == rows_ref, \
        "live migration changed simulation state"
    assert progress(report_crashed) == rows_ref, \
        "failover changed simulation state"
    assert events_moved == events_ref and events_crashed == events_ref
    assert [m["kind"] for m in report_moved.migrations] == ["migrate"]
    assert [m["kind"] for m in report_crashed.migrations] == ["failover"]
    print("\nall three runs agree bit for bit: same virtual times, "
          "same event counts")

    print("\nplacement timeline (live migration run):")
    show_placement(moved)
    print("\nplacement timeline (failover run):")
    show_placement(crashed)

    for cosim in (reference, moved, crashed):
        cosim.close()


if __name__ == "__main__":
    main()
