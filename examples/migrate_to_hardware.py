#!/usr/bin/env python3
"""Gradual migration of functionality into real hardware.

The design starts fully simulated; then the cellular ASIC arrives from the
fab.  Three runs of the *same testbench*:

1. the behavioural software model of the chip;
2. the fabricated chip (a stub-wrapped ModemChip) on the designer's bench;
3. the same chip served from a remote lab node over an Internet link —
   "remote operation" of the paper's Fig. 6.

The page loads identically each time; only where the chip's latency comes
from changes — estimates, local ticks, remote ticks.

Run:  python examples/migrate_to_hardware.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.apps import (
    ModemChip,
    WubbleUConfig,
    build_local,
    run_page_load,
)
from repro.bench import Table, format_count, format_seconds
from repro.distributed import CoSimulation
from repro.hw import RemoteHardwareClient, RemoteHardwareServer

SMALL = dict(total_bytes=12_000, image_count=2, image_size=48)


def run_stage(label, backend, stub=None):
    config = WubbleUConfig(level="packet", modem_backend=backend,
                           modem_stub=stub, **SMALL)
    cosim, __, page = build_local(config)
    result = run_page_load(cosim, location="local", level="packet")
    netif = cosim.component("NetIf")
    jobs = getattr(getattr(netif, "stub", None), "jobs_done", None)
    if jobs is None:
        jobs = getattr(netif, "frames_up", 0) + getattr(netif,
                                                        "frames_down", 0)
    return result, jobs, page


def main():
    table = Table("migration: the same testbench, three chip backends",
                  ["stage", "virtual load time", "chip jobs", "payload"])

    result, jobs, page = run_stage("model", "model")
    table.add("1. behavioural model", format_seconds(result.virtual_time),
              format_count(jobs), format_count(result.bytes_loaded))

    result, jobs, __ = run_stage("bench", "hardware")
    table.add("2. chip on the bench", format_seconds(result.virtual_time),
              format_count(jobs), format_count(result.bytes_loaded))

    # Stage 3: the chip lives on a lab node, reached over the transport.
    lab_cosim = CoSimulation()
    lab = lab_cosim.add_node("lab")
    desk = lab_cosim.add_node("desk")
    from repro.transport import INTERNET
    lab_cosim.set_link_model("desk", "lab", INTERNET)
    RemoteHardwareServer(lab).attach("modem0", ModemChip())
    client = RemoteHardwareClient(desk, "lab", "modem0")
    config = WubbleUConfig(level="packet", modem_backend="hardware",
                           modem_stub=client, **SMALL)
    from repro.apps import ASSIGN_LOCAL, build_design
    from repro.distributed import deploy
    design, page = build_design(config)
    deploy(design, ASSIGN_LOCAL, lab_cosim, placement={"handheld": "desk"})
    result = run_page_load(lab_cosim, location="remote-hw", level="packet")
    hw_msgs = lab_cosim.transport.accounting.links.get(("desk", "lab"))
    table.add("3. chip in the remote lab",
              format_seconds(result.virtual_time),
              format_count(lab_cosim.component("NetIf").stub.jobs_done
                           if hasattr(lab_cosim.component("NetIf").stub,
                                      "jobs_done") else client.calls_made),
              format_count(result.bytes_loaded))
    table.note(f"stage 3 made {client.calls_made} hardware calls over the "
               f"desk->lab Internet link "
               f"({hw_msgs.messages if hw_msgs else 0} messages)")
    table.show()


if __name__ == "__main__":
    main()
