#!/usr/bin/env python3
"""Process-per-node execution: the GIL-free deployment mode.

The same compute-star system — a hub fanning work out to two WubbleU-style
word-crunching nodes — runs twice: first under the cooperative
single-process executor, then with every Pia node in its **own OS
process**, joined by real loopback TCP with batched frames and piggybacked
safe-time grants.  Because subsystems cannot cross a process boundary as
live objects, the multiprocess run is described by *specs*: factories
named by dotted path that each worker process resolves and calls itself.

The punchline is the paper's: deployment is a pure performance choice.
Both runs must agree bit for bit on virtual times and event counts — only
wall-clock differs (and only multiprocess can use more than one core,
since the checksum loops hold the GIL).

Run:  python examples/multiprocess_nodes.py
      python examples/multiprocess_nodes.py --timeline star.json
      python examples/multiprocess_nodes.py --status status.json
          (and, in another terminal:
           python -m repro.observability.live status.json)

``--timeline`` exports the multiprocess run's merged causal trace as a
Chrome-trace/Perfetto JSON timeline (open it at https://ui.perfetto.dev);
``--status`` makes the coordinator publish live status snapshots the
``repro.observability.live`` console view can tail.
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

import argparse
import time

from repro.bench.workloads import compute_star, compute_star_multiprocess
from repro.observability import validate_chrome_trace, write_chrome_trace

WORKERS = 2
ROUNDS = 4
WORDS = 20_000


def progress(report):
    return [(row["name"], row["time"], row["dispatched"])
            for row in report.subsystems]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeline", metavar="PATH", default=None,
                        help="export the multiprocess run's causal trace "
                             "as Chrome-trace/Perfetto JSON")
    parser.add_argument("--view", choices=("virtual", "wall"),
                        default="virtual",
                        help="timeline timebase (default: virtual)")
    parser.add_argument("--status", metavar="PATH", default=None,
                        help="publish live status snapshots to PATH "
                             "(tail with python -m repro.observability.live)")
    args = parser.parse_args(argv)

    print(f"compute star: {WORKERS} worker nodes x {ROUNDS} rounds "
          f"of {WORDS}-word checksums\n")

    cooperative = compute_star(WORKERS, ROUNDS, words=WORDS)
    start = time.perf_counter()
    events = cooperative.run()
    coop_wall = time.perf_counter() - start
    coop_rows = progress(cooperative.report())

    multiprocess = compute_star_multiprocess(WORKERS, ROUNDS, words=WORDS)
    start = time.perf_counter()
    mp_events = multiprocess.run(timeout=120.0, status_path=args.status)
    mp_wall = time.perf_counter() - start
    mp_report = multiprocess.report()
    mp_rows = progress(mp_report)

    print(f"{'subsystem':<10} {'virtual time':>12} {'events':>7}")
    for name, at, dispatched in mp_rows:
        print(f"{name:<10} {at:>12g} {dispatched:>7}")
    print()
    print(f"cooperative : {events} events in {coop_wall:.2f}s (1 process)")
    print(f"multiprocess: {mp_events} events in {mp_wall:.2f}s "
          f"({WORKERS + 1} processes over loopback TCP)")
    frames = sum(row["frames"] for row in mp_report.links)
    print(f"wire traffic: {frames} frames, "
          f"{sum(row['bytes'] for row in mp_report.links)} bytes "
          f"across {len(mp_report.links)} links")

    assert mp_events == events, \
        f"event counts diverged: {mp_events} != {events}"
    assert mp_rows == coop_rows, \
        f"virtual times diverged:\n  coop: {coop_rows}\n  mp  : {mp_rows}"
    print("\ndeployments agree bit for bit: "
          "same virtual times, same event counts")

    if mp_report.stall_attribution:
        print("\nstall attribution (who waited on whom):")
        for row in mp_report.stall_attribution:
            marker = "  <- critical peer" if row["critical"] else ""
            print(f"  {row['subsystem']:<10} waited {row['waited']:g} "
                  f"virtual on {row['peer_node']} "
                  f"({row['waits']} waits){marker}")

    if args.timeline:
        document = write_chrome_trace(args.timeline, mp_report,
                                      view=args.view)
        problems = validate_chrome_trace(document)
        assert not problems, f"exported timeline invalid: {problems[:3]}"
        print(f"\ntimeline ({args.view} view): "
              f"{len(document['traceEvents'])} events -> {args.timeline}\n"
              "open it at https://ui.perfetto.dev (cross-node sends show "
              "as flow arrows)")
    if args.status:
        print(f"status snapshots published to {args.status} "
              "(final phase: done)")


if __name__ == "__main__":
    main()
