#!/usr/bin/env python3
"""Process-per-node execution: the GIL-free deployment mode.

The same compute-star system — a hub fanning work out to two WubbleU-style
word-crunching nodes — runs twice: first under the cooperative
single-process executor, then with every Pia node in its **own OS
process**, joined by real loopback TCP with batched frames and piggybacked
safe-time grants.  Because subsystems cannot cross a process boundary as
live objects, the multiprocess run is described by *specs*: factories
named by dotted path that each worker process resolves and calls itself.

The punchline is the paper's: deployment is a pure performance choice.
Both runs must agree bit for bit on virtual times and event counts — only
wall-clock differs (and only multiprocess can use more than one core,
since the checksum loops hold the GIL).

Run:  python examples/multiprocess_nodes.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

import time

from repro.bench.workloads import compute_star, compute_star_multiprocess

WORKERS = 2
ROUNDS = 4
WORDS = 20_000


def progress(report):
    return [(row["name"], row["time"], row["dispatched"])
            for row in report.subsystems]


def main():
    print(f"compute star: {WORKERS} worker nodes x {ROUNDS} rounds "
          f"of {WORDS}-word checksums\n")

    cooperative = compute_star(WORKERS, ROUNDS, words=WORDS)
    start = time.perf_counter()
    events = cooperative.run()
    coop_wall = time.perf_counter() - start
    coop_rows = progress(cooperative.report())

    multiprocess = compute_star_multiprocess(WORKERS, ROUNDS, words=WORDS)
    start = time.perf_counter()
    mp_events = multiprocess.run(timeout=120.0)
    mp_wall = time.perf_counter() - start
    mp_report = multiprocess.report()
    mp_rows = progress(mp_report)

    print(f"{'subsystem':<10} {'virtual time':>12} {'events':>7}")
    for name, at, dispatched in mp_rows:
        print(f"{name:<10} {at:>12g} {dispatched:>7}")
    print()
    print(f"cooperative : {events} events in {coop_wall:.2f}s (1 process)")
    print(f"multiprocess: {mp_events} events in {mp_wall:.2f}s "
          f"({WORKERS + 1} processes over loopback TCP)")
    frames = sum(row["frames"] for row in mp_report.links)
    print(f"wire traffic: {frames} frames, "
          f"{sum(row['bytes'] for row in mp_report.links)} bytes "
          f"across {len(mp_report.links)} links")

    assert mp_events == events, \
        f"event counts diverged: {mp_events} != {events}"
    assert mp_rows == coop_rows, \
        f"virtual times diverged:\n  coop: {coop_rows}\n  mp  : {mp_rows}"
    print("\ndeployments agree bit for bit: "
          "same virtual times, same event counts")


if __name__ == "__main__":
    main()
