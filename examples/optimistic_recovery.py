#!/usr/bin/env python3
"""Optimistic execution, stragglers and coordinated rollback, visibly.

A consumer subsystem with lots of private work races 60 virtual seconds
ahead of a slow producer over an *optimistic* channel.  Every producer
message then lands in the consumer's past — a straggler — and the system
recovers by restoring the latest Chandy-Lamport snapshot and re-executing.
The same workload over a *conservative* channel never rolls back but pays
safe-time traffic and stalls instead.  Both deliver identical results.

Run:  python examples/optimistic_recovery.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.bench import Table, format_count, streaming_pair
from repro.distributed import ChannelMode


def run(mode: ChannelMode):
    cosim = streaming_pair(
        12, 1.0, mode=mode, consumer_work=60.0,
        snapshot_interval=4.0 if mode is ChannelMode.OPTIMISTIC else None)
    cosim.run()
    consumer = cosim.component("consumer")
    return cosim, consumer.received


def main():
    table = Table("conservative vs optimistic, same workload",
                  ["mode", "stalls", "safe-time reqs", "snapshots",
                   "rollbacks", "events"])
    results = {}
    for mode in (ChannelMode.CONSERVATIVE, ChannelMode.OPTIMISTIC):
        cosim, received = run(mode)
        results[mode.value] = received
        table.add(mode.value,
                  format_count(cosim.stalls()),
                  format_count(cosim.safe_time_requests()),
                  format_count(len(cosim.registry.snapshots)),
                  format_count(len(cosim.recovery.rollbacks)),
                  format_count(sum(ss.scheduler.dispatched
                                   for ss in cosim.subsystems.values())))
        if mode is ChannelMode.OPTIMISTIC:
            for straggler_t, snap_id, restored_t in cosim.recovery.rollbacks:
                print(f"  rollback: straggler at t={straggler_t:g} -> "
                      f"restored snapshot {snap_id} (t<={restored_t:g})")
    table.show()

    assert results["conservative"] == results["optimistic"]
    print("identical delivery under both modes:",
          results["conservative"][:4], "...")


if __name__ == "__main__":
    main()
