#!/usr/bin/env python3
"""Quickstart: build and run a tiny co-simulation on one host.

A sensor component samples a value every millisecond and ships it over an
I2C link (modelled at byte level) to a logger.  Mid-run, a *switchpoint*
drops the link to transaction level — the paper's dynamic detail
switching — and at the end we rewind the whole simulation from a
checkpoint and replay it.

Run:  python examples/quickstart.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import (
    Advance,
    Interface,
    ProcessComponent,
    PortDirection,
    ReceiveTransfer,
    Simulator,
    Transfer,
    WaitUntil,
)
from repro.protocols import i2c_protocol


class Sensor(ProcessComponent):
    """Samples a ramp and transfers each reading over its I2C interface."""

    def __init__(self, name, samples=20):
        super().__init__(name)
        self.samples = samples
        self.add_interface(Interface("i2c", i2c_protocol(),
                                     level="byteLevel", out_port="sda_out"))

    def run(self):
        for index in range(self.samples):
            yield WaitUntil(self.local_time + 1e-3)   # 1 kHz sampling
            reading = (index * 7) % 256
            yield Transfer("i2c", bytes([reading, index]))


class Logger(ProcessComponent):
    """Reassembles transfers and keeps the readings."""

    def __init__(self, name):
        super().__init__(name)
        self.readings = []
        self.add_interface(Interface("i2c", i2c_protocol(),
                                     level="byteLevel", in_port="sda_in"))

    def run(self):
        while True:
            time, payload = yield ReceiveTransfer("i2c")
            self.readings.append((round(time * 1e3, 3), payload[0]))


def main():
    sim = Simulator("quickstart")
    sensor = sim.add(Sensor("sensor"))
    logger = sim.add(Logger("logger"))
    sim.wire("sda", sensor.port("sda_out"), logger.port("sda_in"))

    # Drop the link detail once the sensor has been running for 10 ms.
    sim.add_switchpoint(
        "when sensor.localtime >= 0.010: "
        "sensor.i2c -> transaction, logger.i2c -> transaction")

    sim.run(until=8e-3)
    checkpoint = sim.checkpoint("mid-run")
    print(f"t={sim.now * 1e3:.1f} ms  readings so far: {logger.readings}")

    sim.run()
    print(f"t={sim.now * 1e3:.1f} ms  total readings: {len(logger.readings)}")
    print(f"link level after switchpoint: {sensor.interface('i2c').level}")

    # Rewind and replay — same history, deterministically.
    before = list(logger.readings)
    sim.restore(checkpoint)
    print(f"restored to t={sim.now * 1e3:.1f} ms "
          f"({len(logger.readings)} readings)")
    sim.run()
    assert logger.readings == before or len(logger.readings) == 20
    print(f"replayed to t={sim.now * 1e3:.1f} ms  "
          f"readings again: {len(logger.readings)}")


if __name__ == "__main__":
    main()
