#!/usr/bin/env python3
"""The paper's deployment shape for real: thread-per-node over TCP.

Two Pia nodes run concurrently on their own threads, joined by genuine
localhost TCP sockets (length-prefixed frames, blocking safe-time calls) —
the closest in-machine analogue of the two Pentium Pro workstations of the
evaluation.  A ping-pong workload exercises the bidirectional safe-time
discipline under true concurrency.

Run:  python examples/real_sockets.py
"""

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import Advance, FunctionComponent, Receive, Send
from repro.distributed import ThreadedCoSimulation
from repro.transport import TcpTransport


def main():
    with TcpTransport() as transport:
        runner = ThreadedCoSimulation(transport=transport)
        ss_a = runner.add_subsystem(runner.add_node("workstation-1"), "sa")
        ss_b = runner.add_subsystem(runner.add_node("workstation-2"), "sb")

        def ping(comp):
            comp.rtts = []
            for index in range(10):
                yield Advance(1.0)
                yield Send("tx", index)
                t, value = yield Receive("rx")
                comp.rtts.append((index, t))

        def pong(comp):
            while True:
                t, value = yield Receive("rx")
                yield Advance(0.5)
                yield Send("tx", value * value)

        a = FunctionComponent("ping", ping, ports={"tx": "out", "rx": "in"})
        b = FunctionComponent("pong", pong, ports={"tx": "out", "rx": "in"})
        ss_a.add(a)
        ss_b.add(b)
        channel = runner.connect(ss_a, ss_b)
        channel.split_net(ss_a.wire("fwd", a.port("tx")),
                          ss_b.wire("fwd", b.port("rx")))
        channel.split_net(ss_b.wire("rev", b.port("tx")),
                          ss_a.wire("rev", a.port("rx")))

        events = runner.run(timeout=60.0)
        print(f"dispatched {events} events across two threads over TCP")
        print(f"ping-pong rounds (virtual completion times): {a.rtts}")
        for (src, dst), stats in sorted(
                transport.accounting.links.items()):
            print(f"  {src} -> {dst}: {stats.messages} messages, "
                  f"{stats.bytes} bytes")
        assert [v for __, v in a.rtts] == [1.5 * (i + 1) for i in range(10)]


if __name__ == "__main__":
    main()
