#!/usr/bin/env python3
"""Evaluating a vendor's web-served component inside your circuit.

The paper's closing motivation: Intel's remote evaluation facility let
designers try i960 processors over the web, and "the Pia framework pushes
this concept a little further and allows the user to patch web based
components into a simulated circuit for more extensive evaluation"
(section 1).  Pia's class loader fetches component classes from URLs and
reloads them without restarting the simulator (section 3.2).

This example plays the vendor: it publishes a DSP component as a source
file (our offline stand-in for a vendor URL), loads it through the class
loader, patches it into a running testbench — then the vendor ships an
improved revision and the designer reloads and re-evaluates, same circuit,
no restart.

Run:  python examples/vendor_component_evaluation.py
"""

import os
import tempfile
import textwrap

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.loader import ComponentLoader

VENDOR_V1 = textwrap.dedent("""
    from repro.core import ProcessComponent, Receive, Send
    from repro.core.port import PortDirection

    class VendorDsp(ProcessComponent):
        '''Rev A: plain pass-through gain block (gain = 2).'''

        REVISION = "A"

        def __init__(self, name):
            super().__init__(name)
            self.add_port("in", PortDirection.IN)
            self.add_port("out", PortDirection.OUT)

        def run(self):
            while True:
                t, x = yield Receive("in")
                yield Send("out", 2 * x)
""")

VENDOR_V2 = VENDOR_V1.replace('gain block (gain = 2)',
                              'gain block with DC removal') \
    .replace('REVISION = "A"', 'REVISION = "B"') \
    .replace("yield Send(\"out\", 2 * x)",
             "yield Send(\"out\", 2 * x - 10)")


def evaluate(loader, spec, samples):
    """Patch the vendor part into a fresh testbench and measure it."""
    sim = Simulator()
    dsp = sim.add(loader.instantiate(spec, "dsp"))

    def stimulus(comp):
        for sample in samples:
            yield Advance(1e-3)
            yield Send("out", sample)

    def capture(comp):
        comp.got = []
        while True:
            t, value = yield Receive("in")
            comp.got.append(value)

    stim = FunctionComponent("stim", stimulus, ports={"out": "out"})
    cap = FunctionComponent("cap", capture, ports={"in": "in"})
    sim.add(stim)
    sim.add(cap)
    sim.wire("x", stim.port("out"), dsp.port("in"))
    sim.wire("y", dsp.port("out"), cap.port("in"))
    sim.run()
    return type(dsp).REVISION, cap.got


def main():
    samples = [5, 10, 15]
    with tempfile.TemporaryDirectory() as vendor_site:
        part = os.path.join(vendor_site, "vendor_dsp.py")
        with open(part, "w") as handle:
            handle.write(VENDOR_V1)
        loader = ComponentLoader()
        spec = f"file://{part}:VendorDsp"     # the "vendor URL"

        revision, outputs = evaluate(loader, spec, samples)
        print(f"rev {revision}: {samples} -> {outputs}")

        # The vendor publishes revision B; reload without restarting.
        with open(part, "w") as handle:
            handle.write(VENDOR_V2)
        os.utime(part, (1e9, 2e9))            # ensure a fresh mtime
        revision, outputs = evaluate(loader, spec, samples)
        print(f"rev {revision}: {samples} -> {outputs}")
        print(f"loader stats: {loader.loads} loads, "
              f"{loader.cache_hits} cache hits")


if __name__ == "__main__":
    main()
