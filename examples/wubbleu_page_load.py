#!/usr/bin/env python3
"""The paper's evaluation, end to end: load the 66 KB page through the
WubbleU system in every Table 1 configuration and print the comparison.

Run:  python examples/wubbleu_page_load.py  [--small]
"""

import sys

# Self-contained fallback: allow running from a fresh checkout without
# installing the package or exporting PYTHONPATH.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import os
    import sys
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.apps import WubbleUConfig, fetch_like_hotjava, page_load
from repro.bench import PAPER_TABLE1, Table, format_count, format_seconds
from repro.transport import INTERNET


def main():
    small = "--small" in sys.argv
    overrides = dict(total_bytes=12_000, image_count=2, image_size=48) \
        if small else {}

    table = Table("WubbleU page load — reproduction of Table 1",
                  ["configuration", "simulation time", "paper",
                   "inter-node msgs", "virtual time"])

    reference = fetch_like_hotjava()
    table.add("HotJava (no simulation)",
              format_seconds(reference.simulation_time),
              format_seconds(PAPER_TABLE1["HotJava"]), "0", "n/a")

    for remote in (False, True):
        for level in ("word", "packet"):
            key = f"{'remote' if remote else 'local'} {level} passage"
            print(f"running {key} ...", flush=True)
            result = page_load(level, remote=remote, network=INTERNET,
                               config=WubbleUConfig(level=level, **overrides))
            table.add(key, format_seconds(result.simulation_time),
                      format_seconds(PAPER_TABLE1.get(key)),
                      format_count(result.messages),
                      format_seconds(result.virtual_time))
    table.note("remote = cellular chip on a second node across an "
               "internet-model link; simulation time = CPU + modelled "
               "network wall time")
    table.show()


if __name__ == "__main__":
    main()
