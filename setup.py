"""Setup shim for environments whose pip lacks PEP 660 editable support."""

from setuptools import setup

setup()
