"""Setup shim for environments whose pip lacks PEP 660 editable support.

Also builds the optional native hot core (``repro._native._core``).  The
extension is a pure accelerator: any compile failure — missing compiler,
missing CPython headers, exotic platform — degrades to the pure-python
implementations with a warning instead of failing the install.  Set
``PIA_PURE=1`` to skip the build entirely.
"""

import os
import sys

from setuptools import setup
from setuptools.command.build_ext import build_ext
from setuptools.extension import Extension


class OptionalBuildExt(build_ext):
    """``build_ext`` that treats every compile failure as a warning."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._fall_back(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._fall_back(exc)

    @staticmethod
    def _fall_back(exc):
        print(
            f"WARNING: building the native hot core failed ({exc}); "
            "repro will run on the pure-python implementations",
            file=sys.stderr,
        )


ext_modules = []
if not os.environ.get("PIA_PURE"):
    ext_modules.append(
        Extension(
            "repro._native._core",
            sources=["src/repro/_native/_core.c"],
        )
    )

setup(
    ext_modules=ext_modules,
    cmdclass={"build_ext": OptionalBuildExt},
)
