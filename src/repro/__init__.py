"""Pia: a geographically distributed framework for embedded system design
and validation.

A faithful, from-scratch Python reproduction of Hines & Borriello,
"A Geographically Distributed Framework for Embedded System Design and
Validation", DAC 1998 — the distributed hardware/software co-simulator of
the University of Washington Chinook project.

Package map
-----------
``repro.core``
    The single-host co-simulation kernel: components, ports, nets,
    interfaces, two-level virtual time, checkpoints, run levels.
``repro.protocols``
    The standard communication protocol library with multiple detail
    levels, plus assertion-based user-defined levels.
``repro.distributed``
    Pia nodes, subsystems, channels (conservative and optimistic),
    net splitting, safe-time protocol, Chandy-Lamport snapshots.
``repro.transport``
    The RMI substitute: in-memory and TCP transports with latency models
    and byte accounting.
``repro.processor``
    Embedded-software substrate: basic-block timing, memories with
    synchronous addresses, interrupt controllers, and a tiny ISS.
``repro.hw``
    Hardware in the loop: the stub contract, a simulated Pamette FPGA
    board, and remote hardware servers.
``repro.loader``
    Dynamic component (re)loading, Pia's class-loader analogue.
``repro.tools``
    Customized wrappers connecting external design tools as components.
``repro.debug``
    The debugger (breakpoints, watchpoints, time travel) and VCD
    waveform dumping.
``repro.apps``
    The WubbleU handheld web-browser benchmark from the evaluation.
``repro.bench``
    The experiment harness regenerating every table and figure.
``repro.observability``
    Unified run telemetry: metrics registry, bounded structured trace,
    and the RunReport the benchmarks read their statistics from.
"""

__version__ = "1.0.0"

from . import core, observability

__all__ = ["core", "observability", "__version__"]
