"""Loader shim for the optional native hot core.

``repro._native._core`` is a hand-written C extension implementing the
two measured hot paths — the event queue and the wire-codec primitives —
with the exact semantics of their pure-python counterparts.  The build
is strictly optional: when the compiled artefact is absent (no compiler,
failed build, source checkout without ``build_ext``) or the user sets
``PIA_PURE=1``, everything falls back silently to the pure
implementations and every feature keeps working at pure-python speed.

Backend selection happens once, at import time; ``BACKEND`` says which
implementation is live (``"c"`` or ``"python"``).
"""

from __future__ import annotations

import os

#: ``PIA_PURE=1`` forces the pure-python implementations even when the
#: compiled extension is importable — the escape hatch for debugging and
#: for differential testing of the two backends.
PURE = os.environ.get("PIA_PURE", "") not in ("", "0")

core = None
if not PURE:
    try:
        from . import _core as core  # type: ignore[no-redef]
    except ImportError:
        core = None

#: Which implementation the rest of the package binds at import time.
BACKEND = "c" if core is not None else "python"


def rebuild_event(*state):
    """Unpickle entry point: rebuild an :class:`Event` on whatever
    backend is live in *this* process.

    Native events pickle through this function (instead of their class)
    so a frame pickled by a compiled node still loads on a pure-python
    one, and vice versa.
    """
    from ..core.events import Event

    event = Event.__new__(Event)
    event.__setstate__(state)
    return event
