/* Native hot core: the event queue and the wire-codec primitives.
 *
 * A hand-written CPython extension (no Cython/mypyc) implementing the two
 * measured hot paths of the framework with the *exact* semantics of their
 * pure-python counterparts:
 *
 *  - ``Event`` / ``EventQueue`` from ``repro.core.events``: a C struct
 *    event (virtual time, priority and sequence number stored as native
 *    scalars, the ``Timestamp`` namedtuple materialised lazily on first
 *    ``.ts`` access) plus a binary min-heap queue with push/pop/peek/
 *    next_time/remove_if/snapshot/restore, monotone sequence stamping at
 *    push, and the ``CausalityError`` past-scheduling check.
 *
 *  - the codec primitives from ``repro.transport.codec``: LEB128 uvarint
 *    with a strict 64-bit cap, zigzag ints, the frame-scoped string
 *    intern table, the tagged scalar/container value codec, and the
 *    fully bounds-checked frame ``Reader``.  Message-level assembly
 *    stays in python; nested-message encode/decode calls back through
 *    the hooks registered by ``codec_bind``.
 *
 * The loader shim (``repro._native.__init__``) imports this module when
 * the compiled artefact is present and ``PIA_PURE`` is unset; everything
 * degrades silently to the pure implementations otherwise.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#if PY_VERSION_HEX < 0x030c0000
#include <structmember.h>
#endif
#ifndef Py_T_OBJECT
#define Py_T_OBJECT T_OBJECT
#endif
#ifndef Py_READONLY
#define Py_READONLY READONLY
#endif

#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* module state (single-interpreter statics)                           */
/* ------------------------------------------------------------------ */

static PyObject *g_Timestamp;        /* repro.core.timestamp.Timestamp   */
static PyObject *g_CausalityError;   /* repro.core.errors.CausalityError */
static PyObject *g_TransportError;   /* repro.core.errors.TransportError */
static PyObject *g_pickle_dumps;
static PyObject *g_pickle_loads;
static PyObject *g_pickle_proto;     /* PyLong: pickle.HIGHEST_PROTOCOL  */
static long g_priority_signal = 10;  /* timestamp.PRIORITY_SIGNAL        */

/* bound lazily by repro.transport.codec via codec_bind()               */
static PyObject *g_MessageClass;
static PyObject *g_put_message;      /* python: (out, message, strings)  */
static PyObject *g_read_message;     /* python: (reader) -> Message      */

static PyObject *g_str_code;         /* interned "code"                  */

/* value tags — must match repro.transport.codec                        */
#define V_NONE    0
#define V_TRUE    1
#define V_FALSE   2
#define V_INT     3
#define V_FLOAT   4
#define V_STR     5
#define V_BYTES   6
#define V_TUPLE   7
#define V_LIST    8
#define V_DICT    9
#define V_MESSAGE 10
#define V_PICKLE  11

static PyObject *
transport_error(const char *format, ...)
{
    va_list vargs;
    va_start(vargs, format);
    PyObject *msg = PyUnicode_FromFormatV(format, vargs);
    va_end(vargs);
    if (msg == NULL)
        return NULL;
    PyErr_SetObject(g_TransportError, msg);
    Py_DECREF(msg);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long priority;
    long long seq;
    PyObject *ts_cache;   /* the Timestamp, materialised lazily; NULL
                             after the queue restamps the event */
    PyObject *kind;
    PyObject *target;
    PyObject *payload;
    PyObject *token;
    PyObject *cause;
    long code;            /* kind.code, or -1 when unknown */
} EventObject;

static PyTypeObject Event_Type;

/* tiny pointer-keyed cache for kind.code: EventKind has four members,
 * all singletons, so a linear scan beats a getattr per construction. */
#define KIND_CACHE 8
static PyObject *g_kind_cache[KIND_CACHE];
static long g_kind_codes[KIND_CACHE];
static int g_kind_count = 0;

static long
kind_code(PyObject *kind)
{
    for (int i = 0; i < g_kind_count; i++) {
        if (g_kind_cache[i] == kind)
            return g_kind_codes[i];
    }
    PyObject *code = PyObject_GetAttr(kind, g_str_code);
    if (code == NULL) {
        PyErr_Clear();
        return -1;
    }
    long value = PyLong_AsLong(code);
    Py_DECREF(code);
    if (value == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        return -1;
    }
    if (value >= 0 && g_kind_count < KIND_CACHE) {
        Py_INCREF(kind);
        g_kind_cache[g_kind_count] = kind;
        g_kind_codes[g_kind_count++] = value;
    }
    return value;
}

/* Extract (time, priority, seq) out of a Timestamp (or anything with
 * those attributes); a bare float/int is promoted to "time at default
 * signal priority", mirroring the pure Event constructor. */
static int
event_set_ts(EventObject *self, PyObject *ts)
{
    if (Py_TYPE(ts) == (PyTypeObject *)g_Timestamp
            && PyTuple_Check(ts) && PyTuple_GET_SIZE(ts) == 3) {
        double time = PyFloat_AsDouble(PyTuple_GET_ITEM(ts, 0));
        if (time == -1.0 && PyErr_Occurred())
            return -1;
        long priority = PyLong_AsLong(PyTuple_GET_ITEM(ts, 1));
        if (priority == -1 && PyErr_Occurred())
            return -1;
        long long seq = PyLong_AsLongLong(PyTuple_GET_ITEM(ts, 2));
        if (seq == -1 && PyErr_Occurred())
            return -1;
        self->time = time;
        self->priority = priority;
        self->seq = seq;
        Py_INCREF(ts);
        Py_XSETREF(self->ts_cache, ts);
        return 0;
    }
    if (PyFloat_CheckExact(ts) || PyLong_CheckExact(ts)) {
        double time = PyFloat_AsDouble(ts);
        if (time == -1.0 && PyErr_Occurred())
            return -1;
        self->time = time;
        self->priority = g_priority_signal;
        self->seq = 0;
        Py_CLEAR(self->ts_cache);
        return 0;
    }
    /* duck-typed timestamp */
    PyObject *item = PyObject_GetAttrString(ts, "time");
    if (item == NULL)
        return -1;
    double time = PyFloat_AsDouble(item);
    Py_DECREF(item);
    if (time == -1.0 && PyErr_Occurred())
        return -1;
    item = PyObject_GetAttrString(ts, "priority");
    if (item == NULL)
        return -1;
    long priority = PyLong_AsLong(item);
    Py_DECREF(item);
    if (priority == -1 && PyErr_Occurred())
        return -1;
    item = PyObject_GetAttrString(ts, "seq");
    if (item == NULL)
        return -1;
    long long seq = PyLong_AsLongLong(item);
    Py_DECREF(item);
    if (seq == -1 && PyErr_Occurred())
        return -1;
    self->time = time;
    self->priority = priority;
    self->seq = seq;
    Py_INCREF(ts);
    Py_XSETREF(self->ts_cache, ts);
    return 0;
}

static int
event_fill(EventObject *self, PyObject *ts, PyObject *kind, PyObject *target,
           PyObject *payload, PyObject *token, PyObject *cause)
{
    if (event_set_ts(self, ts) < 0)
        return -1;
    Py_INCREF(kind);
    Py_XSETREF(self->kind, kind);
    Py_INCREF(target);
    Py_XSETREF(self->target, target);
    if (payload == NULL)
        payload = Py_None;
    Py_INCREF(payload);
    Py_XSETREF(self->payload, payload);
    if (token == NULL)
        token = Py_None;
    Py_INCREF(token);
    Py_XSETREF(self->token, token);
    if (cause == NULL)
        cause = Py_None;
    Py_INCREF(cause);
    Py_XSETREF(self->cause, cause);
    self->code = kind_code(kind);
    return 0;
}

static PyObject *
Event_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EventObject *self = (EventObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->code = -1;
    if (PyTuple_GET_SIZE(args) == 0 && (kwds == NULL || PyDict_GET_SIZE(kwds) == 0)) {
        /* blank event for unpickling (__setstate__ fills it in) */
        return (PyObject *)self;
    }
    static char *kwlist[] = {"ts", "kind", "target", "payload", "token",
                             "cause", NULL};
    PyObject *ts, *kind, *target;
    PyObject *payload = NULL, *token = NULL, *cause = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOO|OOO:Event", kwlist,
                                     &ts, &kind, &target, &payload, &token,
                                     &cause)) {
        Py_DECREF(self);
        return NULL;
    }
    if (event_fill(self, ts, kind, target, payload, token, cause) < 0) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static int
Event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ts_cache);
    Py_VISIT(self->kind);
    Py_VISIT(self->target);
    Py_VISIT(self->payload);
    Py_VISIT(self->token);
    Py_VISIT(self->cause);
    return 0;
}

static int
Event_clear(EventObject *self)
{
    Py_CLEAR(self->ts_cache);
    Py_CLEAR(self->kind);
    Py_CLEAR(self->target);
    Py_CLEAR(self->payload);
    Py_CLEAR(self->token);
    Py_CLEAR(self->cause);
    return 0;
}

static void
Event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    Event_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Build (or return the cached) Timestamp for this event. */
static PyObject *
event_timestamp(EventObject *self)
{
    if (self->ts_cache != NULL) {
        Py_INCREF(self->ts_cache);
        return self->ts_cache;
    }
    PyObject *time = PyFloat_FromDouble(self->time);
    if (time == NULL)
        return NULL;
    PyObject *priority = PyLong_FromLong(self->priority);
    if (priority == NULL) {
        Py_DECREF(time);
        return NULL;
    }
    PyObject *seq = PyLong_FromLongLong(self->seq);
    if (seq == NULL) {
        Py_DECREF(time);
        Py_DECREF(priority);
        return NULL;
    }
    PyObject *args[3] = {time, priority, seq};
    PyObject *ts = PyObject_Vectorcall(g_Timestamp, args, 3, NULL);
    Py_DECREF(time);
    Py_DECREF(priority);
    Py_DECREF(seq);
    if (ts == NULL)
        return NULL;
    Py_INCREF(ts);
    self->ts_cache = ts;
    return ts;
}

static PyObject *
Event_get_ts(EventObject *self, void *closure)
{
    return event_timestamp(self);
}

static PyObject *
Event_get_time(EventObject *self, void *closure)
{
    return PyFloat_FromDouble(self->time);
}

static PyObject *
Event_get_priority(EventObject *self, void *closure)
{
    return PyLong_FromLong(self->priority);
}

static PyObject *
Event_get_seq(EventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Event_get_code(EventObject *self, void *closure)
{
    if (self->code < 0) {
        /* mirror the pure property: self.kind.code, raising whatever
         * the attribute lookup raises for exotic kinds */
        if (self->kind == NULL) {
            PyErr_SetString(PyExc_AttributeError, "code");
            return NULL;
        }
        PyObject *code = PyObject_GetAttr(self->kind, g_str_code);
        if (code == NULL)
            return NULL;
        long value = PyLong_AsLong(code);
        if (value == -1 && PyErr_Occurred()) {
            Py_DECREF(code);
            return NULL;
        }
        self->code = value;
        return code;
    }
    return PyLong_FromLong(self->code);
}

static PyGetSetDef Event_getset[] = {
    {"ts", (getter)Event_get_ts, NULL,
     "Timestamp of this event (materialised lazily).", NULL},
    {"time", (getter)Event_get_time, NULL, "Virtual time (float).", NULL},
    {"priority", (getter)Event_get_priority, NULL, "Tie-break band.", NULL},
    {"seq", (getter)Event_get_seq, NULL, "Queue sequence number.", NULL},
    {"code", (getter)Event_get_code, NULL,
     "Dense EventKind index used by the dispatch table.", NULL},
    {NULL}
};

static PyMemberDef Event_members[] = {
    {"kind", Py_T_OBJECT, offsetof(EventObject, kind), Py_READONLY, NULL},
    {"target", Py_T_OBJECT, offsetof(EventObject, target), Py_READONLY, NULL},
    {"payload", Py_T_OBJECT, offsetof(EventObject, payload), Py_READONLY, NULL},
    {"token", Py_T_OBJECT, offsetof(EventObject, token), Py_READONLY, NULL},
    {"cause", Py_T_OBJECT, offsetof(EventObject, cause), Py_READONLY, NULL},
    {NULL}
};

static EventObject *
event_clone(EventObject *self)
{
    EventObject *copy = (EventObject *)Event_Type.tp_alloc(&Event_Type, 0);
    if (copy == NULL)
        return NULL;
    copy->time = self->time;
    copy->priority = self->priority;
    copy->seq = self->seq;
    copy->code = self->code;
    copy->ts_cache = self->ts_cache;
    Py_XINCREF(copy->ts_cache);
    copy->kind = self->kind;
    Py_XINCREF(copy->kind);
    copy->target = self->target;
    Py_XINCREF(copy->target);
    copy->payload = self->payload;
    Py_XINCREF(copy->payload);
    copy->token = self->token;
    Py_XINCREF(copy->token);
    copy->cause = self->cause;
    Py_XINCREF(copy->cause);
    return copy;
}

static PyObject *
Event_at(EventObject *self, PyObject *ts)
{
    EventObject *copy = event_clone(self);
    if (copy == NULL)
        return NULL;
    Py_CLEAR(copy->ts_cache);
    if (event_set_ts(copy, ts) < 0) {
        Py_DECREF(copy);
        return NULL;
    }
    return (PyObject *)copy;
}

static PyObject *
Event_with_cause(EventObject *self, PyObject *cause)
{
    EventObject *copy = event_clone(self);
    if (copy == NULL)
        return NULL;
    Py_INCREF(cause);
    Py_XSETREF(copy->cause, cause);
    return (PyObject *)copy;
}

static PyObject *
event_state(EventObject *self)
{
    PyObject *ts = event_timestamp(self);
    if (ts == NULL)
        return NULL;
    PyObject *state = PyTuple_Pack(
        6, ts,
        self->kind ? self->kind : Py_None,
        self->target ? self->target : Py_None,
        self->payload ? self->payload : Py_None,
        self->token ? self->token : Py_None,
        self->cause ? self->cause : Py_None);
    Py_DECREF(ts);
    return state;
}

static PyObject *
Event_getstate(EventObject *self, PyObject *ignored)
{
    return event_state(self);
}

static PyObject *
Event_setstate(EventObject *self, PyObject *state)
{
    if (!PyTuple_Check(state) || PyTuple_GET_SIZE(state) != 6) {
        PyErr_SetString(PyExc_ValueError, "invalid Event state");
        return NULL;
    }
    if (event_fill(self, PyTuple_GET_ITEM(state, 0),
                   PyTuple_GET_ITEM(state, 1), PyTuple_GET_ITEM(state, 2),
                   PyTuple_GET_ITEM(state, 3), PyTuple_GET_ITEM(state, 4),
                   PyTuple_GET_ITEM(state, 5)) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Event_reduce(EventObject *self, PyObject *ignored)
{
    /* Rebuild through repro._native.rebuild_event, which resolves the
     * *active* Event backend at unpickle time — a frame pickled by a
     * compiled node loads fine on a pure-python one and vice versa. */
    PyObject *shim = PyImport_ImportModule("repro._native");
    if (shim == NULL)
        return NULL;
    PyObject *rebuild = PyObject_GetAttrString(shim, "rebuild_event");
    Py_DECREF(shim);
    if (rebuild == NULL)
        return NULL;
    PyObject *state = event_state(self);
    if (state == NULL) {
        Py_DECREF(rebuild);
        return NULL;
    }
    PyObject *result = PyTuple_Pack(2, rebuild, state);
    Py_DECREF(rebuild);
    Py_DECREF(state);
    return result;
}

static PyObject *
Event_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_EQ && op != Py_NE)
        Py_RETURN_NOTIMPLEMENTED;
    if (Py_TYPE(a) != &Event_Type || Py_TYPE(b) != &Event_Type)
        Py_RETURN_NOTIMPLEMENTED;
    EventObject *lhs = (EventObject *)a, *rhs = (EventObject *)b;
    int equal = (lhs->time == rhs->time
                 && lhs->priority == rhs->priority
                 && lhs->seq == rhs->seq
                 && lhs->kind == rhs->kind);
    if (equal) {
        static const size_t fields[3] = {
            offsetof(EventObject, target), offsetof(EventObject, payload),
            offsetof(EventObject, token)};
        for (int i = 0; i < 3 && equal; i++) {
            PyObject *lv = *(PyObject **)((char *)lhs + fields[i]);
            PyObject *rv = *(PyObject **)((char *)rhs + fields[i]);
            equal = PyObject_RichCompareBool(lv ? lv : Py_None,
                                             rv ? rv : Py_None, Py_EQ);
            if (equal < 0)
                return NULL;
        }
        if (equal) {
            equal = PyObject_RichCompareBool(
                lhs->cause ? lhs->cause : Py_None,
                rhs->cause ? rhs->cause : Py_None, Py_EQ);
            if (equal < 0)
                return NULL;
        }
    }
    if (op == Py_NE)
        equal = !equal;
    return PyBool_FromLong(equal);
}

static Py_hash_t
Event_hash(EventObject *self)
{
    PyObject *ts = event_timestamp(self);
    if (ts == NULL)
        return -1;
    PyObject *key = PyTuple_Pack(3, ts,
                                 self->kind ? self->kind : Py_None,
                                 self->target ? self->target : Py_None);
    Py_DECREF(ts);
    if (key == NULL)
        return -1;
    Py_hash_t result = PyObject_Hash(key);
    Py_DECREF(key);
    return result;
}

static PyObject *
Event_repr(EventObject *self)
{
    PyObject *ts = event_timestamp(self);
    if (ts == NULL)
        return NULL;
    PyObject *text = PyUnicode_FromFormat(
        "Event(ts=%R, kind=%R, target=%R", ts,
        self->kind ? self->kind : Py_None,
        self->target ? self->target : Py_None);
    Py_DECREF(ts);
    if (text == NULL)
        return NULL;
    struct {const char *label; PyObject *value;} extras[3] = {
        {", payload=%R", self->payload},
        {", token=%R", self->token},
        {", cause=%R", self->cause},
    };
    for (int i = 0; i < 3; i++) {
        if (extras[i].value == NULL || extras[i].value == Py_None)
            continue;
        PyObject *part = PyUnicode_FromFormat(extras[i].label,
                                              extras[i].value);
        if (part == NULL) {
            Py_DECREF(text);
            return NULL;
        }
        PyObject *joined = PyUnicode_Concat(text, part);
        Py_DECREF(text);
        Py_DECREF(part);
        if (joined == NULL)
            return NULL;
        text = joined;
    }
    PyObject *close = PyUnicode_FromString(")");
    if (close == NULL) {
        Py_DECREF(text);
        return NULL;
    }
    PyObject *result = PyUnicode_Concat(text, close);
    Py_DECREF(text);
    Py_DECREF(close);
    return result;
}

static PyMethodDef Event_methods[] = {
    {"at", (PyCFunction)Event_at, METH_O,
     "Return a copy of this event rescheduled to ``ts``."},
    {"with_cause", (PyCFunction)Event_with_cause, METH_O,
     "Return a copy carrying ``cause`` as its trace context."},
    {"__getstate__", (PyCFunction)Event_getstate, METH_NOARGS, NULL},
    {"__setstate__", (PyCFunction)Event_setstate, METH_O, NULL},
    {"__reduce__", (PyCFunction)Event_reduce, METH_NOARGS, NULL},
    {NULL}
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._core.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_repr = (reprfunc)Event_repr,
    .tp_hash = (hashfunc)Event_hash,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "One schedulable occurrence (native hot-core implementation).",
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear,
    .tp_richcompare = Event_richcompare,
    .tp_methods = Event_methods,
    .tp_members = Event_members,
    .tp_getset = Event_getset,
    .tp_new = Event_new,
};

/* ------------------------------------------------------------------ */
/* EventQueue                                                          */
/* ------------------------------------------------------------------ */

typedef struct {
    double time;
    long priority;
    long long seq;
    PyObject *event;      /* owned */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t size;
    Py_ssize_t capacity;
    long long next_seq;
    int busy;             /* guards against re-entrant mutation from a
                             remove_if predicate */
} QueueObject;

static PyTypeObject Queue_Type;

static inline int
entry_lt(const HeapEntry *a, const HeapEntry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq < b->seq;
}

static void
heap_siftdown(HeapEntry *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    while (pos > startpos) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (entry_lt(&item, &heap[parent])) {
            heap[pos] = heap[parent];
            pos = parent;
        } else {
            break;
        }
    }
    heap[pos] = item;
}

static void
heap_siftup(HeapEntry *heap, Py_ssize_t pos, Py_ssize_t size)
{
    HeapEntry item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (entry_lt(&heap[child], &item)) {
            heap[pos] = heap[child];
            pos = child;
        } else {
            break;
        }
    }
    heap[pos] = item;
}

static void
heap_heapify(HeapEntry *heap, Py_ssize_t size)
{
    for (Py_ssize_t i = size / 2 - 1; i >= 0; i--)
        heap_siftup(heap, i, size);
}

static int
queue_reserve(QueueObject *self, Py_ssize_t wanted)
{
    if (wanted <= self->capacity)
        return 0;
    Py_ssize_t capacity = self->capacity ? self->capacity : 64;
    while (capacity < wanted)
        capacity *= 2;
    HeapEntry *heap = PyMem_Realloc(self->heap,
                                    capacity * sizeof(HeapEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->capacity = capacity;
    return 0;
}

static int
queue_check_busy(QueueObject *self)
{
    if (self->busy) {
        PyErr_SetString(PyExc_RuntimeError,
                        "EventQueue mutated while remove_if is iterating");
        return -1;
    }
    return 0;
}

static PyObject *
Queue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    QueueObject *self = (QueueObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->next_seq = 0;
    self->busy = 0;
    return (PyObject *)self;
}

static int
Queue_traverse(QueueObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->heap[i].event);
    return 0;
}

static int
Queue_clear_impl(QueueObject *self)
{
    Py_ssize_t size = self->size;
    self->size = 0;
    for (Py_ssize_t i = 0; i < size; i++)
        Py_CLEAR(self->heap[i].event);
    return 0;
}

static void
Queue_dealloc(QueueObject *self)
{
    PyObject_GC_UnTrack(self);
    Queue_clear_impl(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
Queue_len(QueueObject *self)
{
    return self->size;
}

static int
Queue_bool(QueueObject *self)
{
    return self->size > 0;
}

/* format a double the way python's ``f"{x:g}"`` does */
static PyObject *
format_g(double value)
{
    char *text = PyOS_double_to_string(value, 'g', 6, 0, NULL);
    if (text == NULL)
        return NULL;
    PyObject *result = PyUnicode_FromString(text);
    PyMem_Free(text);
    return result;
}

static PyObject *
Queue_push(QueueObject *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    double now = -Py_HUGE_VAL;
    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError,
                        "push() takes exactly one positional argument");
        return NULL;
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "now") == 0) {
                now = PyFloat_AsDouble(args[nargs + i]);
                if (now == -1.0 && PyErr_Occurred())
                    return NULL;
            } else {
                PyErr_Format(PyExc_TypeError,
                             "push() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    PyObject *arg = args[0];
    if (Py_TYPE(arg) != &Event_Type) {
        PyErr_Format(PyExc_TypeError,
                     "native EventQueue.push needs a native Event, got %.80s",
                     Py_TYPE(arg)->tp_name);
        return NULL;
    }
    EventObject *event = (EventObject *)arg;
    if (event->time < now) {
        PyObject *at = format_g(event->time);
        PyObject *past = at ? format_g(now) : NULL;
        if (past != NULL) {
            PyObject *msg = PyUnicode_FromFormat(
                "event at %U scheduled in the past of %U", at, past);
            if (msg != NULL) {
                PyErr_SetObject(g_CausalityError, msg);
                Py_DECREF(msg);
            }
        }
        Py_XDECREF(at);
        Py_XDECREF(past);
        return NULL;
    }
    if (queue_check_busy(self) < 0)
        return NULL;
    if (queue_reserve(self, self->size + 1) < 0)
        return NULL;
    /* stamp in place: fresh monotone sequence number, lazily
     * re-materialised Timestamp (mirrors the pure implementation) */
    event->seq = self->next_seq++;
    Py_CLEAR(event->ts_cache);
    HeapEntry *entry = &self->heap[self->size];
    entry->time = event->time;
    entry->priority = event->priority;
    entry->seq = event->seq;
    Py_INCREF(event);
    entry->event = (PyObject *)event;
    self->size += 1;
    heap_siftdown(self->heap, 0, self->size - 1);
    Py_INCREF(event);
    return (PyObject *)event;
}

static PyObject *
queue_pop_root(QueueObject *self)
{
    PyObject *event = self->heap[0].event;   /* ownership moves to caller */
    self->size -= 1;
    if (self->size > 0) {
        self->heap[0] = self->heap[self->size];
        heap_siftup(self->heap, 0, self->size);
    }
    return event;
}

static PyObject *
Queue_pop(QueueObject *self, PyObject *ignored)
{
    if (self->size == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty event queue");
        return NULL;
    }
    if (queue_check_busy(self) < 0)
        return NULL;
    return queue_pop_root(self);
}

static PyObject *
Queue_pop_ready(QueueObject *self, PyObject *bound_obj)
{
    double bound = PyFloat_AsDouble(bound_obj);
    if (bound == -1.0 && PyErr_Occurred())
        return NULL;
    if (self->size == 0 || self->heap[0].time > bound)
        Py_RETURN_NONE;
    if (queue_check_busy(self) < 0)
        return NULL;
    return queue_pop_root(self);
}

static PyObject *
Queue_peek(QueueObject *self, PyObject *ignored)
{
    if (self->size == 0)
        Py_RETURN_NONE;
    PyObject *event = self->heap[0].event;
    Py_INCREF(event);
    return event;
}

static PyObject *
Queue_next_time(QueueObject *self, PyObject *ignored)
{
    if (self->size == 0)
        return PyFloat_FromDouble(Py_HUGE_VAL);
    return PyFloat_FromDouble(self->heap[0].time);
}

static PyObject *
Queue_remove_if(QueueObject *self, PyObject *predicate)
{
    if (queue_check_busy(self) < 0)
        return NULL;
    self->busy = 1;
    Py_ssize_t kept = 0, removed = 0;
    int failed = 0;
    for (Py_ssize_t i = 0; i < self->size; i++) {
        PyObject *event = self->heap[i].event;
        int drop = 0;
        if (!failed) {
            PyObject *verdict = PyObject_CallOneArg(predicate, event);
            if (verdict == NULL) {
                failed = 1;       /* keep the rest; propagate after */
            } else {
                drop = PyObject_IsTrue(verdict);
                Py_DECREF(verdict);
                if (drop < 0)
                    failed = 1, drop = 0;
            }
        }
        if (drop) {
            Py_DECREF(event);
            removed += 1;
        } else {
            self->heap[kept++] = self->heap[i];
        }
    }
    self->size = kept;
    heap_heapify(self->heap, self->size);
    self->busy = 0;
    if (failed)
        return NULL;
    return PyLong_FromSsize_t(removed);
}

static int
entry_cmp_qsort(const void *a, const void *b)
{
    const HeapEntry *lhs = a, *rhs = b;
    if (entry_lt(lhs, rhs))
        return -1;
    if (entry_lt(rhs, lhs))
        return 1;
    return 0;
}

static PyObject *
Queue_snapshot(QueueObject *self, PyObject *ignored)
{
    Py_ssize_t size = self->size;
    PyObject *result = PyList_New(size);
    if (result == NULL)
        return NULL;
    if (size > 0) {
        HeapEntry *sorted_entries = PyMem_Malloc(size * sizeof(HeapEntry));
        if (sorted_entries == NULL) {
            Py_DECREF(result);
            PyErr_NoMemory();
            return NULL;
        }
        memcpy(sorted_entries, self->heap, size * sizeof(HeapEntry));
        qsort(sorted_entries, size, sizeof(HeapEntry), entry_cmp_qsort);
        for (Py_ssize_t i = 0; i < size; i++) {
            PyObject *event = sorted_entries[i].event;
            Py_INCREF(event);
            PyList_SET_ITEM(result, i, event);
        }
        PyMem_Free(sorted_entries);
    }
    return result;
}

static PyObject *
Queue_restore(QueueObject *self, PyObject *events)
{
    if (queue_check_busy(self) < 0)
        return NULL;
    PyObject *sequence = PySequence_Fast(
        events, "restore() needs a sequence of events");
    if (sequence == NULL)
        return NULL;
    Py_ssize_t count = PySequence_Fast_GET_SIZE(sequence);
    for (Py_ssize_t i = 0; i < count; i++) {
        if (Py_TYPE(PySequence_Fast_GET_ITEM(sequence, i)) != &Event_Type) {
            PyErr_Format(
                PyExc_TypeError,
                "native EventQueue.restore needs native Events, got %.80s",
                Py_TYPE(PySequence_Fast_GET_ITEM(sequence, i))->tp_name);
            Py_DECREF(sequence);
            return NULL;
        }
    }
    if (queue_reserve(self, count) < 0) {
        Py_DECREF(sequence);
        return NULL;
    }
    Queue_clear_impl(self);
    for (Py_ssize_t i = 0; i < count; i++) {
        EventObject *event =
            (EventObject *)PySequence_Fast_GET_ITEM(sequence, i);
        HeapEntry *entry = &self->heap[i];
        entry->time = event->time;
        entry->priority = event->priority;
        entry->seq = event->seq;
        Py_INCREF(event);
        entry->event = (PyObject *)event;
    }
    self->size = count;
    Py_DECREF(sequence);
    heap_heapify(self->heap, self->size);
    Py_RETURN_NONE;
}

static PyObject *
Queue_iter(QueueObject *self)
{
    PyObject *snapshot = Queue_snapshot(self, NULL);
    if (snapshot == NULL)
        return NULL;
    PyObject *iterator = PyObject_GetIter(snapshot);
    Py_DECREF(snapshot);
    return iterator;
}

static PySequenceMethods Queue_as_sequence = {
    .sq_length = (lenfunc)Queue_len,
};

static PyNumberMethods Queue_as_number = {
    .nb_bool = (inquiry)Queue_bool,
};

static PyMethodDef Queue_methods[] = {
    {"push", (PyCFunction)(void (*)(void))Queue_push,
     METH_FASTCALL | METH_KEYWORDS,
     "Insert an event, stamping a fresh sequence number in place; "
     "scheduling into the past of ``now`` raises CausalityError."},
    {"pop", (PyCFunction)Queue_pop, METH_NOARGS,
     "Remove and return the earliest event."},
    {"pop_ready", (PyCFunction)Queue_pop_ready, METH_O,
     "Pop the earliest event iff its time is <= bound, else None."},
    {"peek", (PyCFunction)Queue_peek, METH_NOARGS,
     "Earliest event without removing it, or None."},
    {"next_time", (PyCFunction)Queue_next_time, METH_NOARGS,
     "Virtual time of the earliest event, inf when empty."},
    {"remove_if", (PyCFunction)Queue_remove_if, METH_O,
     "Drop every queued event matching the predicate; return the count."},
    {"snapshot", (PyCFunction)Queue_snapshot, METH_NOARGS,
     "Pending events in delivery order (queue unchanged)."},
    {"restore", (PyCFunction)Queue_restore, METH_O,
     "Replace the queue contents in place (stamps preserved)."},
    {NULL}
};

static PyTypeObject Queue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._core.EventQueue",
    .tp_basicsize = sizeof(QueueObject),
    .tp_dealloc = (destructor)Queue_dealloc,
    .tp_as_sequence = &Queue_as_sequence,
    .tp_as_number = &Queue_as_number,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Deterministic priority queue of events (native).",
    .tp_traverse = (traverseproc)Queue_traverse,
    .tp_clear = (inquiry)Queue_clear_impl,
    .tp_iter = (getiterfunc)Queue_iter,
    .tp_methods = Queue_methods,
    .tp_new = Queue_new,
};

/* ------------------------------------------------------------------ */
/* codec primitives: encoder                                           */
/* ------------------------------------------------------------------ */

static int
ba_extend(PyObject *out, const unsigned char *data, Py_ssize_t length)
{
    Py_ssize_t old = PyByteArray_GET_SIZE(out);
    if (PyByteArray_Resize(out, old + length) < 0)
        return -1;
    memcpy(PyByteArray_AS_STRING(out) + old, data, length);
    return 0;
}

static int
write_u8(PyObject *out, unsigned char value)
{
    return ba_extend(out, &value, 1);
}

static int
write_uvarint_u64(PyObject *out, uint64_t value)
{
    unsigned char buffer[10];
    int count = 0;
    while (value > 0x7F) {
        buffer[count++] = (unsigned char)((value & 0x7F) | 0x80);
        value >>= 7;
    }
    buffer[count++] = (unsigned char)value;
    return ba_extend(out, buffer, count);
}

static int
write_f64(PyObject *out, double value)
{
    uint64_t bits;
    unsigned char buffer[8];
    memcpy(&bits, &value, 8);
    for (int i = 0; i < 8; i++)
        buffer[i] = (unsigned char)(bits >> (8 * i));
    return ba_extend(out, buffer, 8);
}

/* uvarint extraction with the pure encoder's errors: TransportError on
 * negatives and on values past 64 bits. */
static int
uvarint_from_object(PyObject *value, uint64_t *result)
{
    if (!PyLong_Check(value)) {
        PyErr_Format(PyExc_TypeError, "varint field must be an int, got %.80s",
                     Py_TYPE(value)->tp_name);
        return -1;
    }
    uint64_t v = PyLong_AsUnsignedLongLong(value);
    if (v == (uint64_t)-1 && PyErr_Occurred()) {
        PyErr_Clear();
        PyObject *zero = PyLong_FromLong(0);
        if (zero == NULL)
            return -1;
        int negative = PyObject_RichCompareBool(value, zero, Py_LT);
        Py_DECREF(zero);
        if (negative < 0)
            return -1;
        if (negative)
            transport_error("negative varint field: %S", value);
        else
            transport_error("varint field exceeds 64 bits: %S", value);
        return -1;
    }
    *result = v;
    return 0;
}

static int
check_bytearray(PyObject *out)
{
    if (!PyByteArray_Check(out)) {
        PyErr_Format(PyExc_TypeError, "output must be a bytearray, got %.80s",
                     Py_TYPE(out)->tp_name);
        return -1;
    }
    return 0;
}

static int
put_uvarint_impl(PyObject *out, PyObject *value)
{
    uint64_t v;
    if (uvarint_from_object(value, &v) < 0)
        return -1;
    return write_uvarint_u64(out, v);
}

static int
put_str_impl(PyObject *out, PyObject *text, PyObject *strings)
{
    PyObject *index = PyDict_GetItemWithError(strings, text);
    if (index != NULL) {
        uint64_t i = PyLong_AsUnsignedLongLong(index);
        if (i == (uint64_t)-1 && PyErr_Occurred())
            return -1;
        return write_uvarint_u64(out, i << 1);
    }
    if (PyErr_Occurred())
        return -1;
    PyObject *data = PyUnicode_AsEncodedString(text, "utf-8", "surrogatepass");
    if (data == NULL)
        return -1;
    Py_ssize_t length = PyBytes_GET_SIZE(data);
    if (write_uvarint_u64(out, ((uint64_t)length << 1) | 1) < 0
            || ba_extend(out, (unsigned char *)PyBytes_AS_STRING(data),
                         length) < 0) {
        Py_DECREF(data);
        return -1;
    }
    Py_DECREF(data);
    PyObject *slot = PyLong_FromSsize_t(PyDict_GET_SIZE(strings));
    if (slot == NULL)
        return -1;
    int rc = PyDict_SetItem(strings, text, slot);
    Py_DECREF(slot);
    return rc;
}

static int
put_pickle_blob(PyObject *out, PyObject *value)
{
    PyObject *blob = PyObject_CallFunctionObjArgs(
        g_pickle_dumps, value, g_pickle_proto, NULL);
    if (blob == NULL)
        return -1;
    Py_ssize_t length = PyBytes_GET_SIZE(blob);
    if (write_uvarint_u64(out, (uint64_t)length) < 0
            || ba_extend(out, (unsigned char *)PyBytes_AS_STRING(blob),
                         length) < 0) {
        Py_DECREF(blob);
        return -1;
    }
    Py_DECREF(blob);
    return 0;
}

static int
put_value_impl(PyObject *out, PyObject *value, PyObject *strings)
{
    PyTypeObject *type = Py_TYPE(value);
    if (value == Py_None)
        return write_u8(out, V_NONE);
    if (type == &PyBool_Type)
        return write_u8(out, value == Py_True ? V_TRUE : V_FALSE);
    if (type == &PyLong_Type) {
        int overflow = 0;
        long long v = PyLong_AsLongLongAndOverflow(value, &overflow);
        if (v == -1 && !overflow && PyErr_Occurred())
            return -1;
        if (!overflow) {
            /* zigzag so small negatives stay small; ints beyond 64 bits
             * take the pickle leaf so the decoder keeps its strict cap */
            uint64_t z = ((uint64_t)v << 1) ^ (uint64_t)(v >> 63);
            if (write_u8(out, V_INT) < 0)
                return -1;
            return write_uvarint_u64(out, z);
        }
        /* falls through to the pickle leaf */
    } else if (type == &PyFloat_Type) {
        if (write_u8(out, V_FLOAT) < 0)
            return -1;
        return write_f64(out, PyFloat_AS_DOUBLE(value));
    } else if (type == &PyUnicode_Type) {
        if (write_u8(out, V_STR) < 0)
            return -1;
        return put_str_impl(out, value, strings);
    } else if (type == &PyBytes_Type) {
        Py_ssize_t length = PyBytes_GET_SIZE(value);
        if (write_u8(out, V_BYTES) < 0
                || write_uvarint_u64(out, (uint64_t)length) < 0)
            return -1;
        return ba_extend(out, (unsigned char *)PyBytes_AS_STRING(value),
                         length);
    } else if (type == &PyTuple_Type || type == &PyList_Type) {
        int is_tuple = type == &PyTuple_Type;
        Py_ssize_t count = is_tuple ? PyTuple_GET_SIZE(value)
                                    : PyList_GET_SIZE(value);
        if (write_u8(out, is_tuple ? V_TUPLE : V_LIST) < 0
                || write_uvarint_u64(out, (uint64_t)count) < 0)
            return -1;
        if (Py_EnterRecursiveCall(" while encoding a codec value"))
            return -1;
        for (Py_ssize_t i = 0; i < count; i++) {
            /* re-read per iteration: the recursive call may run
             * arbitrary python (pickle fallback) that mutates a list */
            PyObject *item = is_tuple ? PyTuple_GET_ITEM(value, i)
                                      : PyList_GET_ITEM(value, i);
            if (put_value_impl(out, item, strings) < 0) {
                Py_LeaveRecursiveCall();
                return -1;
            }
        }
        Py_LeaveRecursiveCall();
        return 0;
    } else if (type == &PyDict_Type) {
        if (write_u8(out, V_DICT) < 0
                || write_uvarint_u64(out,
                                     (uint64_t)PyDict_GET_SIZE(value)) < 0)
            return -1;
        if (Py_EnterRecursiveCall(" while encoding a codec value"))
            return -1;
        Py_ssize_t pos = 0;
        PyObject *key, *item;
        while (PyDict_Next(value, &pos, &key, &item)) {
            if (put_value_impl(out, key, strings) < 0
                    || put_value_impl(out, item, strings) < 0) {
                Py_LeaveRecursiveCall();
                return -1;
            }
        }
        Py_LeaveRecursiveCall();
        return 0;
    } else if (g_MessageClass != NULL
               && (PyObject *)type == g_MessageClass) {
        if (g_put_message == NULL) {
            PyErr_SetString(PyExc_RuntimeError,
                            "codec_bind() has not registered put_message");
            return -1;
        }
        if (write_u8(out, V_MESSAGE) < 0)
            return -1;
        PyObject *args[3] = {out, value, strings};
        PyObject *result = PyObject_Vectorcall(g_put_message, args, 3, NULL);
        if (result == NULL)
            return -1;
        Py_DECREF(result);
        return 0;
    }
    /* subclasses of the above land here too: exact-type checks keep
     * round-trips type-faithful (a bool-valued IntEnum stays itself) */
    if (write_u8(out, V_PICKLE) < 0)
        return -1;
    return put_pickle_blob(out, value);
}

static PyObject *
nat_put_uvarint(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "put_uvarint(out, value)");
        return NULL;
    }
    if (check_bytearray(args[0]) < 0 || put_uvarint_impl(args[0], args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
nat_put_str(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "put_str(out, s, strings)");
        return NULL;
    }
    if (check_bytearray(args[0]) < 0)
        return NULL;
    if (!PyUnicode_Check(args[1])) {
        PyErr_Format(PyExc_TypeError, "interned string must be str, got %.80s",
                     Py_TYPE(args[1])->tp_name);
        return NULL;
    }
    if (!PyDict_Check(args[2])) {
        PyErr_SetString(PyExc_TypeError, "string table must be a dict");
        return NULL;
    }
    if (put_str_impl(args[0], args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
nat_put_value(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "put_value(out, value, strings)");
        return NULL;
    }
    if (check_bytearray(args[0]) < 0)
        return NULL;
    if (!PyDict_Check(args[2])) {
        PyErr_SetString(PyExc_TypeError, "string table must be a dict");
        return NULL;
    }
    if (put_value_impl(args[0], args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* codec primitives: the bounds-checked Reader                         */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    Py_buffer view;
    int has_view;
    const unsigned char *buf;
    Py_ssize_t pos;
    Py_ssize_t end;
    PyObject *strings;    /* list of interned strings, frame-scoped */
} ReaderObject;

static PyTypeObject Reader_Type;

static PyObject *
reader_fail(ReaderObject *self, const char *what)
{
    return transport_error("corrupt codec frame: %s at offset %zd",
                           what, self->pos);
}

static int
reader_uvarint(ReaderObject *self, uint64_t *result)
{
    const unsigned char *buf = self->buf;
    Py_ssize_t pos = self->pos, end = self->end;
    uint64_t value = 0;
    int shift = 0;
    for (;;) {
        if (pos >= end) {
            reader_fail(self, "truncated varint");
            return -1;
        }
        unsigned char byte = buf[pos++];
        if (shift == 63 && (byte & 0x7E)) {
            reader_fail(self, "varint overflow");
            return -1;
        }
        value |= (uint64_t)(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            break;
        shift += 7;
        if (shift > 63) {
            reader_fail(self, "varint overflow");
            return -1;
        }
    }
    self->pos = pos;
    *result = value;
    return 0;
}

static int
reader_count(ReaderObject *self, Py_ssize_t *result)
{
    uint64_t n;
    if (reader_uvarint(self, &n) < 0)
        return -1;
    if (n > (uint64_t)(self->end - self->pos)) {
        transport_error(
            "corrupt codec frame: count %llu exceeds remaining frame "
            "at offset %zd", (unsigned long long)n, self->pos);
        return -1;
    }
    *result = (Py_ssize_t)n;
    return 0;
}

static int
reader_need(ReaderObject *self, Py_ssize_t wanted, const char *what)
{
    if (wanted < 0 || wanted > self->end - self->pos) {
        transport_error("corrupt codec frame: %s at offset %zd",
                        what, self->pos);
        return -1;
    }
    return 0;
}

static int
reader_u8(ReaderObject *self, unsigned char *result)
{
    if (self->pos >= self->end) {
        reader_fail(self, "truncated field (1 bytes wanted)");
        return -1;
    }
    *result = self->buf[self->pos++];
    return 0;
}

static int
reader_f64(ReaderObject *self, double *result)
{
    if (self->end - self->pos < 8) {
        reader_fail(self, "truncated float");
        return -1;
    }
    uint64_t bits = 0;
    const unsigned char *buf = self->buf + self->pos;
    for (int i = 0; i < 8; i++)
        bits |= (uint64_t)buf[i] << (8 * i);
    self->pos += 8;
    memcpy(result, &bits, 8);
    return 0;
}

static void
reader_fail_truncated(ReaderObject *self, uint64_t wanted)
{
    char what[64];
    snprintf(what, sizeof(what), "truncated field (%llu bytes wanted)",
             (unsigned long long)wanted);
    reader_fail(self, what);
}

static PyObject *
reader_strref(ReaderObject *self)
{
    uint64_t ref;
    if (reader_uvarint(self, &ref) < 0)
        return NULL;
    if (ref & 1) {
        uint64_t length = ref >> 1;
        if (length > (uint64_t)(self->end - self->pos)) {
            reader_fail_truncated(self, length);
            return NULL;
        }
        PyObject *text = PyUnicode_Decode(
            (const char *)(self->buf + self->pos), (Py_ssize_t)length,
            "utf-8", "surrogatepass");
        if (text == NULL) {
            PyErr_Clear();
            reader_fail(self, "undecodable string");
            return NULL;
        }
        self->pos += (Py_ssize_t)length;
        if (PyList_Append(self->strings, text) < 0) {
            Py_DECREF(text);
            return NULL;
        }
        return text;
    }
    uint64_t index = ref >> 1;
    if (index >= (uint64_t)PyList_GET_SIZE(self->strings)) {
        transport_error(
            "corrupt codec frame: string back-reference %llu out of range "
            "at offset %zd", (unsigned long long)index, self->pos);
        return NULL;
    }
    PyObject *text = PyList_GET_ITEM(self->strings, (Py_ssize_t)index);
    Py_INCREF(text);
    return text;
}

static PyObject *
reader_pickled(ReaderObject *self)
{
    uint64_t length;
    if (reader_uvarint(self, &length) < 0)
        return NULL;
    if (length > (uint64_t)(self->end - self->pos)) {
        reader_fail_truncated(self, length);
        return NULL;
    }
    PyObject *blob = PyBytes_FromStringAndSize(
        (const char *)(self->buf + self->pos), (Py_ssize_t)length);
    if (blob == NULL)
        return NULL;
    self->pos += (Py_ssize_t)length;
    PyObject *value = PyObject_CallOneArg(g_pickle_loads, blob);
    Py_DECREF(blob);
    if (value == NULL) {
        PyObject *type, *exc, *tb;
        PyErr_Fetch(&type, &exc, &tb);
        PyErr_NormalizeException(&type, &exc, &tb);
        PyObject *msg = PyUnicode_FromFormat(
            "cannot deserialise fallback payload: %S", exc ? exc : Py_None);
        if (msg != NULL) {
            PyObject *wrapped = PyObject_CallOneArg(g_TransportError, msg);
            Py_DECREF(msg);
            if (wrapped != NULL) {
                if (exc != NULL) {
                    Py_INCREF(exc);
                    PyException_SetCause(wrapped, exc);
                }
                PyErr_SetObject(g_TransportError, wrapped);
                Py_DECREF(wrapped);
            }
        }
        Py_XDECREF(type);
        Py_XDECREF(exc);
        Py_XDECREF(tb);
        return NULL;
    }
    return value;
}

static PyObject *reader_value(ReaderObject *self);

static PyObject *
reader_value_container(ReaderObject *self, unsigned char tag)
{
    Py_ssize_t count;
    if (reader_count(self, &count) < 0)
        return NULL;
    if (Py_EnterRecursiveCall(" while decoding a codec value"))
        return NULL;
    PyObject *result = NULL;
    if (tag == V_TUPLE || tag == V_LIST) {
        result = tag == V_TUPLE ? PyTuple_New(count) : PyList_New(count);
        if (result == NULL)
            goto done;
        for (Py_ssize_t i = 0; i < count; i++) {
            PyObject *item = reader_value(self);
            if (item == NULL) {
                Py_CLEAR(result);
                goto done;
            }
            if (tag == V_TUPLE)
                PyTuple_SET_ITEM(result, i, item);
            else
                PyList_SET_ITEM(result, i, item);
        }
    } else {  /* V_DICT */
        result = PyDict_New();
        if (result == NULL)
            goto done;
        for (Py_ssize_t i = 0; i < count; i++) {
            PyObject *key = reader_value(self);
            if (key == NULL) {
                Py_CLEAR(result);
                goto done;
            }
            PyObject *item = reader_value(self);
            if (item == NULL) {
                Py_DECREF(key);
                Py_CLEAR(result);
                goto done;
            }
            int rc = PyDict_SetItem(result, key, item);
            Py_DECREF(key);
            Py_DECREF(item);
            if (rc < 0) {
                Py_CLEAR(result);
                goto done;
            }
        }
    }
done:
    Py_LeaveRecursiveCall();
    return result;
}

static PyObject *
reader_value(ReaderObject *self)
{
    unsigned char tag;
    if (reader_u8(self, &tag) < 0)
        return NULL;
    switch (tag) {
    case V_NONE:
        Py_RETURN_NONE;
    case V_TRUE:
        Py_RETURN_TRUE;
    case V_FALSE:
        Py_RETURN_FALSE;
    case V_INT: {
        uint64_t z;
        if (reader_uvarint(self, &z) < 0)
            return NULL;
        uint64_t decoded = (z >> 1) ^ (~(z & 1) + 1);
        return PyLong_FromLongLong((long long)decoded);
    }
    case V_FLOAT: {
        double value;
        if (reader_f64(self, &value) < 0)
            return NULL;
        return PyFloat_FromDouble(value);
    }
    case V_STR:
        return reader_strref(self);
    case V_BYTES: {
        uint64_t length;
        if (reader_uvarint(self, &length) < 0)
            return NULL;
        if (length > (uint64_t)(self->end - self->pos)) {
            reader_fail_truncated(self, length);
            return NULL;
        }
        PyObject *blob = PyBytes_FromStringAndSize(
            (const char *)(self->buf + self->pos), (Py_ssize_t)length);
        if (blob != NULL)
            self->pos += (Py_ssize_t)length;
        return blob;
    }
    case V_TUPLE:
    case V_LIST:
    case V_DICT:
        return reader_value_container(self, tag);
    case V_MESSAGE: {
        if (g_read_message == NULL) {
            PyErr_SetString(PyExc_RuntimeError,
                            "codec_bind() has not registered read_message");
            return NULL;
        }
        return PyObject_CallOneArg(g_read_message, (PyObject *)self);
    }
    case V_PICKLE:
        return reader_pickled(self);
    default:
        transport_error("corrupt codec frame: unknown value tag %d "
                        "at offset %zd", (int)tag, self->pos);
        return NULL;
    }
}

static PyObject *
Reader_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *blob;
    Py_ssize_t pos = 0;
    if (!PyArg_ParseTuple(args, "O|n:Reader", &blob, &pos))
        return NULL;
    ReaderObject *self = (ReaderObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    if (PyObject_GetBuffer(blob, &self->view, PyBUF_SIMPLE) < 0) {
        Py_DECREF(self);
        return NULL;
    }
    self->has_view = 1;
    self->buf = self->view.buf;
    self->end = self->view.len;
    self->pos = pos < 0 ? 0 : (pos > self->end ? self->end : pos);
    self->strings = PyList_New(0);
    if (self->strings == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static void
Reader_dealloc(ReaderObject *self)
{
    if (self->has_view)
        PyBuffer_Release(&self->view);
    Py_CLEAR(self->strings);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Reader_u8(ReaderObject *self, PyObject *ignored)
{
    unsigned char value;
    if (reader_u8(self, &value) < 0)
        return NULL;
    return PyLong_FromLong(value);
}

static PyObject *
Reader_uvarint(ReaderObject *self, PyObject *ignored)
{
    uint64_t value;
    if (reader_uvarint(self, &value) < 0)
        return NULL;
    return PyLong_FromUnsignedLongLong(value);
}

static PyObject *
Reader_count(ReaderObject *self, PyObject *ignored)
{
    Py_ssize_t value;
    if (reader_count(self, &value) < 0)
        return NULL;
    return PyLong_FromSsize_t(value);
}

static PyObject *
Reader_take(ReaderObject *self, PyObject *arg)
{
    Py_ssize_t wanted = PyLong_AsSsize_t(arg);
    if (wanted == -1 && PyErr_Occurred())
        return NULL;
    char what[64];
    snprintf(what, sizeof(what), "truncated field (%zd bytes wanted)",
             wanted);
    if (reader_need(self, wanted, what) < 0)
        return NULL;
    PyObject *result = PyBytes_FromStringAndSize(
        (const char *)(self->buf + self->pos), wanted);
    if (result != NULL)
        self->pos += wanted;
    return result;
}

static PyObject *
Reader_f64(ReaderObject *self, PyObject *ignored)
{
    double value;
    if (reader_f64(self, &value) < 0)
        return NULL;
    return PyFloat_FromDouble(value);
}

static PyObject *
Reader_strref(ReaderObject *self, PyObject *ignored)
{
    return reader_strref(self);
}

static PyObject *
Reader_value(ReaderObject *self, PyObject *ignored)
{
    return reader_value(self);
}

static PyObject *
Reader_pickled(ReaderObject *self, PyObject *ignored)
{
    return reader_pickled(self);
}

static PyObject *
Reader_fail_method(ReaderObject *self, PyObject *what)
{
    /* mirrors the pure reader: *returns* the exception for the caller
     * to raise */
    PyObject *msg = PyUnicode_FromFormat(
        "corrupt codec frame: %S at offset %zd", what, self->pos);
    if (msg == NULL)
        return NULL;
    PyObject *error = PyObject_CallOneArg(g_TransportError, msg);
    Py_DECREF(msg);
    return error;
}

static PyObject *
Reader_done(ReaderObject *self, PyObject *ignored)
{
    if (self->pos != self->end) {
        transport_error("corrupt codec frame: %zd trailing bytes",
                        self->end - self->pos);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Reader_get_pos(ReaderObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->pos);
}

static PyObject *
Reader_get_end(ReaderObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->end);
}

static PyObject *
Reader_get_strings(ReaderObject *self, void *closure)
{
    Py_INCREF(self->strings);
    return self->strings;
}

static PyGetSetDef Reader_getset[] = {
    {"pos", (getter)Reader_get_pos, NULL, "Cursor offset.", NULL},
    {"end", (getter)Reader_get_end, NULL, "Frame length.", NULL},
    {"strings", (getter)Reader_get_strings, NULL,
     "Frame-scoped intern table.", NULL},
    {NULL}
};

static PyMethodDef Reader_methods[] = {
    {"u8", (PyCFunction)Reader_u8, METH_NOARGS, "One unsigned byte."},
    {"uvarint", (PyCFunction)Reader_uvarint, METH_NOARGS,
     "LEB128 varint with a strict 64-bit cap."},
    {"count", (PyCFunction)Reader_count, METH_NOARGS,
     "A container count, rejected when it exceeds the remaining bytes."},
    {"take", (PyCFunction)Reader_take, METH_O, "n raw bytes."},
    {"f64", (PyCFunction)Reader_f64, METH_NOARGS, "Little-endian double."},
    {"strref", (PyCFunction)Reader_strref, METH_NOARGS,
     "Interned string: definition or back-reference."},
    {"value", (PyCFunction)Reader_value, METH_NOARGS,
     "One tagged codec value."},
    {"pickled", (PyCFunction)Reader_pickled, METH_NOARGS,
     "Length-prefixed pickle blob."},
    {"fail", (PyCFunction)Reader_fail_method, METH_O,
     "Build (not raise) a TransportError at the current offset."},
    {"done", (PyCFunction)Reader_done, METH_NOARGS,
     "Raise unless the cursor consumed the whole frame."},
    {NULL}
};

static PyTypeObject Reader_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._core.Reader",
    .tp_basicsize = sizeof(ReaderObject),
    .tp_dealloc = (destructor)Reader_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Bounds-checked cursor over one codec frame (native).",
    .tp_methods = Reader_methods,
    .tp_getset = Reader_getset,
    .tp_new = Reader_new,
};

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
nat_codec_bind(PyObject *module, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"message_class", "put_message", "read_message",
                             NULL};
    PyObject *message_class, *put_message, *read_message;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOO:codec_bind", kwlist,
                                     &message_class, &put_message,
                                     &read_message))
        return NULL;
    Py_INCREF(message_class);
    Py_XSETREF(g_MessageClass, message_class);
    Py_INCREF(put_message);
    Py_XSETREF(g_put_message, put_message);
    Py_INCREF(read_message);
    Py_XSETREF(g_read_message, read_message);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"put_uvarint", (PyCFunction)(void (*)(void))nat_put_uvarint,
     METH_FASTCALL, "Append a LEB128 uvarint to a bytearray."},
    {"put_str", (PyCFunction)(void (*)(void))nat_put_str, METH_FASTCALL,
     "Append an interned string (definition or back-reference)."},
    {"put_value", (PyCFunction)(void (*)(void))nat_put_value, METH_FASTCALL,
     "Append one tagged codec value."},
    {"codec_bind", (PyCFunction)(void (*)(void))nat_codec_bind,
     METH_VARARGS | METH_KEYWORDS,
     "Register the python-level message hooks used for nested messages."},
    {NULL}
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._native._core",
    .m_doc = "Native hot core: event queue and codec primitives.",
    .m_size = -1,
    .m_methods = module_methods,
};

static PyObject *
import_attr(const char *module_name, const char *attr)
{
    PyObject *module = PyImport_ImportModule(module_name);
    if (module == NULL)
        return NULL;
    PyObject *value = PyObject_GetAttrString(module, attr);
    Py_DECREF(module);
    return value;
}

PyMODINIT_FUNC
PyInit__core(void)
{
    g_str_code = PyUnicode_InternFromString("code");
    if (g_str_code == NULL)
        return NULL;
    g_Timestamp = import_attr("repro.core.timestamp", "Timestamp");
    if (g_Timestamp == NULL)
        return NULL;
    PyObject *priority = import_attr("repro.core.timestamp",
                                     "PRIORITY_SIGNAL");
    if (priority == NULL)
        return NULL;
    g_priority_signal = PyLong_AsLong(priority);
    Py_DECREF(priority);
    if (g_priority_signal == -1 && PyErr_Occurred())
        return NULL;
    g_CausalityError = import_attr("repro.core.errors", "CausalityError");
    if (g_CausalityError == NULL)
        return NULL;
    g_TransportError = import_attr("repro.core.errors", "TransportError");
    if (g_TransportError == NULL)
        return NULL;
    g_pickle_dumps = import_attr("pickle", "dumps");
    if (g_pickle_dumps == NULL)
        return NULL;
    g_pickle_loads = import_attr("pickle", "loads");
    if (g_pickle_loads == NULL)
        return NULL;
    g_pickle_proto = import_attr("pickle", "HIGHEST_PROTOCOL");
    if (g_pickle_proto == NULL)
        return NULL;

    if (PyType_Ready(&Event_Type) < 0 || PyType_Ready(&Queue_Type) < 0
            || PyType_Ready(&Reader_Type) < 0)
        return NULL;

    PyObject *module = PyModule_Create(&core_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&Event_Type);
    if (PyModule_AddObject(module, "Event", (PyObject *)&Event_Type) < 0)
        return NULL;
    Py_INCREF(&Queue_Type);
    if (PyModule_AddObject(module, "EventQueue",
                           (PyObject *)&Queue_Type) < 0)
        return NULL;
    Py_INCREF(&Reader_Type);
    if (PyModule_AddObject(module, "Reader", (PyObject *)&Reader_Type) < 0)
        return NULL;
    return module;
}
