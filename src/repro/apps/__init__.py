"""The WubbleU handheld web-browser benchmark (paper section 4)."""

from .cellular import ASIC_PROFILE, CellularModem
from .content import DEFAULT_TOTAL_BYTES, PageContent, build_page
from .hotjava import ReferenceResult, fetch_like_hotjava
from .hwmodem import HardwareBackedModem, ModemChip
from .modules import (
    BaseStation,
    Browser,
    HandwritingRecognizer,
    ProtocolStack,
    UserInterface,
    encode_request,
    encode_response,
    parse_request,
    parse_response,
)
from .webserver import WebServer
from .wubbleu import (
    ASSIGN_LOCAL,
    ASSIGN_SPLIT,
    CELLSITE,
    HANDHELD,
    PageLoadResult,
    WubbleUConfig,
    build_design,
    build_local,
    build_split,
    page_load,
    run_page_load,
)

__all__ = [
    "ASIC_PROFILE", "ASSIGN_LOCAL", "ASSIGN_SPLIT", "BaseStation",
    "Browser", "CELLSITE", "CellularModem", "DEFAULT_TOTAL_BYTES",
    "HardwareBackedModem", "ModemChip",
    "HANDHELD", "HandwritingRecognizer", "PageContent", "PageLoadResult",
    "ProtocolStack", "ReferenceResult", "UserInterface", "WebServer",
    "WubbleUConfig", "build_design", "build_local", "build_page",
    "build_split", "encode_request", "encode_response",
    "fetch_like_hotjava", "page_load", "parse_request", "parse_response",
    "run_page_load",
]
