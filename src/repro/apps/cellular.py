"""The cellular communication ASIC (paper section 4, Fig. 6).

"The cellular connection is controlled by an ASIC which transfers packets
to the system through DMA.  This chip is our candidate for remote
operation."

The modem bridges two links: the system ``bus`` towards the protocol stack
(the interface whose detail level Table 1 sweeps — and, in the remote
configurations, the nets split across the Internet) and the ``air``
interface towards the base station.  After completing a DMA transfer onto
the bus, it pulses its interrupt line, as the real chip would.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.component import ProcessComponent
from ..core.interface import Interface
from ..core.port import PortDirection
from ..core.process import Command, ReceiveTransfer, Send, Transfer
from ..processor.timing import BasicBlockTimer, ProcessorProfile
from ..protocols.base import Protocol

#: The ASIC's internal engine: a 10 MHz sequencer.
ASIC_PROFILE = ProcessorProfile("cell-asic", 10e6, {
    "alu": 1, "load": 1, "store": 1, "branch": 1, "dma_setup": 24,
})


class CellularModem(ProcessComponent):
    """The network-interface chip of the WubbleU handheld."""

    def __init__(self, name: str = "NetIf", *, bus_protocol: Protocol,
                 air_protocol: Protocol, level: Optional[str] = None,
                 profile: ProcessorProfile = ASIC_PROFILE) -> None:
        super().__init__(name)
        self.timer = BasicBlockTimer(profile)
        self.frames_up = 0        # handheld -> base station
        self.frames_down = 0      # base station -> handheld
        self.dma_bytes = 0
        self.add_port("irq", PortDirection.OUT)
        self.add_interface(Interface("bus", bus_protocol, level=level,
                                     out_port="bus_tx", in_port="bus_rx"))
        self.add_interface(Interface("air", air_protocol,
                                     out_port="air_tx", in_port="air_rx"))

    def run(self) -> Iterator[Command]:
        while True:
            # Outbound: a framed request arrives over the system bus.
            __, request = yield ReceiveTransfer("bus")
            yield self.timer.block(dma_setup=1, alu=64)
            self.frames_up += 1
            yield Transfer("air", request)
            # Inbound: the response comes off the air and is DMA'd to the
            # system, then the interrupt line pulses.
            __, response = yield ReceiveTransfer("air")
            yield self.timer.block(dma_setup=1, alu=32)
            self.frames_down += 1
            self.dma_bytes += len(response)
            yield Transfer("bus", response)
            yield Send("irq", 1)
