"""The test page: "approximately 66KB of data, including graphics".

The paper's experiment loads the Pia homepage — about 66 KB of HTML plus
images — through the simulated system.  This module builds a deterministic
synthetic equivalent: an HTML document referencing JPEG-coded images,
padded so that the total payload is *exactly* the requested byte budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.errors import SimulationError
from . import jpeg

#: The paper's page size.
DEFAULT_TOTAL_BYTES = 66_000

_FILLER_SENTENCE = (
    "Pia provides a distributed hardware-software co-simulator and tools "
    "for schematic capture as well as a means of connecting these to "
    "synthesis tools and actual hardware. ")


@dataclass
class PageContent:
    """A complete site: one HTML page plus its image resources."""

    html: bytes
    images: Dict[str, bytes] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return len(self.html) + sum(len(blob) for blob in self.images.values())

    def resource(self, path: str) -> bytes:
        if path in ("/", "/index.html"):
            return self.html
        try:
            return self.images[path]
        except KeyError:
            raise SimulationError(f"404: no resource {path!r}") from None

    def paths(self) -> List[str]:
        return ["/index.html"] + sorted(self.images)


def build_page(*, total_bytes: int = DEFAULT_TOTAL_BYTES,
               image_count: int = 4, image_size: int = 160,
               quality: int = 50, seed: int = 7) -> PageContent:
    """Build a page whose payload is exactly ``total_bytes``.

    Images are encoded first; the HTML body is then padded with filler
    prose to hit the budget.  Raises if the images alone exceed it.
    """
    images: Dict[str, bytes] = {}
    for index in range(image_count):
        pixels = jpeg.synthetic_image(image_size, image_size,
                                      seed=seed + index)
        images[f"/img{index}.pj1"] = jpeg.encode(pixels, quality=quality)
    image_bytes = sum(len(blob) for blob in images.values())

    head = (
        "<html><head><title>Pia — distributed co-simulation</title></head>\n"
        "<body>\n<h1>The Pia Project</h1>\n"
    )
    tags = "".join(f'<img src="/img{i}.pj1" alt="figure {i}">\n'
                   for i in range(image_count))
    tail = "</body></html>\n"
    skeleton = head + tags + tail
    budget = total_bytes - image_bytes - len(skeleton.encode())
    if budget < 0:
        raise SimulationError(
            f"images alone take {image_bytes} bytes; cannot fit a "
            f"{total_bytes}-byte page (skeleton needs "
            f"{len(skeleton.encode())})")
    filler = (_FILLER_SENTENCE * (budget // len(_FILLER_SENTENCE) + 1))[:budget]
    # Keep the filler valid HTML text by trimming at the byte level only;
    # the filler is pure ASCII so slicing is safe.
    html = (head + tags + "<p>" + filler[:-7] + "</p>" + tail) \
        if budget >= 7 else (head + tags + filler + tail)
    page = PageContent(html=html.encode(), images=images)
    if page.total_bytes != total_bytes:
        raise SimulationError(
            f"page budget error: built {page.total_bytes}, "
            f"wanted {total_bytes}")
    return page
