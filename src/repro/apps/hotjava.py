"""The no-simulation reference loader (Table 1's "HotJava" row).

The paper times Sun's HotJava browser loading the same page "as a rough
reference for estimating simulation overhead in each case".  Our reference
is the equivalent un-instrumented load: read the bytes, parse the HTML,
decode every image — with none of the co-simulation machinery.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Optional

from . import html, jpeg
from .content import PageContent, build_page


@dataclass
class ReferenceResult:
    """A raw, un-simulated page load."""

    wall_seconds: float
    bytes_loaded: int
    images_decoded: int
    title: str

    #: For harness symmetry with PageLoadResult.
    location: str = "n/a"
    level: str = "HotJava"

    @property
    def simulation_time(self) -> float:
        return self.wall_seconds


def fetch_like_hotjava(content: Optional[PageContent] = None,
                       *, url: str = "/index.html") -> ReferenceResult:
    """Load the page directly, timing the real work only."""
    if content is None:
        content = build_page()
    started = _time.perf_counter()
    body = content.resource(url)
    total = len(body)
    document = html.parse(body)
    decoded = 0
    for image_path in document.images:
        blob = content.resource(image_path)
        total += len(blob)
        jpeg.decode(blob)
        decoded += 1
    wall = _time.perf_counter() - started
    return ReferenceResult(wall_seconds=wall, bytes_loaded=total,
                           images_decoded=decoded, title=document.title)
