"""A tiny HTML tokenizer and document model for the WubbleU browser.

Just enough of an HTML engine to give the browser realistic work: a
tokenizer producing tags/text/comments, a document extractor pulling the
title and the ``<img src>`` references the browser must fetch, and a
layout cost model measured in token counts (fed to the basic-block timer).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import SimulationError


@dataclass(frozen=True)
class Token:
    """One lexical element of the page."""

    kind: str              # "tag" | "endtag" | "text" | "comment"
    value: str             # tag name or text content
    attrs: Tuple = ()      # ((name, value), ...) for "tag"


_ATTR_RE = re.compile(
    r"""([a-zA-Z_:][-\w:.]*)\s*(?:=\s*("[^"]*"|'[^']*'|[^\s>]+))?""")


def tokenize(html: str) -> Iterator[Token]:
    """Lex ``html`` into tokens (forgiving, never raises on bad markup)."""
    pos = 0
    length = len(html)
    while pos < length:
        cut = html.find("<", pos)
        if cut == -1:
            text = html[pos:]
            if text.strip():
                yield Token("text", text)
            return
        if cut > pos:
            text = html[pos:cut]
            if text.strip():
                yield Token("text", text)
        if html.startswith("<!--", cut):
            end = html.find("-->", cut + 4)
            end = length if end == -1 else end + 3
            yield Token("comment", html[cut + 4:end - 3])
            pos = end
            continue
        end = html.find(">", cut)
        if end == -1:
            yield Token("text", html[cut:])
            return
        inner = html[cut + 1:end].strip()
        pos = end + 1
        if not inner:
            continue
        if inner.startswith("/"):
            yield Token("endtag", inner[1:].strip().lower())
            continue
        if inner.endswith("/"):
            inner = inner[:-1].strip()
        parts = inner.split(None, 1)
        name = parts[0].lower()
        attrs: List[Tuple[str, str]] = []
        if len(parts) > 1:
            for match in _ATTR_RE.finditer(parts[1]):
                key = match.group(1).lower()
                raw = match.group(2) or ""
                if raw[:1] in ("'", '"'):
                    raw = raw[1:-1]
                attrs.append((key, raw))
        yield Token("tag", name, tuple(attrs))


@dataclass
class Document:
    """What the browser extracts from a page."""

    title: str = ""
    text_bytes: int = 0
    images: List[str] = field(default_factory=list)
    links: List[str] = field(default_factory=list)
    token_count: int = 0

    def layout_cost(self) -> Dict[str, int]:
        """Operation mix for the basic-block timer: laying the page out."""
        return {
            "alu": 40 * self.token_count + self.text_bytes // 4,
            "load": 8 * self.token_count,
            "store": 6 * self.token_count,
            "branch": 4 * self.token_count,
        }


def parse(html_bytes: bytes) -> Document:
    """Tokenize and extract the document structure."""
    try:
        html = html_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SimulationError(f"page is not valid UTF-8: {exc}") from exc
    document = Document()
    in_title = False
    for token in tokenize(html):
        document.token_count += 1
        if token.kind == "tag":
            if token.value == "title":
                in_title = True
            elif token.value == "img":
                src = dict(token.attrs).get("src")
                if src:
                    document.images.append(src)
            elif token.value == "a":
                href = dict(token.attrs).get("href")
                if href:
                    document.links.append(href)
        elif token.kind == "endtag" and token.value == "title":
            in_title = False
        elif token.kind == "text":
            if in_title:
                document.title += token.value.strip()
            document.text_bytes += len(token.value.encode("utf-8"))
    return document


def parse_cost(html_bytes: bytes) -> Dict[str, int]:
    """Operation mix for *tokenising* the raw bytes."""
    n = len(html_bytes)
    return {"alu": 6 * n, "load": n, "branch": n // 2}
