"""Gradual migration to hardware: the modem chip arrives (paper section 1).

One of the paper's required features: "it should allow the system
functionality to be gradually migrated to physical hardware while still
allowing the entire system to be modeled with the newly included
hardware".  The WubbleU story: the cellular ASIC — simulated behaviourally
by :class:`~repro.apps.cellular.CellularModem` during early design — comes
back from the fab (here: a behavioural :class:`ModemChip` behind the
hardware stub, possibly on a remote lab node), and the designer swaps it
into the *same* testbench.

:class:`HardwareBackedModem` keeps the exact external surface of the
software model (the ``bus``/``air`` interfaces and the ``irq`` pulse) but
derives its processing delays from real chip ticks: each frame is a job
poked into the chip, clocked until its ``done`` interrupt, and the elapsed
ticks become the component's virtual-time advance.  Everything else in the
system — the protocol stack, the page, Table 1's detail levels — is
untouched, which is the whole point.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..core.errors import HardwareStubError
from ..core.interface import Interface
from ..core.port import PortDirection
from ..core.process import Command, ReceiveTransfer, Send, Transfer
from ..hw.component import HwCall, HwCallExecutor
from ..hw.stub import HardwareStub, InterruptRecord
from ..protocols.base import Protocol

#: ModemChip register map.
REG_CTRL = 0x0
REG_STATUS = 0x4
REG_LEN = 0x8

#: STATUS bits.
STATUS_BUSY = 0x1


class ModemChip(HardwareStub):
    """The fabricated cellular ASIC, behind the stub contract.

    One job at a time: poke the frame length into ``REG_LEN``, clock the
    chip, and the ``done`` interrupt fires after
    ``setup_ticks + length * ticks_per_byte`` cycles — the chip's real
    frame-processing latency.
    """

    supports_state_save = True

    def __init__(self, *, clock_hz: float = 10e6, setup_ticks: int = 240,
                 ticks_per_byte: int = 4) -> None:
        if setup_ticks < 0 or ticks_per_byte < 1:
            raise HardwareStubError("bad modem chip timing parameters")
        self.clock_hz = clock_hz
        self.setup_ticks = setup_ticks
        self.ticks_per_byte = ticks_per_byte
        self._tick = 0
        self._stalled = False
        self._countdown = 0          # 0 = idle
        self._job_len = 0
        self.jobs_done = 0

    # -- stub contract -----------------------------------------------------
    def read_time(self) -> int:
        return self._tick

    def set_time(self, ticks: int) -> None:
        self._tick = int(ticks)

    def run_for(self, ticks: int) -> List[InterruptRecord]:
        records: List[InterruptRecord] = []
        for __ in range(ticks):
            self._tick += 1
            if self._stalled or self._countdown == 0:
                continue
            self._countdown -= 1
            if self._countdown == 0:
                self.jobs_done += 1
                records.append(
                    InterruptRecord(self._tick, "done", self._job_len))
        return records

    def stall(self) -> None:
        self._stalled = True

    def resume(self) -> None:
        self._stalled = False

    def peek(self, addr: int) -> int:
        if addr == REG_STATUS:
            return STATUS_BUSY if self._countdown else 0
        if addr == REG_LEN:
            return self._job_len
        if addr == REG_CTRL:
            return self.jobs_done
        raise HardwareStubError(f"modem: no register at {addr:#x}")

    def poke(self, addr: int, value: int) -> None:
        if addr != REG_LEN:
            raise HardwareStubError(f"modem: no writable register {addr:#x}")
        if self._countdown:
            raise HardwareStubError("modem: job already in progress")
        if value < 1:
            raise HardwareStubError(f"modem: bad frame length {value}")
        self._job_len = value
        self._countdown = self.setup_ticks + value * self.ticks_per_byte

    def save_state(self):
        return (self._tick, self._stalled, self._countdown, self._job_len,
                self.jobs_done)

    def restore_state(self, state) -> None:
        (self._tick, self._stalled, self._countdown, self._job_len,
         self.jobs_done) = state

    def frame_seconds(self, length: int) -> float:
        """The chip's processing latency for a frame (for comparisons)."""
        return (self.setup_ticks + length * self.ticks_per_byte) \
            / self.clock_hz


class HardwareBackedModem(HwCallExecutor):
    """Drop-in replacement for :class:`CellularModem` driving real ticks.

    Same ports, same interfaces, same protocol levels — constructible by
    the same WubbleU builders.  The stub may be local or a
    :class:`~repro.hw.server.RemoteHardwareClient` on a lab node.
    """

    def __init__(self, name: str = "NetIf", *, bus_protocol: Protocol,
                 air_protocol: Protocol, level: Optional[str] = None,
                 stub: Optional[HardwareStub] = None,
                 clock_window: float = 1e-4) -> None:
        super().__init__(name, stub if stub is not None else ModemChip())
        self.clock_window = clock_window
        self.frames_up = 0
        self.frames_down = 0
        self.dma_bytes = 0
        self.add_port("irq", PortDirection.OUT)
        self.add_interface(Interface("bus", bus_protocol, level=level,
                                     out_port="bus_tx", in_port="bus_rx"))
        self.add_interface(Interface("air", air_protocol,
                                     out_port="air_tx", in_port="air_rx"))

    # ------------------------------------------------------------------
    def _process_frame(self, frame: bytes) -> Iterator[Command]:
        """Push one frame through the chip; advances local time by the
        chip's measured processing latency."""
        yield HwCall("poke", (REG_LEN, len(frame)))
        started = yield HwCall("read_time", ())
        window = max(1, int(round(self.clock_window * self.stub.clock_hz)))
        while True:
            records = yield HwCall("run_for", (window,))
            done = [r for r in records if r.line == "done"]
            if done:
                elapsed = done[0].tick - started
                from ..core.process import Advance
                yield Advance(elapsed / self.stub.clock_hz)
                return

    def run(self) -> Iterator[Command]:
        yield HwCall("set_time", (0,))
        while True:
            __, request = yield ReceiveTransfer("bus")
            yield from self._process_frame(request)
            self.frames_up += 1
            yield Transfer("air", request)
            __, response = yield ReceiveTransfer("air")
            yield from self._process_frame(response)
            self.frames_down += 1
            self.dma_bytes += len(response)
            yield Transfer("bus", response)
            yield Send("irq", 1)
