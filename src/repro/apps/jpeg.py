"""A JPEG-flavoured image codec for the WubbleU workload.

The paper's example application decodes web images on the handheld ("there
may be special integrated circuits (GSM chips, JPEG chips)" — section 4).
This codec is the software equivalent: 8x8 block DCT, standard luminance
quantisation, zigzag scan, run-length coding of zeros, and a varint byte
stream instead of Huffman entropy coding (documented substitution — it
keeps the same computational shape while staying dependency-free).

Everything is deterministic, so encoded sizes — which the 66 KB page
budget depends on — are stable across runs and platforms.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..core.errors import SimulationError

BLOCK = 8

#: The standard JPEG luminance quantisation table (quality ~50).
QUANT = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)

_MAGIC = b"PJ1"


def _dct_matrix() -> np.ndarray:
    n = BLOCK
    k = np.arange(n)
    mat = np.sqrt(2.0 / n) * np.cos(np.pi * (2 * k[None, :] + 1)
                                    * k[:, None] / (2 * n))
    mat[0, :] = np.sqrt(1.0 / n)
    return mat


_DCT = _dct_matrix()
_IDCT = _DCT.T


def _zigzag_order() -> List[Tuple[int, int]]:
    order = sorted(((r, c) for r in range(BLOCK) for c in range(BLOCK)),
                   key=lambda rc: (rc[0] + rc[1],
                                   rc[1] if (rc[0] + rc[1]) % 2 else rc[0]))
    return order


_ZIGZAG = _zigzag_order()


def _quality_scale(quality: int) -> np.ndarray:
    if not 1 <= quality <= 100:
        raise SimulationError(f"quality must be 1..100, got {quality}")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    table = np.floor((QUANT * scale + 50) / 100)
    return np.clip(table, 1, 255)


# ---------------------------------------------------------------------------
# varint + RLE byte layer
# ---------------------------------------------------------------------------

def _write_varint(out: bytearray, value: int) -> None:
    # zigzag-encode the sign, then 7-bit groups
    encoded = (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    encoded = 0
    while True:
        if pos >= len(data):
            raise SimulationError("truncated varint in image stream")
        byte = data[pos]
        pos += 1
        encoded |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    value = -((encoded + 1) >> 1) if encoded & 1 else encoded >> 1
    return value, pos


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ImageInfo:
    width: int
    height: int
    quality: int
    blocks: int


def encode(image: np.ndarray, *, quality: int = 50) -> bytes:
    """Encode a greyscale uint8 image (dimensions multiples of 8)."""
    if image.ndim != 2:
        raise SimulationError("encode expects a 2-D greyscale image")
    height, width = image.shape
    if height % BLOCK or width % BLOCK:
        raise SimulationError(
            f"image dimensions must be multiples of {BLOCK}, "
            f"got {width}x{height}")
    table = _quality_scale(quality)
    out = bytearray()
    out += _MAGIC
    out += struct.pack("<HHB", width, height, quality)
    pixels = image.astype(np.float64) - 128.0
    for top in range(0, height, BLOCK):
        for left in range(0, width, BLOCK):
            block = pixels[top:top + BLOCK, left:left + BLOCK]
            coeffs = _DCT @ block @ _IDCT
            quantised = np.round(coeffs / table).astype(np.int64)
            scan = [int(quantised[r, c]) for r, c in _ZIGZAG]
            _encode_block(out, scan)
    return bytes(out)


def _encode_block(out: bytearray, scan: List[int]) -> None:
    """Emit tokens covering exactly ``len(scan)`` coefficients.

    The decoder stops as soon as the block is full, so an end-of-block
    token is written only for trailing zeros — never after a token that
    already completed the block.
    """
    index = 0
    while index < len(scan):
        if scan[index] == 0:
            run = 0
            while index < len(scan) and scan[index] == 0:
                run += 1
                index += 1
            if index >= len(scan):
                _write_varint(out, 0)      # end-of-block
                _write_varint(out, 0)
                return
            _write_varint(out, 0)          # zero-run marker
            _write_varint(out, run)
        else:
            _write_varint(out, scan[index])
            index += 1


def decode(blob: bytes) -> np.ndarray:
    """Decode back to a greyscale uint8 image."""
    if blob[:3] != _MAGIC:
        raise SimulationError("not a PJ1 image stream")
    width, height, quality = struct.unpack("<HHB", blob[3:8])
    table = _quality_scale(quality)
    pos = 8
    image = np.zeros((height, width), dtype=np.float64)
    for top in range(0, height, BLOCK):
        for left in range(0, width, BLOCK):
            scan, pos = _decode_block(blob, pos)
            quantised = np.zeros((BLOCK, BLOCK))
            for value, (r, c) in zip(scan, _ZIGZAG):
                quantised[r, c] = value
            coeffs = quantised * table
            block = _IDCT @ coeffs @ _DCT
            image[top:top + BLOCK, left:left + BLOCK] = block
    return np.clip(np.round(image + 128.0), 0, 255).astype(np.uint8)


def _decode_block(data: bytes, pos: int) -> Tuple[List[int], int]:
    scan: List[int] = []
    while len(scan) < BLOCK * BLOCK:
        value, pos = _read_varint(data, pos)
        if value == 0:
            run, pos = _read_varint(data, pos)
            if run == 0:                       # end-of-block
                scan.extend([0] * (BLOCK * BLOCK - len(scan)))
                return scan, pos
            scan.extend([0] * run)
        else:
            scan.append(value)
    return scan, pos


def info(blob: bytes) -> ImageInfo:
    """Peek at an encoded stream's header."""
    if blob[:3] != _MAGIC:
        raise SimulationError("not a PJ1 image stream")
    width, height, quality = struct.unpack("<HHB", blob[3:8])
    return ImageInfo(width, height, quality,
                     (width // BLOCK) * (height // BLOCK))


def psnr(original: np.ndarray, decoded: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    difference = original.astype(np.float64) - decoded.astype(np.float64)
    mse = float(np.mean(difference * difference))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)


def synthetic_image(width: int, height: int, *, seed: int = 0) -> np.ndarray:
    """A deterministic test card: gradients, checkers and some texture."""
    if width % BLOCK or height % BLOCK:
        raise SimulationError("dimensions must be multiples of 8")
    ys, xs = np.mgrid[0:height, 0:width]
    gradient = (xs * 255.0 / max(width - 1, 1))
    checker = ((xs // 16 + ys // 16) % 2) * 60.0
    rng = np.random.default_rng(seed)
    texture = rng.normal(0.0, 12.0, size=(height, width))
    image = 0.55 * gradient + checker + texture + 40.0
    return np.clip(image, 0, 255).astype(np.uint8)
