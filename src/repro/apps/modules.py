"""The WubbleU modules (paper section 4, Fig. 5).

"WubbleU is essentially a hand held Web Browser ... that consists of a
hand held unit and a wireless connection to a dedicated server."  The
communication flow graph of Fig. 5 maps to these components:

``HandwritingRecognizer``
    The input-method IP block: turns pen strokes into a URL.
``UserInterface``
    Accepts the recognised URL, asks the browser to navigate, and records
    when the rendered page comes back — the page-load latency of Table 1.
``Browser``
    The HTML engine: fetches the page, tokenises it, fetches and decodes
    every image (real JPEG-flavoured decode work), lays the page out.
``ProtocolStack``
    Frames requests/responses and moves them over the system bus to the
    network interface.  Its ``bus`` interface is the one whose detail
    level Table 1 sweeps (word passage vs packet passage).
``BaseStation``
    The dedicated server at the far end of the cellular link; it proxies
    requests to the origin web server over a WAN link.

The cellular modem ASIC lives in :mod:`repro.apps.cellular` and the origin
server in :mod:`repro.apps.webserver`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..core.component import ProcessComponent
from ..core.errors import SimulationError
from ..core.interface import Interface
from ..core.port import PortDirection
from ..core.process import (
    Advance,
    Command,
    Receive,
    ReceiveTransfer,
    Send,
    Transfer,
    TryReceive,
)
from ..processor.timing import ARM7, BasicBlockTimer, ProcessorProfile
from ..protocols.base import Protocol
from . import html, jpeg

# ---------------------------------------------------------------------------
# the HTTP-like application protocol
# ---------------------------------------------------------------------------

_REQUEST_PREFIX = b"GET "
_REQUEST_SUFFIX = b" PIA/1.0\r\n\r\n"
_RESPONSE_PREFIX = b"PIA/1.0 200\r\nLength: "
_RESPONSE_SEP = b"\r\n\r\n"


def encode_request(path: str) -> bytes:
    return _REQUEST_PREFIX + path.encode() + _REQUEST_SUFFIX


def parse_request(data: bytes) -> str:
    if not data.startswith(_REQUEST_PREFIX) or \
            not data.endswith(_REQUEST_SUFFIX):
        raise SimulationError(f"malformed request: {data[:40]!r}")
    return data[len(_REQUEST_PREFIX):-len(_REQUEST_SUFFIX)].decode()


def encode_response(body: bytes) -> bytes:
    return _RESPONSE_PREFIX + str(len(body)).encode() + _RESPONSE_SEP + body


def parse_response(data: bytes) -> bytes:
    if not data.startswith(_RESPONSE_PREFIX):
        raise SimulationError(f"malformed response: {data[:40]!r}")
    cut = data.index(_RESPONSE_SEP)
    length = int(data[len(_RESPONSE_PREFIX):cut])
    body = data[cut + len(_RESPONSE_SEP):]
    if len(body) != length:
        raise SimulationError(
            f"response length mismatch: header says {length}, "
            f"body is {len(body)}")
    return body


# ---------------------------------------------------------------------------
# components
# ---------------------------------------------------------------------------

class HandwritingRecognizer(ProcessComponent):
    """Pen strokes in, a URL out — one of the paper's example IP blocks.

    With ``repeats`` > 1 the user writes the URL again after each page
    renders (the UI pulses ``next`` back), modelling a browsing session of
    several page loads.
    """

    def __init__(self, name: str = "HWR", *, url: str = "/index.html",
                 strokes: int = 12, repeats: int = 1,
                 profile: ProcessorProfile = ARM7) -> None:
        super().__init__(name)
        self.url = url
        self.strokes = strokes
        self.repeats = repeats
        self.timer = BasicBlockTimer(profile)
        self.add_port("text", PortDirection.OUT)
        self.add_port("next", PortDirection.IN)

    def run(self) -> Iterator[Command]:
        for round_index in range(self.repeats):
            if round_index:
                yield Receive("next")      # wait for the previous render
            # Per-stroke feature extraction plus a classifier pass.
            for __ in range(self.strokes):
                yield self.timer.block(alu=2200, load=300, mul=64,
                                       branch=180)
            yield self.timer.block(alu=9000, mul=1200, load=900, branch=700)
            yield Send("text", self.url)


class UserInterface(ProcessComponent):
    """Issues navigations and records each page-load completion."""

    def __init__(self, name: str = "UI", *, page_loads: int = 1,
                 profile: ProcessorProfile = ARM7) -> None:
        super().__init__(name)
        self.page_loads = page_loads
        self.timer = BasicBlockTimer(profile)
        self.page_loaded_at: Optional[float] = None
        self.summary: Optional[dict] = None
        #: (completion time, summary) of every load in the session.
        self.history: list = []
        self.add_port("hwr", PortDirection.IN)
        self.add_port("navigate", PortDirection.OUT)
        self.add_port("render", PortDirection.IN)
        self.add_port("next", PortDirection.OUT)

    def run(self) -> Iterator[Command]:
        for round_index in range(self.page_loads):
            __, url = yield Receive("hwr")
            yield self.timer.block(alu=600, load=120, store=80)
            yield Send("navigate", url)
            finished_at, summary = yield Receive("render")
            self.page_loaded_at = finished_at
            self.summary = summary
            self.history.append((finished_at, summary))
            if round_index + 1 < self.page_loads:
                yield self.timer.block(alu=1500, store=200)   # user reads
                yield Send("next", round_index + 1)


class Browser(ProcessComponent):
    """The HTML engine of the handheld unit."""

    #: Per-8x8-block decode cost (two 8x8 matrix products and friends).
    DECODE_BLOCK_OPS = {"mul": 1024, "alu": 1100, "load": 160, "store": 80}

    def __init__(self, name: str = "Browser", *,
                 profile: ProcessorProfile = ARM7,
                 do_real_decode: bool = True) -> None:
        super().__init__(name)
        self.timer = BasicBlockTimer(profile)
        #: Actually run the JPEG decoder (real CPU work, like HotJava
        #: really decoding); disable for pure event-count studies.
        self.do_real_decode = do_real_decode
        self.pages_loaded = 0
        self.bytes_received = 0
        self.decoded_blocks = 0
        self.add_port("ui_req", PortDirection.IN)
        self.add_port("ui_done", PortDirection.OUT)
        self.add_port("fetch_req", PortDirection.OUT)
        self.add_port("fetch_resp", PortDirection.IN)

    def _fetch(self, path: str) -> Iterator[Command]:
        yield self.timer.block(alu=400, store=60)
        yield Send("fetch_req", path)
        __, body = yield Receive("fetch_resp")
        self.bytes_received += len(body)
        return body

    def run(self) -> Iterator[Command]:
        while True:
            __, url = yield Receive("ui_req")
            page = yield from self._fetch(url)
            yield self.timer.block(**html.parse_cost(page))
            document = html.parse(page)
            images_decoded = 0
            for image_path in document.images:
                blob = yield from self._fetch(image_path)
                header = jpeg.info(blob)
                self.decoded_blocks += header.blocks
                yield self.timer.block(**{
                    op: count * header.blocks
                    for op, count in self.DECODE_BLOCK_OPS.items()})
                if self.do_real_decode:
                    jpeg.decode(blob)
                images_decoded += 1
            yield self.timer.block(**document.layout_cost())
            self.pages_loaded += 1
            yield Send("ui_done", {
                "url": url,
                "title": document.title,
                "images": images_decoded,
                "bytes": self.bytes_received,
            })


class ProtocolStack(ProcessComponent):
    """Request/response framing over the system bus to the modem.

    ``bus_protocol`` must offer the detail levels the experiment sweeps
    (``word``/``packet``/``transaction``); the interface starts at
    ``level``.
    """

    def __init__(self, name: str = "Stack", *, bus_protocol: Protocol,
                 level: Optional[str] = None,
                 profile: ProcessorProfile = ARM7) -> None:
        super().__init__(name)
        self.timer = BasicBlockTimer(profile)
        self.requests_handled = 0
        self.irq_count = 0
        self.add_port("app_rx", PortDirection.IN)
        self.add_port("app_tx", PortDirection.OUT)
        self.add_port("irq", PortDirection.IN)
        self.add_interface(Interface("bus", bus_protocol, level=level,
                                     out_port="bus_tx", in_port="bus_rx"))

    def run(self) -> Iterator[Command]:
        while True:
            __, path = yield Receive("app_rx")
            yield self.timer.block(alu=900, load=140, store=180)
            yield Transfer("bus", encode_request(path))
            __, raw = yield ReceiveTransfer("bus")
            body = parse_response(raw)
            # copy out of the DMA buffer
            yield self.timer.block(alu=len(body) // 2, load=len(body) // 4,
                                   store=len(body) // 4)
            while True:
                irq = yield TryReceive("irq")
                if irq is None:
                    break
                self.irq_count += 1
            self.requests_handled += 1
            yield Send("app_tx", body)


class BaseStation(ProcessComponent):
    """The dedicated server on the far side of the wireless link."""

    def __init__(self, name: str = "Server", *, air_protocol: Protocol,
                 wan_protocol: Protocol,
                 profile: ProcessorProfile = ARM7) -> None:
        super().__init__(name)
        self.timer = BasicBlockTimer(profile)
        self.requests_proxied = 0
        self.add_interface(Interface("air", air_protocol,
                                     out_port="air_tx", in_port="air_rx"))
        self.add_interface(Interface("wan", wan_protocol,
                                     out_port="wan_tx", in_port="wan_rx"))

    def run(self) -> Iterator[Command]:
        while True:
            __, request = yield ReceiveTransfer("air")
            parse_request(request)      # validates framing
            yield self.timer.block(alu=2500, load=400, store=300)
            yield Transfer("wan", request)
            __, response = yield ReceiveTransfer("wan")
            yield self.timer.block(alu=len(response) // 8)
            self.requests_proxied += 1
            yield Transfer("air", response)
