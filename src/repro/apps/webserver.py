"""The origin web server holding the test page.

Stands in for "the Pia homepage (http://www.cs.washington.edu/research/
chinook/pia.html)" of the evaluation: a content store behind a WAN link,
with a per-request service latency.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.component import ProcessComponent
from ..core.interface import Interface
from ..core.process import Advance, Command, ReceiveTransfer, Transfer
from ..protocols.base import Protocol
from .content import PageContent
from .modules import encode_response, parse_request


class WebServer(ProcessComponent):
    """Serves the page and its resources over the ``wan`` interface."""

    def __init__(self, name: str = "Origin", *, content: PageContent,
                 wan_protocol: Protocol,
                 service_latency: float = 5e-3) -> None:
        super().__init__(name)
        self.content = content
        self.service_latency = service_latency
        self.requests_served = 0
        self.bytes_served = 0
        self.add_interface(Interface("wan", wan_protocol,
                                     out_port="wan_tx", in_port="wan_rx"))

    def run(self) -> Iterator[Command]:
        while True:
            __, request = yield ReceiveTransfer("wan")
            path = parse_request(request)
            body = self.content.resource(path)
            yield Advance(self.service_latency)
            self.requests_served += 1
            self.bytes_served += len(body)
            yield Transfer("wan", encode_response(body))
