"""System builders for the WubbleU benchmark (paper section 4, Fig. 6).

"We will focus on a particular implementation that includes a simple
cellular connection to a server which connects to the Internet, and most
of the functionality is on the handheld unit. ...  In this architecture,
all processes are mapped to the processor, with the exception of the
network interface which was mapped to the cellular communication chip."

Two placements reproduce Table 1's *local* and *remote* rows:

* **local** — the whole system in one subsystem on one node;
* **split** — the handheld processes on one node, the cellular chip (and
  everything beyond it) on another, joined by a channel over a configurable
  network model.  This is "remote operation" of the chip.

The detail level of the system-bus link (``word``/``packet``/
``transaction``) is the experiment's other axis.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.errors import SimulationError
from ..distributed.channel import ChannelMode
from ..distributed.executor import CoSimulation
from ..distributed.partition import Deployment, Design, deploy
from ..protocols.base import Protocol
from ..protocols.bus import TransactionCodec
from ..protocols.packetized import packet_protocol
from ..transport.latency import INTERNET, SAME_HOST, LatencyModel
from .cellular import CellularModem
from .content import DEFAULT_TOTAL_BYTES, PageContent, build_page
from .modules import (
    BaseStation,
    Browser,
    HandwritingRecognizer,
    ProtocolStack,
    UserInterface,
)
from .webserver import WebServer

#: Component-to-subsystem maps for the two placements.
HANDHELD = "handheld"
CELLSITE = "cellsite"

ASSIGN_LOCAL = {name: HANDHELD for name in
                ("HWR", "UI", "Browser", "Stack", "NetIf", "Server",
                 "Origin")}
ASSIGN_SPLIT = {
    "HWR": HANDHELD, "UI": HANDHELD, "Browser": HANDHELD,
    "Stack": HANDHELD,
    "NetIf": CELLSITE, "Server": CELLSITE, "Origin": CELLSITE,
}


@dataclass
class WubbleUConfig:
    """All the knobs of the experiment."""

    #: Detail level of the system-bus link: "word" | "packet" | "transaction".
    level: str = "packet"
    url: str = "/index.html"
    total_bytes: int = DEFAULT_TOTAL_BYTES
    image_count: int = 4
    image_size: int = 160
    quality: int = 50
    seed: int = 7
    #: System bus: a 20 MB/s embedded bus, 4-byte words, 1 KB packets.
    bus_packet_size: int = 1024
    bus_word_width: int = 4
    bus_cycle_time: float = 2e-7
    bus_bandwidth: float = 20e6
    #: The cellular air link: ~1 Mbit/s, 512 B frames.
    air_bandwidth: float = 125e3
    air_packet_size: int = 512
    air_packet_overhead: float = 2e-3
    #: Base-station-to-origin WAN: abstract transaction link.
    wan_bandwidth: float = 1e6
    wan_latency: float = 20e-3
    origin_service_latency: float = 5e-3
    #: Really run the JPEG decoder (real CPU work).
    do_real_decode: bool = True
    #: Pages loaded in one browsing session (amortises fixed costs).
    page_loads: int = 1
    #: "model" = the behavioural CellularModem; "hardware" = the
    #: HardwareBackedModem driving a ModemChip behind the stub contract —
    #: the paper's gradual migration to real hardware.
    modem_backend: str = "model"
    #: Optional pre-built stub for the hardware backend (e.g. a
    #: RemoteHardwareClient pointing at a lab node).
    modem_stub: Optional[object] = None

    def bus_protocol(self) -> Protocol:
        return packet_protocol(
            "syslink", packet_size=self.bus_packet_size,
            word_width=self.bus_word_width, cycle_time=self.bus_cycle_time,
            bandwidth=self.bus_bandwidth)

    def air_protocol(self) -> Protocol:
        return packet_protocol(
            "air", packet_size=self.air_packet_size,
            bandwidth=self.air_bandwidth,
            per_packet_overhead=self.air_packet_overhead,
            cycle_time=8.0 / self.air_bandwidth)

    def wan_protocol(self) -> Protocol:
        return Protocol("wan", {
            "transaction": TransactionCodec(self.wan_bandwidth,
                                            self.wan_latency)})


def build_design(config: WubbleUConfig) -> Tuple[Design, PageContent]:
    """The placement-independent WubbleU design (Fig. 5's module graph)."""
    page = build_page(total_bytes=config.total_bytes,
                      image_count=config.image_count,
                      image_size=config.image_size,
                      quality=config.quality, seed=config.seed)
    design = Design("wubbleu")
    design.add(HandwritingRecognizer("HWR", url=config.url,
                                     repeats=config.page_loads))
    design.add(UserInterface("UI", page_loads=config.page_loads))
    design.add(Browser("Browser", do_real_decode=config.do_real_decode))
    design.add(ProtocolStack("Stack", bus_protocol=config.bus_protocol(),
                             level=config.level))
    if config.modem_backend == "model":
        design.add(CellularModem("NetIf", bus_protocol=config.bus_protocol(),
                                 air_protocol=config.air_protocol(),
                                 level=config.level))
    elif config.modem_backend == "hardware":
        from .hwmodem import HardwareBackedModem
        design.add(HardwareBackedModem(
            "NetIf", bus_protocol=config.bus_protocol(),
            air_protocol=config.air_protocol(), level=config.level,
            stub=config.modem_stub))
    else:
        raise SimulationError(
            f"unknown modem backend {config.modem_backend!r} "
            "(expected 'model' or 'hardware')")
    design.add(BaseStation("Server", air_protocol=config.air_protocol(),
                           wan_protocol=config.wan_protocol()))
    design.add(WebServer("Origin", content=page,
                         wan_protocol=config.wan_protocol(),
                         service_latency=config.origin_service_latency))

    design.connect("hwr_text", ("HWR", "text"), ("UI", "hwr"))
    design.connect("ui_next", ("UI", "next"), ("HWR", "next"))
    design.connect("ui_nav", ("UI", "navigate"), ("Browser", "ui_req"))
    design.connect("ui_render", ("Browser", "ui_done"), ("UI", "render"))
    design.connect("app_req", ("Browser", "fetch_req"), ("Stack", "app_rx"))
    design.connect("app_resp", ("Stack", "app_tx"), ("Browser", "fetch_resp"))
    design.connect("bus_fwd", ("Stack", "bus_tx"), ("NetIf", "bus_rx"))
    design.connect("bus_bwd", ("NetIf", "bus_tx"), ("Stack", "bus_rx"))
    design.connect("netirq", ("NetIf", "irq"), ("Stack", "irq"))
    design.connect("air_fwd", ("NetIf", "air_tx"), ("Server", "air_rx"))
    design.connect("air_bwd", ("Server", "air_tx"), ("NetIf", "air_rx"))
    design.connect("wan_fwd", ("Server", "wan_tx"), ("Origin", "wan_rx"))
    design.connect("wan_bwd", ("Origin", "wan_tx"), ("Server", "wan_rx"))
    return design, page


def build_local(config: Optional[WubbleUConfig] = None, *,
                batching: bool = False
                ) -> Tuple[CoSimulation, Deployment, PageContent]:
    """Everything in a single subsystem on a single node."""
    config = config or WubbleUConfig()
    design, page = build_design(config)
    cosim = CoSimulation(batching=batching)
    deployment = deploy(design, ASSIGN_LOCAL, cosim,
                        placement={HANDHELD: "host-a"})
    return cosim, deployment, page


def build_split(config: Optional[WubbleUConfig] = None, *,
                network: LatencyModel = INTERNET,
                mode: ChannelMode = ChannelMode.CONSERVATIVE,
                batching: bool = False
                ) -> Tuple[CoSimulation, Deployment, PageContent]:
    """Fig. 6's topology: the cellular chip remote, over ``network``."""
    config = config or WubbleUConfig()
    design, page = build_design(config)
    cosim = CoSimulation(snapshot_interval=(
        0.2 if mode is ChannelMode.OPTIMISTIC else None),
        batching=batching)
    deployment = deploy(design, ASSIGN_SPLIT, cosim,
                        placement={HANDHELD: "host-a", CELLSITE: "host-b"},
                        mode=mode)
    cosim.set_link_model("host-a", "host-b", network)
    return cosim, deployment, page


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

@dataclass
class PageLoadResult:
    """One Table 1 cell: a measured page load."""

    location: str                  # "local" | "remote"
    level: str                     # detail level of the bus link
    virtual_time: float            # when the page finished loading (sim s)
    cpu_seconds: float             # host CPU time spent simulating
    network_delay: float           # modelled wall time of inter-node traffic
    messages: int                  # inter-node messages
    wire_bytes: int                # inter-node bytes
    events: int                    # events dispatched
    bytes_loaded: int              # payload the browser received
    frames: int = 0                # wire frames (== messages unless batched)

    @property
    def simulation_time(self) -> float:
        """The paper's "simulation time": wall clock to finish the load.

        Communication with a remote node is serialised with the
        simulation, so the modelled network time adds to the measured CPU
        time (DESIGN.md, substitutions)."""
        return self.cpu_seconds + self.network_delay


def run_page_load(cosim: CoSimulation, *, location: str,
                  level: str) -> PageLoadResult:
    """Run a built system to completion and collect the measurements."""
    started = _time.perf_counter()
    cosim.run()
    cpu = _time.perf_counter() - started
    ui = cosim.component("UI")
    browser = cosim.component("Browser")
    if ui.page_loaded_at is None:
        raise SimulationError("the page never finished loading")
    accounting = cosim.transport.accounting
    events = sum(ss.scheduler.dispatched for ss in cosim.subsystems.values())
    return PageLoadResult(
        location=location,
        level=level,
        virtual_time=ui.page_loaded_at,
        cpu_seconds=cpu,
        network_delay=accounting.total_delay,
        messages=accounting.total_messages,
        wire_bytes=accounting.total_bytes,
        events=events,
        bytes_loaded=browser.bytes_received,
        frames=accounting.total_frames,
    )


def page_load(level: str, *, remote: bool,
              network: LatencyModel = INTERNET,
              mode: ChannelMode = ChannelMode.CONSERVATIVE,
              config: Optional[WubbleUConfig] = None,
              batching: bool = False) -> PageLoadResult:
    """One-call API: build, run and measure one Table 1 configuration."""
    config = config or WubbleUConfig()
    config.level = level
    if remote:
        cosim, __, ___ = build_split(config, network=network, mode=mode,
                                     batching=batching)
    else:
        cosim, __, ___ = build_local(config, batching=batching)
    return run_page_load(cosim, location="remote" if remote else "local",
                         level=level)
