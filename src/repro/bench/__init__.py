"""The experiment harness regenerating every table and figure."""

from .harness import (
    PAPER_TABLE1,
    Table,
    assert_factor,
    assert_order,
    format_bytes,
    format_count,
    format_seconds,
    ratio,
)
from .record import bench_json_path, record_bench
from .report import ActivityReport, activity_report
from .workloads import ring_of_pairs, streaming_pair

__all__ = [
    "ActivityReport", "activity_report", "bench_json_path",
    "PAPER_TABLE1", "Table", "assert_factor", "assert_order",
    "format_bytes", "format_count", "format_seconds", "ratio",
    "record_bench", "ring_of_pairs", "streaming_pair",
]
