"""The experiment harness: tables, paper values, shape assertions.

Every benchmark regenerates one of the paper's tables or figures.  The
harness renders results in the same row layout the paper reports, prints a
side-by-side with the published numbers where they exist, and provides
*shape* assertions — who wins, by what order of magnitude — because the
absolute numbers of a 1998 twin-Pentium-Pro testbed are not reproducible
on a Python simulator (see DESIGN.md).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Table 1 of the paper: "Time and simulation overhead on several
#: configurations of the WubbleU example".  The local/word entry is
#: unreadable in the surviving copy of the paper (the scan drops the
#: number); it is recorded as None.
PAPER_TABLE1: Dict[str, Optional[float]] = {
    "HotJava": 0.54,
    "local word passage": None,
    "local packet passage": 43.1,
    "remote word passage": 604.0,
    "remote packet passage": 80.3,
}


def format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value == 0:
        return "0 s"
    if value < 1e-3:
        return f"{value * 1e6:.1f} us"
    if value < 1:
        return f"{value * 1e3:.1f} ms"
    if value < 120:
        return f"{value:.2f} s"
    return f"{value:.0f} s"


def format_bytes(value: int) -> str:
    if value < 2048:
        return f"{value} B"
    if value < 2 * 1024 * 1024:
        return f"{value / 1024:.1f} KB"
    return f"{value / (1024 * 1024):.2f} MB"


def format_count(value: int) -> str:
    if value < 10_000:
        return str(value)
    if value < 10_000_000:
        return f"{value / 1000:.1f}k"
    return f"{value / 1e6:.2f}M"


@dataclass
class Table:
    """A printable experiment table."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"{self.title}: row has {len(cells)} cells, "
                f"table has {len(self.columns)} columns")
        self.rows.append([str(cell) for cell in cells])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i])
                             for i, cell in enumerate(cells)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [f"== {self.title} ==", line(self.columns), rule]
        parts.extend(line(row) for row in self.rows)
        for note in self.notes:
            parts.append(f"  * {note}")
        return "\n".join(parts)

    def show(self) -> str:
        text = self.render()
        print("\n" + text + "\n")
        return text

    def save(self, name: str, directory: Optional[str] = None) -> str:
        """Persist under ``benchmarks/results`` (or ``directory``), and
        mirror the rows into the machine-readable results file
        (``BENCH_pr4.json``) so every benchmark emits diffable JSON."""
        if directory is None:
            directory = os.environ.get("PIA_BENCH_RESULTS",
                                       os.path.join("benchmarks", "results"))
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        from .record import record_bench
        record_bench(name, "table", extra={
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        })
        return path


# ---------------------------------------------------------------------------
# shape assertions
# ---------------------------------------------------------------------------

def assert_order(values: Dict[str, float], *ranking: str) -> None:
    """Assert ``values[ranking[0]] < values[ranking[1]] < ...``."""
    for earlier, later in zip(ranking, ranking[1:]):
        assert values[earlier] < values[later], (
            f"shape violation: expected {earlier} "
            f"({values[earlier]:g}) < {later} ({values[later]:g})")


def assert_factor(values: Dict[str, float], small: str, big: str,
                  at_least: float) -> None:
    """Assert ``values[big] >= at_least * values[small]``."""
    assert values[big] >= at_least * values[small], (
        f"shape violation: {big} ({values[big]:g}) is not >= "
        f"{at_least}x {small} ({values[small]:g})")


def ratio(values: Dict[str, float], numerator: str,
          denominator: str) -> float:
    den = values[denominator]
    return math.inf if den == 0 else values[numerator] / den
