"""Machine-readable benchmark results.

Every benchmark module records its headline numbers — wall time plus the
message/frame/byte counters of the run's
:class:`~repro.observability.RunReport` — into one JSON file at the repo
root (``BENCH_pr10.json``, overridable via ``PIA_BENCH_JSON``).  The file
is a two-level map ``bench -> case -> entry`` and is merged on every
write, so a partial re-run updates only its own entries and the artefact
can be diffed across commits like the rendered tables.

The test suite points ``PIA_BENCH_JSON`` at a per-test temporary file
(``tests/conftest.py``) so exercising the bench harness under pytest
never edits the committed trajectory.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Optional

#: Environment override for the output path (absolute, or relative to
#: the repository root).
ENV_PATH = "PIA_BENCH_JSON"
DEFAULT_FILENAME = "BENCH_pr10.json"

_lock = threading.Lock()


def bench_json_path() -> str:
    """Resolve the results file: ``$PIA_BENCH_JSON`` or repo root."""
    path = os.environ.get(ENV_PATH, DEFAULT_FILENAME)
    if os.path.isabs(path):
        return path
    root = os.path.abspath(__file__)
    for __ in range(4):      # src/repro/bench/record.py -> repo root
        root = os.path.dirname(root)
    return os.path.join(root, path)


def record_bench(bench: str, case: str, *, report=None,
                 wall_seconds: Optional[float] = None,
                 extra: Optional[dict] = None) -> dict:
    """Merge one ``bench``/``case`` entry into the results file.

    With a ``report`` (a :class:`~repro.observability.RunReport`), the
    standard counters are extracted automatically and ``wall_seconds``
    defaults to the run's ``executor.run`` timer.  ``extra`` adds or
    overrides fields.  Returns the entry written.
    """
    entry: dict = {}
    if report is not None:
        totals = report.link_totals()
        entry.update({
            "messages": totals["messages"],
            "frames": totals["frames"],
            "bytes": totals["bytes"],
            "link_delay_seconds": totals["delay"],
            "events": sum(row["dispatched"] for row in report.subsystems),
            "safe_time_requests": report.counter("safetime.requests"),
            "safe_time_piggybacked": report.counter("safetime.piggybacked"),
        })
        if wall_seconds is None:
            wall_seconds = report.timings.get(
                "executor.run", {}).get("total_seconds")
    if wall_seconds is not None:
        entry["wall_seconds"] = round(float(wall_seconds), 6)
    if extra:
        entry.update(extra)
    path = bench_json_path()
    with _lock:
        data: dict = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict):
            data = {}
        data.setdefault(bench, {})[case] = entry
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return entry
