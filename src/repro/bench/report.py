"""System activity reports: "view all parts of the system" in one table.

The paper's first requirement is that the designer can view every part of
the system — hardware, software, simulation.  These helpers summarise a
finished (or paused) run: per-component virtual activity, per-net traffic,
per-interface transfer volumes, per-channel synchronisation costs and the
checkpoint footprint — for a single-host :class:`Simulator` or a whole
:class:`CoSimulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.simulator import Simulator
from ..core.subsystem import Subsystem
from .harness import Table, format_bytes, format_count, format_seconds


@dataclass
class ActivityReport:
    """The assembled summary; render with :meth:`tables` or ``str()``."""

    title: str
    components: List[dict] = field(default_factory=list)
    nets: List[dict] = field(default_factory=list)
    interfaces: List[dict] = field(default_factory=list)
    channels: List[dict] = field(default_factory=list)
    subsystems: List[dict] = field(default_factory=list)

    def tables(self) -> List[Table]:
        made: List[Table] = []
        table = Table(f"{self.title}: subsystems",
                      ["subsystem", "node", "time", "events", "stalls",
                       "checkpoints"])
        for row in self.subsystems:
            table.add(row["name"], row["node"],
                      format_seconds(row["time"]),
                      format_count(row["events"]),
                      format_count(row["stalls"]),
                      format_count(row["checkpoints"]))
        made.append(table)

        table = Table(f"{self.title}: components",
                      ["component", "subsystem", "local time", "status",
                       "level"])
        for row in self.components:
            table.add(row["name"], row["subsystem"],
                      format_seconds(row["local_time"]), row["status"],
                      row["level"])
        made.append(table)

        if self.nets:
            table = Table(f"{self.title}: nets", ["net", "subsystem",
                                                  "posts"])
            for row in self.nets:
                table.add(row["name"], row["subsystem"],
                          format_count(row["posts"]))
            made.append(table)

        if self.interfaces:
            table = Table(f"{self.title}: interfaces",
                          ["interface", "level", "transfers", "chunks",
                           "payload"])
            for row in self.interfaces:
                table.add(row["name"], row["level"],
                          format_count(row["transfers"]),
                          format_count(row["chunks"]),
                          format_bytes(row["payload"]))
            made.append(table)

        if self.channels:
            table = Table(f"{self.title}: channels",
                          ["channel", "mode", "forwarded", "injected",
                           "safe-time reqs", "stragglers"])
            for row in self.channels:
                table.add(row["name"], row["mode"],
                          format_count(row["forwarded"]),
                          format_count(row["injected"]),
                          format_count(row["safe_time"]),
                          format_count(row["stragglers"]))
            made.append(table)
        return made

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables())

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _collect_subsystem(report: ActivityReport, subsystem: Subsystem) -> None:
    node = subsystem.node.name if subsystem.node is not None else "-"
    report.subsystems.append({
        "name": subsystem.name,
        "node": node,
        "time": subsystem.now,
        "events": subsystem.scheduler.dispatched,
        "stalls": subsystem.scheduler.stalls,
        "checkpoints": len(subsystem.checkpoints),
    })
    for name in sorted(subsystem.components):
        component = subsystem.components[name]
        if name.startswith("__channel"):
            continue
        status = "finished" if component.finished else (
            "blocked" if component.is_blocked() else "idle")
        report.components.append({
            "name": name,
            "subsystem": subsystem.name,
            "local_time": component.local_time,
            "status": status,
            "level": component.runlevel,
        })
        for iface in component.interfaces.values():
            report.interfaces.append({
                "name": iface.full_name,
                "level": iface.level,
                "transfers": iface.sent_transfers,
                "chunks": iface.sent_chunks,
                "payload": iface.sent_payload_bytes,
            })
    for name in sorted(subsystem.nets):
        report.nets.append({
            "name": name,
            "subsystem": subsystem.name,
            "posts": subsystem.nets[name].posts,
        })
    for channel_id in sorted(subsystem.channels):
        endpoint = subsystem.channels[channel_id]
        report.channels.append({
            "name": f"{channel_id}@{subsystem.name}",
            "mode": endpoint.mode.value,
            "forwarded": endpoint.forwarded,
            "injected": endpoint.injected,
            "safe_time": endpoint.safe_time_requests,
            "stragglers": endpoint.stragglers,
        })


def activity_report(target: Union[Simulator, "object"],
                    *, title: Optional[str] = None) -> ActivityReport:
    """Summarise a Simulator or a CoSimulation."""
    if isinstance(target, Simulator):
        report = ActivityReport(title or target.subsystem.name)
        _collect_subsystem(report, target.subsystem)
        return report
    subsystems = getattr(target, "subsystems", None)
    if subsystems is None:
        raise TypeError(
            f"cannot report on {type(target).__name__}: expected a "
            "Simulator or CoSimulation")
    report = ActivityReport(title or "co-simulation")
    for name in sorted(subsystems):
        _collect_subsystem(report, subsystems[name])
    return report
