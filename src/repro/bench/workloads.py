"""Reusable synthetic workloads for the ablation benchmarks."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.component import FunctionComponent
from ..core.process import Advance, Receive, Send, WaitUntil
from ..distributed.channel import ChannelMode
from ..distributed.executor import CoSimulation
from ..transport.latency import SAME_HOST, LatencyModel


def streaming_pair(message_count: int, period: float, *,
                   mode: ChannelMode = ChannelMode.CONSERVATIVE,
                   consumer_work: float = 0.0,
                   snapshot_interval: Optional[float] = None,
                   network: LatencyModel = SAME_HOST,
                   channel_delay: float = 0.0) -> CoSimulation:
    """A producer streaming to a consumer across two nodes.

    ``consumer_work`` gives the consumer's subsystem private busy-work so
    that, under optimism, it runs ahead and stragglers occur (the consumer
    subsystem is named to be scheduled first).
    """
    cosim = CoSimulation(snapshot_interval=snapshot_interval)
    ss_cons = cosim.add_subsystem(cosim.add_node("n-cons"), "a-consumer")
    ss_prod = cosim.add_subsystem(cosim.add_node("n-prod"), "z-producer")
    cosim.set_link_model("n-cons", "n-prod", network)

    def produce(comp):
        for index in range(message_count):
            yield Advance(period)
            yield Send("out", index)

    def consume(comp):
        comp.received = []
        for __ in range(message_count):
            t, value = yield Receive("in")
            comp.received.append((t, value))

    producer = FunctionComponent("producer", produce, ports={"out": "out"})
    consumer = FunctionComponent("consumer", consume, ports={"in": "in"})
    ss_prod.add(producer)
    ss_cons.add(consumer)

    if consumer_work > 0:
        def busy(comp):
            while comp.local_time < consumer_work:
                yield WaitUntil(comp.local_time + period)
                yield Send("tick", 1)

        def busy_sink(comp):
            while True:
                yield Receive("in")

        ticker = FunctionComponent("busy", busy, ports={"tick": "out"})
        sink = FunctionComponent("busysink", busy_sink, ports={"in": "in"})
        ss_cons.add(ticker)
        ss_cons.add(sink)
        ss_cons.wire("busyline", ticker.port("tick"), sink.port("in"))

    channel = cosim.connect(ss_prod, ss_cons, mode=mode, delay=channel_delay)
    channel.split_net(ss_prod.wire("stream", producer.port("out")),
                      ss_cons.wire("stream", consumer.port("in")))
    return cosim


def ring_of_pairs(subsystem_count: int, messages_each: int,
                  *, period: float = 1.0) -> CoSimulation:
    """A chain of subsystems, each streaming to the next (no long cycles,
    honouring the simple-cycle topology rule)."""
    cosim = CoSimulation()
    subsystems = []
    for index in range(subsystem_count):
        node = cosim.add_node(f"n{index}")
        subsystems.append(cosim.add_subsystem(node, f"ss{index:02d}"))

    def relay(last: bool):
        def behave(comp):
            comp.seen = 0
            while True:
                t, value = yield Receive("in")
                comp.seen += 1
                if not last:
                    yield Advance(period / 10)
                    yield Send("out", value)
        return behave

    def source(comp):
        for index in range(messages_each):
            yield Advance(period)
            yield Send("out", index)

    head = FunctionComponent("c0", source, ports={"out": "out"})
    subsystems[0].add(head)
    previous_port = head.port("out")
    previous_ss = subsystems[0]
    for index in range(1, subsystem_count):
        last = index == subsystem_count - 1
        ports = {"in": "in"} if last else {"in": "in", "out": "out"}
        comp = FunctionComponent(f"c{index}", relay(last), ports=ports)
        subsystems[index].add(comp)
        channel = cosim.connect(previous_ss, subsystems[index])
        channel.split_net(
            previous_ss.wire(f"w{index}", previous_port),
            subsystems[index].wire(f"w{index}", comp.port("in")))
        if not last:
            previous_port = comp.port("out")
        previous_ss = subsystems[index]
    return cosim
