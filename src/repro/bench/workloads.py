"""Reusable synthetic workloads for the ablation benchmarks."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.component import FunctionComponent
from ..core.process import Advance, Receive, Send, WaitUntil
from ..core.subsystem import Subsystem
from ..distributed.channel import ChannelMode
from ..distributed.executor import CoSimulation
from ..distributed.multiprocess import MultiprocessCoSimulation
from ..distributed.threaded import ThreadedCoSimulation
from ..transport.latency import SAME_HOST, LatencyModel


def streaming_pair(message_count: int, period: float, *,
                   mode: ChannelMode = ChannelMode.CONSERVATIVE,
                   consumer_work: float = 0.0,
                   snapshot_interval: Optional[float] = None,
                   network: LatencyModel = SAME_HOST,
                   channel_delay: float = 0.0) -> CoSimulation:
    """A producer streaming to a consumer across two nodes.

    ``consumer_work`` gives the consumer's subsystem private busy-work so
    that, under optimism, it runs ahead and stragglers occur (the consumer
    subsystem is named to be scheduled first).
    """
    cosim = CoSimulation(snapshot_interval=snapshot_interval)
    ss_cons = cosim.add_subsystem(cosim.add_node("n-cons"), "a-consumer")
    ss_prod = cosim.add_subsystem(cosim.add_node("n-prod"), "z-producer")
    cosim.set_link_model("n-cons", "n-prod", network)

    def produce(comp):
        for index in range(message_count):
            yield Advance(period)
            yield Send("out", index)

    def consume(comp):
        comp.received = []
        for __ in range(message_count):
            t, value = yield Receive("in")
            comp.received.append((t, value))

    producer = FunctionComponent("producer", produce, ports={"out": "out"})
    consumer = FunctionComponent("consumer", consume, ports={"in": "in"})
    ss_prod.add(producer)
    ss_cons.add(consumer)

    if consumer_work > 0:
        def busy(comp):
            while comp.local_time < consumer_work:
                yield WaitUntil(comp.local_time + period)
                yield Send("tick", 1)

        def busy_sink(comp):
            while True:
                yield Receive("in")

        ticker = FunctionComponent("busy", busy, ports={"tick": "out"})
        sink = FunctionComponent("busysink", busy_sink, ports={"in": "in"})
        ss_cons.add(ticker)
        ss_cons.add(sink)
        ss_cons.wire("busyline", ticker.port("tick"), sink.port("in"))

    channel = cosim.connect(ss_prod, ss_cons, mode=mode, delay=channel_delay)
    channel.split_net(ss_prod.wire("stream", producer.port("out")),
                      ss_cons.wire("stream", consumer.port("in")))
    return cosim


def ring_of_pairs(subsystem_count: int, messages_each: int,
                  *, period: float = 1.0) -> CoSimulation:
    """A chain of subsystems, each streaming to the next (no long cycles,
    honouring the simple-cycle topology rule)."""
    cosim = CoSimulation()
    subsystems = []
    for index in range(subsystem_count):
        node = cosim.add_node(f"n{index}")
        subsystems.append(cosim.add_subsystem(node, f"ss{index:02d}"))

    def relay(last: bool):
        def behave(comp):
            comp.seen = 0
            while True:
                t, value = yield Receive("in")
                comp.seen += 1
                if not last:
                    yield Advance(period / 10)
                    yield Send("out", value)
        return behave

    def source(comp):
        for index in range(messages_each):
            yield Advance(period)
            yield Send("out", index)

    head = FunctionComponent("c0", source, ports={"out": "out"})
    subsystems[0].add(head)
    previous_port = head.port("out")
    previous_ss = subsystems[0]
    for index in range(1, subsystem_count):
        last = index == subsystem_count - 1
        ports = {"in": "in"} if last else {"in": "in", "out": "out"}
        comp = FunctionComponent(f"c{index}", relay(last), ports=ports)
        subsystems[index].add(comp)
        channel = cosim.connect(previous_ss, subsystems[index])
        channel.split_net(
            previous_ss.wire(f"w{index}", previous_port),
            subsystems[index].wire(f"w{index}", comp.port("in")))
        if not last:
            previous_port = comp.port("out")
        previous_ss = subsystems[index]
    return cosim


# ----------------------------------------------------------------------
# The compute star: a GIL-escape workload (WubbleU word-level nodes).
#
# A hub fans a round index out to W workers; each worker grinds a
# pure-Python word-level checksum over its payload (the kind of
# instruction-set-level loop the paper's WubbleU processor model runs)
# and sends the digest back.  Virtual time and message structure depend
# only on (workers, rounds, period) — never on wall-clock — so every
# deployment mode must produce bit-identical virtual times and event
# counts, while wall-clock scales with how many checksum loops truly run
# in parallel.  Threads cannot parallelise the loops (one GIL);
# processes can.
#
# The factories take ``name`` first and are importable by dotted path,
# which is exactly the shape `MultiprocessCoSimulation` subsystem specs
# need to bootstrap a spawned worker process.
# ----------------------------------------------------------------------

def word_checksum(seed: int, words: int) -> int:
    """A deterministic 16-bit rolling checksum over ``words`` words —
    pure Python on purpose: it holds the GIL for its whole duration."""
    acc = seed & 0xFFFF
    for index in range(words):
        acc = (acc * 31 + (index & 0xFF) + 1) & 0xFFFF
    return acc


def make_compute_hub(name: str, *, workers: int, rounds: int,
                     period: float = 1.0) -> Subsystem:
    """The star's centre: fan out a round index, gather the digests."""

    def behave(comp):
        comp.totals = []
        for round_index in range(rounds):
            yield Advance(period)
            for k in range(workers):
                yield Send(f"go{k}", round_index)
            total = 0
            for k in range(workers):
                __, digest = yield Receive(f"done{k}")
                total = (total + digest) & 0xFFFFFFFF
            comp.totals.append(total)

    ports = {}
    for k in range(workers):
        ports[f"go{k}"] = "out"
        ports[f"done{k}"] = "in"
    hub = FunctionComponent("hub", behave, ports=ports)
    subsystem = Subsystem(name)
    subsystem.add(hub)
    for k in range(workers):
        subsystem.wire(f"go{k}", hub.port(f"go{k}"))
        subsystem.wire(f"done{k}", hub.port(f"done{k}"))
    return subsystem


def make_compute_worker(name: str, *, index: int, rounds: int, words: int,
                        period: float = 1.0) -> Subsystem:
    """One spoke: receive a round index, checksum ``words`` words, reply.

    Net names carry the spoke ``index`` so they pair with the hub's
    ``go{index}``/``done{index}`` halves.
    """

    def behave(comp):
        for __ in range(rounds):
            __, value = yield Receive("go")
            yield Send("done", word_checksum(value * 7919 + index, words))

    worker = FunctionComponent("worker", behave,
                               ports={"go": "in", "done": "out"})
    subsystem = Subsystem(name)
    subsystem.add(worker)
    subsystem.wire(f"go{index}", worker.port("go"))
    subsystem.wire(f"done{index}", worker.port("done"))
    return subsystem


def compute_star(worker_count: int, rounds: int, *, words: int = 4000,
                 period: float = 1.0, executor: str = "cosim",
                 batching: bool = True, **kwargs):
    """The star wired for a single-process executor: ``executor`` picks
    ``"cosim"`` (cooperative) or ``"threaded"``; extra ``kwargs`` (e.g.
    ``fault_plan``) pass through to the executor constructor."""
    if executor == "cosim":
        cosim = CoSimulation(batching=batching, **kwargs)
    elif executor == "threaded":
        cosim = ThreadedCoSimulation(batching=batching, **kwargs)
    else:
        raise ValueError(f"unknown executor {executor!r}: "
                         "use 'cosim' or 'threaded'")
    hub = cosim.add_subsystem(
        cosim.add_node("n-hub"),
        make_compute_hub("hub", workers=worker_count, rounds=rounds,
                         period=period))
    for k in range(worker_count):
        spoke = cosim.add_subsystem(
            cosim.add_node(f"n-w{k}"),
            make_compute_worker(f"w{k}", index=k, rounds=rounds,
                                words=words, period=period))
        channel = cosim.connect(hub, spoke, delay=period / 4)
        channel.split_net(hub.nets[f"go{k}"], spoke.nets[f"go{k}"])
        channel.split_net(hub.nets[f"done{k}"], spoke.nets[f"done{k}"])
    return cosim


def compute_star_multiprocess(worker_count: int, rounds: int, *,
                              words: int = 4000, period: float = 1.0,
                              **kwargs) -> MultiprocessCoSimulation:
    """The same star as :func:`compute_star`, declared as picklable specs
    for the process-per-node deployment (extra ``kwargs`` pass through to
    :class:`MultiprocessCoSimulation`)."""
    cosim = MultiprocessCoSimulation(**kwargs)
    cosim.add_node("n-hub")
    cosim.add_subsystem("n-hub", "hub",
                        "repro.bench.workloads:make_compute_hub",
                        workers=worker_count, rounds=rounds, period=period)
    for k in range(worker_count):
        cosim.add_node(f"n-w{k}")
        cosim.add_subsystem(f"n-w{k}", f"w{k}",
                            "repro.bench.workloads:make_compute_worker",
                            index=k, rounds=rounds, words=words,
                            period=period)
        cosim.connect("hub", f"w{k}", delay=period / 4,
                      nets=(f"go{k}", f"done{k}"))
    return cosim
