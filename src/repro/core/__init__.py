"""Pia's single-host co-simulation kernel (paper section 2.1).

The public surface of the kernel: components, ports, nets, interfaces,
the subsystem scheduler with its two-level virtual time, checkpointing,
synchronous-address machinery, and detail-level (run-level) switching.
"""

from .checkpoint import (
    CheckpointImage,
    CheckpointStore,
    IncrementalCheckpointStore,
    capture,
    reinstate,
)
from .component import (
    DEFAULT_LEVEL,
    Component,
    ComponentSnapshot,
    FunctionComponent,
    ProcessComponent,
    ReactiveComponent,
)
from .errors import (
    CausalityError,
    CheckpointError,
    ConfigurationError,
    ConsistencyViolation,
    DeadlockError,
    HardwareStubError,
    LinkDown,
    LoaderError,
    NodeFailure,
    NoSuchCheckpointError,
    PiaError,
    ProtocolError,
    RemoteCallError,
    RunLevelError,
    SimulationError,
    SwitchpointSyntaxError,
    TopologyError,
    TransportError,
)
from .events import Event, EventKind, EventQueue
from .interface import Interface
from .net import Net
from .port import Port, PortDirection
from .process import (
    Advance,
    Command,
    Receive,
    ReceiveTransfer,
    SaveCheckpoint,
    Send,
    SwitchLevel,
    Sync,
    Transfer,
    TryReceive,
    WaitUntil,
)
from .runlevel import (
    DetailSlider,
    Switchpoint,
    SwitchpointEnvironment,
    SwitchpointManager,
    parse_switchpoint,
)
from .runcontrol import RunControl
from .runcontrol import load as load_run_control
from .runcontrol import parse as parse_run_control
from .scheduler import Scheduler
from .simulator import Simulator
from .subsystem import Subsystem
from .sync import SyncPolicy, SyncTable
from .timestamp import (
    FOREVER,
    PRIORITY_CONTROL,
    PRIORITY_INTERRUPT,
    PRIORITY_SIGNAL,
    PRIORITY_WAKE,
    ZERO,
    Timestamp,
    earliest,
)

__all__ = [
    "Advance", "CausalityError", "CheckpointError", "CheckpointImage",
    "CheckpointStore", "Command", "Component", "ComponentSnapshot",
    "ConfigurationError", "ConsistencyViolation", "DEFAULT_LEVEL",
    "DeadlockError", "DetailSlider", "Event", "EventKind", "EventQueue",
    "FOREVER", "FunctionComponent", "HardwareStubError",
    "IncrementalCheckpointStore", "Interface", "LinkDown", "LoaderError",
    "Net", "NodeFailure", "RemoteCallError",
    "NoSuchCheckpointError", "PiaError", "Port", "PortDirection",
    "PRIORITY_CONTROL", "PRIORITY_INTERRUPT", "PRIORITY_SIGNAL",
    "PRIORITY_WAKE", "ProcessComponent", "ProtocolError",
    "ReactiveComponent", "Receive", "ReceiveTransfer", "RunLevelError",
    "SaveCheckpoint", "Scheduler", "Send", "SimulationError", "Simulator",
    "Subsystem", "Switchpoint", "SwitchpointEnvironment",
    "SwitchpointManager", "SwitchpointSyntaxError", "SwitchLevel", "Sync",
    "SyncPolicy", "SyncTable", "Timestamp", "TopologyError", "Transfer", "TryReceive",
    "TransportError", "WaitUntil", "ZERO", "capture", "earliest",
    "RunControl", "load_run_control", "parse_run_control",
    "parse_switchpoint", "reinstate",
]
