"""Checkpoint and restore facilities (paper section 2.1.2).

A :class:`CheckpointImage` captures a whole subsystem: virtual time, the
pending event queue, every component image and every net's last value.  The
paper's rule — *each component saves a checkpoint before receiving any
messages after a checkpoint request* — prevents the domino effect [13]; in
this implementation component activations are atomic (run-to-block), so a
checkpoint taken between event dispatches is automatically at such a
boundary for every component at once.

:class:`IncrementalCheckpointStore` implements the paper's planned future
work: images after the first store only what changed (attribute diffs and
replay-log suffixes), and restores reconstruct the full image by walking
the chain from the last full checkpoint.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..observability import NULL_TELEMETRY, TraceKind
from .component import ComponentSnapshot
from .errors import CheckpointError, NoSuchCheckpointError
from .events import Event
from .fastcopy import is_immutable, smart_copy

if TYPE_CHECKING:  # pragma: no cover
    from .subsystem import Subsystem


def _measure(obj: Any) -> int:
    """Pickled size of ``obj``, falling back to ``repr`` for live objects."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return len(repr(obj).encode())


def _snapshot_content(snap: "ComponentSnapshot") -> tuple:
    """The persistable data content of one component snapshot."""
    return ((snap.name, snap.local_time, snap.runlevel, snap.finished),
            snap.attrs, snap.port_buffers, snap.interface_states, snap.extra)


def _measure_snapshot(snap: "ComponentSnapshot") -> int:
    return sum(_measure(piece) for piece in _snapshot_content(snap))


def _event_content(event: Event) -> tuple:
    """The persistable data content of one queued event (the target is a
    live object a real persistence layer would encode as a name)."""
    return (event.ts, event.kind.value, event.payload, event.token)


@dataclass
class NetState:
    value: Any
    last_change: float
    posts: int


@dataclass
class CheckpointImage:
    """A restorable full image of one subsystem."""

    checkpoint_id: int
    label: Optional[str]
    time: float
    events: list[Event] = field(default_factory=list)
    components: dict[str, ComponentSnapshot] = field(default_factory=dict)
    nets: dict[str, NetState] = field(default_factory=dict)
    #: Whether the subsystem had started when the image was taken.
    started: bool = True
    #: Scheduler dispatch/stall counters at capture time.  Restored on
    #: reinstate so post-rollback (and post-migration) runs report the
    #: same dispatch totals as an uninterrupted run.
    dispatched: int = 0
    stalls: int = 0
    #: Cached :meth:`storage_bytes` result — an image never changes after
    #: capture, so its size is measured at most once.
    _storage_bytes: Optional[int] = field(
        default=None, repr=False, compare=False)

    def storage_bytes(self) -> int:
        """Approximate persisted size, for the incremental-checkpoint study.

        Event targets and component back-references are live objects that a
        real persistence layer would encode as names, so only the data
        content is measured.  The whole image is pickled in one pass (not
        once per piece) and the result cached per image.
        """
        if self._storage_bytes is None:
            content = (self.time,
                       [_event_content(e) for e in self.events],
                       [_snapshot_content(snap)
                        for snap in self.components.values()],
                       self.nets)
            try:
                self._storage_bytes = len(pickle.dumps(
                    content, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                # Some piece holds a live object pickle rejects; fall back
                # to per-piece measurement with its repr() escape hatch.
                self._storage_bytes = (
                    _measure(self.time)
                    + sum(_measure(_event_content(e)) for e in self.events)
                    + sum(_measure_snapshot(snap)
                          for snap in self.components.values())
                    + _measure(self.nets))
        return self._storage_bytes


def capture(subsystem: "Subsystem", checkpoint_id: int,
            label: Optional[str] = None) -> CheckpointImage:
    """Snapshot ``subsystem`` into a :class:`CheckpointImage`."""
    image = CheckpointImage(checkpoint_id, label, subsystem.scheduler.now,
                            started=subsystem._started,
                            dispatched=subsystem.scheduler.dispatched,
                            stalls=subsystem.scheduler.stalls)
    image.events = [
        Event(evt.ts, evt.kind, evt.target, smart_copy(evt.payload), evt.token)
        for evt in subsystem.scheduler.queue.snapshot()
    ]
    for name, component in subsystem.components.items():
        image.components[name] = component.snapshot()
    for name, net in subsystem.nets.items():
        image.nets[name] = NetState(smart_copy(net.value),
                                    net.last_change, net.posts)
    return image


def reinstate(subsystem: "Subsystem", image: CheckpointImage) -> None:
    """Roll ``subsystem`` back to ``image``."""
    subsystem.scheduler.now = image.time
    subsystem._started = image.started
    subsystem.scheduler.dispatched = image.dispatched
    subsystem.scheduler.stalls = image.stalls
    subsystem.scheduler.queue.restore([
        Event(evt.ts, evt.kind, evt.target, smart_copy(evt.payload), evt.token)
        for evt in image.events
    ])
    for name, snap in image.components.items():
        try:
            component = subsystem.components[name]
        except KeyError:
            raise CheckpointError(
                f"checkpoint references unknown component {name!r}") from None
        component.restore(snap)
    for name, state in image.nets.items():
        net = subsystem.nets[name]
        net.value = smart_copy(state.value)
        net.last_change = state.last_change
        net.posts = state.posts


class CheckpointStore:
    """Keeps full checkpoint images for one subsystem."""

    def __init__(self, *, keep_last: Optional[int] = None) -> None:
        self._images: dict[int, CheckpointImage] = {}
        self._order: list[int] = []
        self._ids = itertools.count(1)
        self.keep_last = keep_last
        #: Telemetry sink (attached via Subsystem.attach_telemetry).
        self.telemetry = NULL_TELEMETRY

    def __len__(self) -> int:
        return len(self._order)

    def ids(self) -> list[int]:
        return list(self._order)

    def take(self, subsystem: "Subsystem", *, label: Optional[str] = None,
             checkpoint_id: Optional[int] = None) -> int:
        cid = checkpoint_id if checkpoint_id is not None else next(self._ids)
        if cid in self._images:
            # Chandy-Lamport marks may race a locally generated request with
            # the same identifier; the first save wins (paper section 2.2.3).
            return cid
        self._images[cid] = self._store(subsystem, cid, label)
        self._order.append(cid)
        self._prune()
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("checkpoint.saves")
            telemetry.trace(TraceKind.CHECKPOINT_SAVE,
                            time=subsystem.scheduler.now,
                            subject=subsystem.name,
                            checkpoint_id=cid, label=label)
        return cid

    def restore(self, subsystem: "Subsystem", checkpoint_id: int) -> CheckpointImage:
        image = self.image(checkpoint_id)
        rewound_from = subsystem.scheduler.now
        reinstate(subsystem, image)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("checkpoint.restores")
            telemetry.trace(TraceKind.CHECKPOINT_RESTORE, time=image.time,
                            subject=subsystem.name,
                            checkpoint_id=checkpoint_id,
                            rewound_from=rewound_from)
        return image

    def image(self, checkpoint_id: int) -> CheckpointImage:
        try:
            return self._load(checkpoint_id)
        except KeyError:
            raise NoSuchCheckpointError(
                f"no checkpoint with id {checkpoint_id}") from None

    def latest(self) -> Optional[int]:
        return self._order[-1] if self._order else None

    def latest_at_or_before(self, time: float) -> Optional[int]:
        """The most recent checkpoint whose time is ``<= time``."""
        best = None
        for cid in self._order:
            if self._images[cid].time <= time:
                if best is None or self._images[cid].time >= self._images[best].time:
                    best = cid
        return best

    def latest_for_component(self, name: str, local_time: float
                             ) -> Optional[int]:
        """The most recent checkpoint in which component ``name`` had not
        yet passed ``local_time``.

        This is the rewind target for consistency violations: a component
        may have run far ahead of subsystem time, so the subsystem-time
        criterion of :meth:`latest_at_or_before` is not enough — the image
        must predate the component's own offending access.
        """
        best = None
        best_time = None
        for cid in self._order:
            image = self._load(cid)
            snap = image.components.get(name)
            if snap is None or snap.local_time > local_time:
                continue
            if best is None or image.time >= best_time:
                best = cid
                best_time = image.time
        return best

    def storage_bytes(self) -> int:
        return sum(image.storage_bytes() for image in self._images.values())

    def _prune(self) -> None:
        if self.keep_last is None:
            return
        while len(self._order) > self.keep_last:
            dropped = self._order.pop(0)
            del self._images[dropped]

    # hooks for the incremental subclass -------------------------------
    def _store(self, subsystem: "Subsystem", cid: int,
               label: Optional[str]) -> CheckpointImage:
        return capture(subsystem, cid, label)

    def _load(self, checkpoint_id: int) -> CheckpointImage:
        return self._images[checkpoint_id]


@dataclass
class _DeltaImage:
    """What changed in one component since the previous image."""

    changed_attrs: dict = field(default_factory=dict)
    removed_attrs: list = field(default_factory=list)
    log_extension: list = field(default_factory=list)
    local_time: float = 0.0
    runlevel: str = ""
    finished: bool = False
    port_buffers: dict = field(default_factory=dict)
    interface_states: dict = field(default_factory=dict)
    extra_scalars: dict = field(default_factory=dict)


@dataclass
class _IncrementalRecord:
    checkpoint_id: int
    label: Optional[str]
    time: float
    base_id: Optional[int]          # None => full image
    full: Optional[CheckpointImage]
    events: list = field(default_factory=list)
    nets: dict = field(default_factory=dict)
    deltas: dict = field(default_factory=dict)
    started: bool = True
    dispatched: int = 0
    stalls: int = 0
    _storage_bytes: Optional[int] = field(
        default=None, repr=False, compare=False)

    def storage_bytes(self) -> int:
        if self.full is not None:
            return self.full.storage_bytes()
        if self._storage_bytes is None:
            content = ((self.checkpoint_id, self.label, self.time,
                        self.base_id),
                       [_event_content(e) for e in self.events],
                       self.nets,
                       list(self.deltas.values()))
            try:
                self._storage_bytes = len(pickle.dumps(
                    content, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                self._storage_bytes = (
                    _measure(content[0])
                    + sum(_measure(_event_content(e)) for e in self.events)
                    + _measure(self.nets)
                    + sum(_measure(delta)
                          for delta in self.deltas.values()))
        return self._storage_bytes


class IncrementalCheckpointStore(CheckpointStore):
    """Stores diffs against the previous checkpoint (paper future work).

    Every ``full_every``-th checkpoint is stored whole; the rest keep only
    per-component attribute diffs and replay-log suffixes.  The event queue
    and net values are always stored whole (they are small and churn
    completely between checkpoints).
    """

    def __init__(self, *, full_every: int = 8,
                 keep_last: Optional[int] = None) -> None:
        super().__init__(keep_last=None)   # pruning would break diff chains
        if keep_last is not None:
            raise CheckpointError(
                "IncrementalCheckpointStore cannot prune (diff chains)")
        if full_every < 1:
            raise CheckpointError("full_every must be >= 1")
        self.full_every = full_every
        self._records: dict[int, _IncrementalRecord] = {}
        self._since_full = 0

    def _store(self, subsystem: "Subsystem", cid: int,
               label: Optional[str]) -> CheckpointImage:
        image = capture(subsystem, cid, label)
        previous = self._order[-1] if self._order else None
        if previous is None or self._since_full >= self.full_every - 1:
            self._records[cid] = _IncrementalRecord(
                cid, label, image.time, base_id=None, full=image)
            self._since_full = 0
        else:
            base = self._load(previous)
            self._records[cid] = self._diff(base, image, cid, label)
            self._since_full += 1
        return image

    def _load(self, checkpoint_id: int) -> CheckpointImage:
        record = self._records[checkpoint_id]
        if record.base_id is None:
            assert record.full is not None
            return record.full
        base = self._load(record.base_id)
        return self._apply(base, record)

    def storage_bytes(self) -> int:
        return sum(record.storage_bytes() for record in self._records.values())

    # ------------------------------------------------------------------
    @staticmethod
    def _diff(base: CheckpointImage, image: CheckpointImage, cid: int,
              label: Optional[str]) -> _IncrementalRecord:
        record = _IncrementalRecord(cid, label, image.time, base_id=base.checkpoint_id,
                                    full=None, events=image.events,
                                    nets=image.nets, started=image.started,
                                    dispatched=image.dispatched,
                                    stalls=image.stalls)
        for name, snap in image.components.items():
            old = base.components.get(name)
            delta = _DeltaImage(local_time=snap.local_time,
                                runlevel=snap.runlevel,
                                finished=snap.finished,
                                port_buffers=snap.port_buffers,
                                interface_states=snap.interface_states)
            old_attrs = old.attrs if old is not None else {}
            for key, value in snap.attrs.items():
                if key not in old_attrs or not _same(old_attrs[key], value):
                    delta.changed_attrs[key] = value
            delta.removed_attrs = [key for key in old_attrs
                                   if key not in snap.attrs]
            old_log = old.extra.get("log", []) if old is not None else []
            new_log = snap.extra.get("log", [])
            if new_log[:len(old_log)] == old_log:
                delta.log_extension = new_log[len(old_log):]
            else:   # log diverged (rollback in between): store whole
                delta.log_extension = new_log
                delta.extra_scalars["log_reset"] = True
            old_extra = old.extra if old is not None else {}
            for key, value in snap.extra.items():
                if key == "log":
                    continue
                if key not in old_extra or not _same(old_extra[key], value):
                    delta.extra_scalars[key] = value
            record.deltas[name] = delta
        return record

    @staticmethod
    def _apply(base: CheckpointImage, record: _IncrementalRecord) -> CheckpointImage:
        image = CheckpointImage(record.checkpoint_id, record.label, record.time,
                                events=record.events, nets=record.nets,
                                started=record.started,
                                dispatched=record.dispatched,
                                stalls=record.stalls)
        for name, delta in record.deltas.items():
            old = base.components.get(name)
            attrs = dict(old.attrs) if old is not None else {}
            attrs.update(delta.changed_attrs)
            for key in delta.removed_attrs:
                attrs.pop(key, None)
            old_log = old.extra.get("log", []) if old is not None else []
            if delta.extra_scalars.get("log_reset"):
                log = list(delta.log_extension)
            else:
                log = list(old_log) + list(delta.log_extension)
            extra = {key: value for key, value in old.extra.items()
                     if key != "log"} if old is not None else {}
            extra.update({key: value for key, value in
                          delta.extra_scalars.items() if key != "log_reset"})
            extra["log"] = log
            image.components[name] = ComponentSnapshot(
                name=name,
                local_time=delta.local_time,
                runlevel=delta.runlevel,
                finished=delta.finished,
                attrs=attrs,
                port_buffers=delta.port_buffers,
                interface_states=delta.interface_states,
                extra=extra,
            )
        return image


def _same(a: Any, b: Any) -> bool:
    """Structural equality that tolerates objects without ``__eq__``."""
    if a is b:
        return True
    if is_immutable(a) and is_immutable(b):
        # Builtin immutables have trustworthy __eq__; a False answer is
        # final, no need to compare pickles.
        try:
            return bool(a == b)
        except Exception:
            return False
    try:
        if a == b:
            return True
    except Exception:
        pass
    try:
        return pickle.dumps(a) == pickle.dumps(b)
    except Exception:
        return False
