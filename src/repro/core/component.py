"""Components: containers of behaviour in a Pia simulation.

The paper's object model (section 2.1): *components* hold basic
functionality (embedded processors running programs, ASICs, FPGAs),
*interfaces* connect components to *ports*, and ports are interconnected
through *nets*.

Two behavioural styles are provided, both of which appear in the paper:

:class:`ReactiveComponent`
    Event-handler style, for reactive/polling hardware models.  All state
    lives in instance attributes, so a checkpoint is a deep copy.

:class:`ProcessComponent`
    Sequential-software style: the behaviour is a generator yielding the
    commands of :mod:`repro.core.process`.  Generator frames cannot be
    copied, so checkpoints are taken by *deterministic replay*: the
    component records every value fed into its generator and, on restore,
    re-executes the behaviour against that log with side effects
    suppressed.  This matches the paper's restore-and-reexecute semantics
    (section 2.1.2) and requires behaviours to be deterministic functions
    of their received values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from .errors import CheckpointError, ConfigurationError, SimulationError
from .events import Event, EventKind
from .fastcopy import smart_copy_dict, smart_copy_list
from .port import Port, PortDirection
from .process import (
    Advance,
    BlockInfo,
    Command,
    Receive,
    ReceiveTransfer,
    SaveCheckpoint,
    Send,
    SwitchLevel,
    Sync,
    Transfer,
    TryReceive,
    WaitUntil,
)
from .timestamp import PRIORITY_CONTROL, PRIORITY_WAKE, Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from .interface import Interface
    from .subsystem import Subsystem

#: The detail level every component starts at.
DEFAULT_LEVEL = "default"


@dataclass
class ComponentSnapshot:
    """A restorable image of one component (paper section 2.1.2)."""

    name: str
    local_time: float
    runlevel: str
    finished: bool
    attrs: dict = field(default_factory=dict)
    port_buffers: dict = field(default_factory=dict)
    interface_states: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


class Component:
    """Base class: naming, wiring, local virtual time, checkpoint plumbing.

    Subclasses must set all *framework* attributes in ``__init__`` before
    calling :meth:`_seal_infra`; every attribute assigned afterwards is
    considered *user state* and participates in checkpoints.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.subsystem: "Optional[Subsystem]" = None
        self.local_time = 0.0
        self.runlevel = DEFAULT_LEVEL
        self.finished = False
        self.ports: dict[str, Port] = {}
        self.interfaces: dict[str, "Interface"] = {}
        #: Deterministic per-component RNG for behaviours that need noise.
        self.rng = random.Random(self._rng_seed())
        self._wake_seq = 0
        self._pending_checkpoint: Optional[object] = None
        self._infra_keys: set[str] = set()
        self._seal_infra()

    def _rng_seed(self) -> int:
        return hash(self.name) & 0x7FFFFFFF

    def _seal_infra(self) -> None:
        """Record the current attribute set as framework-internal."""
        self._infra_keys = set(self.__dict__.keys()) | {"_infra_keys"}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_port(self, name: str, direction: PortDirection = PortDirection.INOUT,
                 *, hidden: bool = False) -> Port:
        if name in self.ports:
            raise ConfigurationError(f"{self.name}: duplicate port {name}")
        port = Port(name, direction, owner=self, hidden=hidden)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise ConfigurationError(f"{self.name}: no port named {name!r}") from None

    def add_interface(self, interface: "Interface") -> "Interface":
        if interface.name in self.interfaces:
            raise ConfigurationError(
                f"{self.name}: duplicate interface {interface.name}")
        interface.bind(self)
        self.interfaces[interface.name] = interface
        return interface

    def interface(self, name: str) -> "Interface":
        try:
            return self.interfaces[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no interface named {name!r}") from None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """This component's local virtual time (alias of ``local_time``)."""
        return self.local_time

    @property
    def system_time(self) -> float:
        """The owning subsystem's virtual time (paper: *system time*)."""
        if self.subsystem is None:
            return 0.0
        return self.subsystem.scheduler.now

    # ------------------------------------------------------------------
    # scheduler entry points
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once when the simulation begins."""

    def deliver(self, event: Event) -> None:
        """Called by the scheduler for every event targeting this component."""
        raise NotImplementedError

    def is_blocked(self) -> bool:
        """Whether the component is paused waiting for input or a wake-up."""
        return False

    def _schedule_wake(self, at_time: float, payload: Any = None) -> int:
        """Enqueue a WAKE event for this component; returns its token."""
        token = self._wake_seq
        self._wake_seq += 1
        assert self.subsystem is not None
        self.subsystem.scheduler.schedule(
            Event(Timestamp(at_time, PRIORITY_WAKE), EventKind.WAKE,
                  target=self, payload=payload, token=token))
        return token

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _user_attrs(self) -> dict:
        return {key: value for key, value in self.__dict__.items()
                if key not in self._infra_keys}

    def snapshot(self) -> ComponentSnapshot:
        """Capture a restorable image of this component."""
        snap = ComponentSnapshot(
            name=self.name,
            local_time=self.local_time,
            runlevel=self.runlevel,
            finished=self.finished,
            attrs=smart_copy_dict(self._user_attrs()),
            port_buffers={name: list(port.buffer)
                          for name, port in self.ports.items()},
            interface_states={name: iface.snapshot_state()
                              for name, iface in self.interfaces.items()},
        )
        snap.extra["wake_seq"] = self._wake_seq
        snap.extra["rng_state"] = self.rng.getstate()
        return snap

    def restore(self, snap: ComponentSnapshot) -> None:
        """Reinstate the state captured by :meth:`snapshot`."""
        if snap.name != self.name:
            raise CheckpointError(
                f"snapshot of {snap.name!r} applied to {self.name!r}")
        self.local_time = snap.local_time
        self.runlevel = snap.runlevel
        self.finished = snap.finished
        for key in list(self._user_attrs()):
            del self.__dict__[key]
        self.__dict__.update(smart_copy_dict(snap.attrs))
        for name, contents in snap.port_buffers.items():
            port = self.ports[name]
            port.buffer.clear()
            port.buffer.extend(smart_copy_list(contents))
        for name, state in snap.interface_states.items():
            self.interfaces[name].restore_state(state)
        self._wake_seq = snap.extra["wake_seq"]
        self.rng.setstate(snap.extra["rng_state"])

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} @{self.local_time:g}>"


class ReactiveComponent(Component):
    """Event-handler style component.

    Subclasses override :meth:`on_event` (and optionally
    :meth:`on_interrupt`, :meth:`on_wake`, :meth:`on_transfer`,
    :meth:`on_start`).  Handlers run at the triggering event's virtual time
    and may advance local time, send values, perform protocol transfers and
    schedule wake-ups.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._seal_infra()

    # -- hooks ---------------------------------------------------------
    def on_start(self) -> None:
        """Called once at simulation start."""

    def on_event(self, port: str, time: float, value: Any) -> None:
        """Called for every value delivered to one of this component's ports."""

    def on_interrupt(self, port: str, time: float, value: Any) -> None:
        """Called for interrupt deliveries; defaults to :meth:`on_event`."""
        self.on_event(port, time, value)

    def on_wake(self, time: float, payload: Any) -> None:
        """Called when a wake-up scheduled via :meth:`wake_at` fires."""

    def on_transfer(self, interface: str, time: float, payload: Any) -> None:
        """Called when a complete protocol transfer has been reassembled."""

    # -- actions usable from hooks --------------------------------------
    def advance(self, dt: float) -> None:
        """Consume ``dt`` seconds of local virtual time."""
        if dt < 0:
            raise SimulationError(f"{self.name}: negative advance {dt}")
        self.local_time += dt

    def send(self, port: str, value: Any, delay: float = 0.0) -> None:
        """Drive ``value`` on ``port`` at ``local_time + delay``."""
        self.port(port).drive(value, self.local_time + delay)

    def transfer(self, interface: str, payload: Any) -> float:
        """Run one protocol transfer; returns its duration in seconds."""
        iface = self.interface(interface)
        return iface.emit(payload, self.local_time, advance=self.advance)

    def wake_at(self, time: float, payload: Any = None) -> None:
        """Request :meth:`on_wake` at virtual ``time``."""
        self._schedule_wake(max(time, self.local_time), payload)

    def wake_after(self, delay: float, payload: Any = None) -> None:
        self.wake_at(self.local_time + delay, payload)

    # -- scheduler entry points -----------------------------------------
    def start(self) -> None:
        self.on_start()

    def deliver(self, event: Event) -> None:
        time = event.time
        if event.kind is EventKind.WAKE:
            self.local_time = max(self.local_time, time)
            self.on_wake(time, event.payload)
            return
        port: Port = event.target
        self.local_time = max(self.local_time, time)
        iface = self._interface_for(port)
        if iface is not None:
            done = iface.absorb(time, event.payload)
            if done is not None:
                self.on_transfer(iface.name, time, done)
            return
        if event.kind is EventKind.INTERRUPT:
            self.on_interrupt(port.name, time, event.payload)
        else:
            self.on_event(port.name, time, event.payload)

    def _interface_for(self, port: Port) -> "Optional[Interface]":
        for iface in self.interfaces.values():
            if iface.in_port is port:
                return iface
        return None


class ProcessComponent(Component):
    """Sequential behaviour expressed as a generator of commands.

    Subclasses implement :meth:`run` — typically the embedded software
    itself, with basic-block timing estimates embedded as
    :class:`~repro.core.process.Advance` commands, exactly as the paper
    embeds estimates in the Java source (section 2.1).
    """

    #: Log-entry kinds recorded for replay-based checkpointing.
    _LOG_KINDS = ("receive", "transfer", "wake", "transfer_out")

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._gen: Optional[Iterator[Command]] = None
        self._gen_started = False
        self._block: Optional[BlockInfo] = None
        self._log: list[tuple[str, Any]] = []
        self._replay: Optional[Iterator[tuple[str, Any]]] = None
        self._seal_infra()

    # -- behaviour -------------------------------------------------------
    def run(self) -> Iterator[Command]:
        """The component's behaviour; override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def on_interrupt(self, port: str, time: float, value: Any) -> None:
        """Asynchronous interrupt hook; runs at the interrupt's time.

        State touched here must live in instance attributes (it is restored
        from the attribute snapshot on rollback, not recomputed by replay).
        """

    # -- scheduler entry points -------------------------------------------
    def start(self) -> None:
        self._gen = self.run()
        self._gen_started = False
        self._engine(None)

    def is_blocked(self) -> bool:
        return self._block is not None and not self.finished

    def deliver(self, event: Event) -> None:
        time = event.time
        if event.kind is EventKind.WAKE:
            if (self._block is not None and self._block.kind == "wake"
                    and self._block.token == event.token):
                self._block = None
                resumed = max(self.local_time, time)
                self.local_time = resumed
                self._log.append(("wake", resumed))
                self._engine(resumed)
            return
        port: Port = event.target
        port.deliver(time, event.payload)
        if event.kind is EventKind.INTERRUPT:
            self.on_interrupt(port.name, time, event.payload)
        self._try_resume(port)

    def _try_resume(self, port: Port) -> None:
        """Resume the generator if the delivery satisfied its block."""
        block = self._block
        if block is None:
            return
        if block.kind == "receive" and block.port == port.name:
            if port.has_data():
                time, value = port.pop_earliest()
                self.local_time = max(self.local_time, time)
                result = (self.local_time, value)
                self._log.append(("receive", result))
                self._block = None
                self._engine(result)
        elif block.kind == "transfer":
            iface = self.interfaces[block.interface]
            if iface.in_port is port and port.has_data():
                while port.has_data():
                    time, chunk = port.pop_earliest()
                    self.local_time = max(self.local_time, time)
                    payload = iface.absorb(time, chunk)
                    if payload is not None:
                        result = (self.local_time, payload)
                        self._log.append(("transfer", result))
                        self._block = None
                        self._engine(result)
                        return

    # -- the command engine -------------------------------------------------
    def _engine(self, resume_value: Any) -> None:
        """Run the generator until it blocks or finishes."""
        assert self._gen is not None
        value = resume_value
        while True:
            try:
                if self._gen_started:
                    cmd = self._gen.send(value)
                else:
                    self._gen_started = True
                    cmd = next(self._gen)
            except StopIteration:
                self.finished = True
                self._block = None
                return
            value = self._execute(cmd)
            if value is _BLOCKED:
                return

    def _execute(self, cmd: Command) -> Any:
        """Execute one command; returns the resume value or ``_BLOCKED``."""
        replaying = self._replay is not None
        if isinstance(cmd, Advance):
            if cmd.dt < 0:
                raise SimulationError(f"{self.name}: negative advance {cmd.dt}")
            self.local_time += cmd.dt
            return None
        if isinstance(cmd, Send):
            if not replaying:
                self.port(cmd.port).drive(cmd.value, self.local_time + cmd.delay)
            return None
        if isinstance(cmd, Transfer):
            if replaying:
                kind, dt = self._replay_next("transfer_out")
                self.local_time += dt
            else:
                iface = self.interface(cmd.interface)
                before = self.local_time
                iface.emit(cmd.payload, self.local_time, advance=self._advance_raw)
                self._log.append(("transfer_out", self.local_time - before))
            return None
        if isinstance(cmd, SwitchLevel):
            if not replaying:
                self._apply_switch(cmd)
            return None
        if isinstance(cmd, SaveCheckpoint):
            if not replaying and self.subsystem is not None:
                # The save must not capture this component mid-activation
                # (its generator frame sits between commands and cannot be
                # replayed to).  Defer to the next scheduler boundary — the
                # paper's "earliest local time possible after the request".
                scheduler = self.subsystem.scheduler
                subsystem = self.subsystem
                label = cmd.label
                scheduler.schedule(Event(
                    Timestamp(scheduler.now, PRIORITY_CONTROL),
                    EventKind.CONTROL,
                    target=lambda event: subsystem.request_checkpoint(
                        label=label)))
            return None
        if isinstance(cmd, Receive):
            return self._do_receive(cmd.port)
        if isinstance(cmd, TryReceive):
            return self._do_try_receive(cmd.port)
        if isinstance(cmd, ReceiveTransfer):
            return self._do_receive_transfer(cmd.interface)
        if isinstance(cmd, WaitUntil):
            return self._do_wait(max(cmd.time, self.local_time))
        if isinstance(cmd, Sync):
            return self._do_wait(self.local_time)
        return self._execute_extra(cmd)

    def _execute_extra(self, cmd: Command) -> Any:
        """Hook for subclasses adding commands (e.g. processor memory ops).

        Must return the resume value, ``_BLOCKED`` after establishing
        ``self._block``, and must keep the replay log consistent; see
        :mod:`repro.processor.software` for the canonical extension.
        """
        raise SimulationError(f"{self.name}: unknown command {cmd!r}")

    # helpers for _execute_extra implementations ---------------------------
    @property
    def replaying(self) -> bool:
        return self._replay is not None

    def log_append(self, kind: str, data: Any) -> None:
        self._log.append((kind, data))

    def replay_take(self, expected: str, *, allow_end: bool = False) -> Any:
        """Consume the next replay entry (must be ``expected``)."""
        return self._replay_next(expected, allow_end=allow_end)

    def replay_peek_kind(self) -> Optional[str]:
        """Kind of the next replay entry without consuming it, or ``None``."""
        assert self._replay is not None
        peeked = next(self._replay, None)
        if peeked is None:
            return None
        self._replay = _chain_front(peeked, self._replay)
        return peeked[0]

    def block_on_wait(self, at_time: float) -> Any:
        """Block like ``WaitUntil`` from an extension command."""
        return self._do_wait(max(at_time, self.local_time))

    def _advance_raw(self, dt: float) -> None:
        self.local_time += dt

    def _do_receive(self, port_name: str) -> Any:
        if self._replay is not None:
            entry = self._replay_next("receive", allow_end=True)
            if entry is _REPLAY_END:
                self._block = BlockInfo("receive", port=port_name)
                return _BLOCKED
            __, result = entry
            self.local_time = result[0]
            return result
        port = self.port(port_name)
        if port.has_data():
            time, value = port.pop_earliest()
            self.local_time = max(self.local_time, time)
            result = (self.local_time, value)
            self._log.append(("receive", result))
            return result
        self._block = BlockInfo("receive", port=port_name)
        return _BLOCKED

    def _do_try_receive(self, port_name: str) -> Any:
        if self._replay is not None:
            __, result = self._replay_next("tryreceive")
            if result is not None:
                self.local_time = max(self.local_time, result[0])
            return result
        port = self.port(port_name)
        if port.has_data():
            time, value = port.pop_earliest()
            self.local_time = max(self.local_time, time)
            result = (self.local_time, value)
        else:
            result = None
        self._log.append(("tryreceive", result))
        return result

    def _do_receive_transfer(self, iface_name: str) -> Any:
        if self._replay is not None:
            entry = self._replay_next("transfer", allow_end=True)
            if entry is _REPLAY_END:
                self._block = BlockInfo("transfer", interface=iface_name)
                return _BLOCKED
            __, result = entry
            self.local_time = result[0]
            return result
        iface = self.interface(iface_name)
        port = iface.in_port
        if port is None:
            raise ConfigurationError(
                f"{self.name}.{iface_name}: interface has no input port")
        while port.has_data():
            time, chunk = port.pop_earliest()
            self.local_time = max(self.local_time, time)
            payload = iface.absorb(time, chunk)
            if payload is not None:
                result = (self.local_time, payload)
                self._log.append(("transfer", result))
                return result
        self._block = BlockInfo("transfer", interface=iface_name)
        return _BLOCKED

    def _do_wait(self, at_time: float) -> Any:
        if self._replay is not None:
            entry = self._replay_next("wake", allow_end=True)
            if entry is _REPLAY_END:
                token = self._wake_seq
                self._wake_seq += 1
                self._block = BlockInfo("wake", token=token)
                return _BLOCKED
            __, resumed = entry
            self._wake_seq += 1
            self.local_time = resumed
            return resumed
        token = self._schedule_wake(at_time)
        self._block = BlockInfo("wake", token=token)
        return _BLOCKED

    def _apply_switch(self, cmd: SwitchLevel) -> None:
        assert self.subsystem is not None
        target = cmd.target if cmd.target is not None else self.name
        self.subsystem.set_runlevel(target, cmd.level)

    # -- replay-based checkpointing ------------------------------------------
    def _replay_next(self, expected: str, *, allow_end: bool = False) -> Any:
        assert self._replay is not None
        try:
            entry = next(self._replay)
        except StopIteration:
            if allow_end:
                return _REPLAY_END
            raise CheckpointError(
                f"{self.name}: replay log ended inside a non-blocking command"
            ) from None
        if entry[0] != expected:
            raise CheckpointError(
                f"{self.name}: nondeterministic behaviour — replay expected "
                f"{expected!r} but log holds {entry[0]!r}")
        return entry

    def snapshot(self) -> ComponentSnapshot:
        snap = super().snapshot()
        snap.extra["log"] = smart_copy_list(self._log)
        snap.extra["started"] = self._gen is not None
        snap.extra["block"] = self._block_descriptor()
        return snap

    def _block_descriptor(self) -> Optional[tuple]:
        if self._block is None:
            return None
        return (self._block.kind, self._block.port,
                self._block.interface, self._block.token)

    def restore(self, snap: ComponentSnapshot) -> None:
        log = smart_copy_list(snap.extra["log"])
        # Rebuild the generator frame by deterministic replay of the log.
        self.local_time = 0.0
        self.finished = False
        self._wake_seq = 0
        self.rng = random.Random(self._rng_seed())
        self._block = None
        self._log = log
        if snap.extra["started"]:
            self._gen = self.run()
            self._gen_started = False
            self._replay = iter(log)
            self._engine(None)
            leftovers = list(self._replay)
        else:
            self._gen = None
            self._gen_started = False
            leftovers = []
        self._replay = None
        if leftovers:
            raise CheckpointError(
                f"{self.name}: replay finished with {len(leftovers)} unconsumed "
                "log entries — behaviour is nondeterministic")
        if self._block_descriptor() != snap.extra["block"] \
                or self.finished != snap.finished:
            raise CheckpointError(
                f"{self.name}: replay ended at {self._block_descriptor()!r} "
                f"but the snapshot was taken at {snap.extra['block']!r} — "
                "behaviour is nondeterministic")
        # Attributes, buffers, interface state and clocks come from the image.
        super().restore(snap)
        if abs(self.local_time - snap.local_time) > 1e-12:
            raise CheckpointError(
                f"{self.name}: replay reproduced local time {self.local_time!r}"
                f" but snapshot recorded {snap.local_time!r}")


def _chain_front(item: Any, rest: Iterator) -> Iterator:
    """An iterator yielding ``item`` then everything from ``rest``."""
    yield item
    yield from rest


class _BlockedSentinel:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<blocked>"


class _ReplayEndSentinel:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<replay-end>"


_BLOCKED = _BlockedSentinel()
_REPLAY_END = _ReplayEndSentinel()

#: Public aliases for ``_execute_extra`` implementations in other packages.
BLOCKED = _BLOCKED
REPLAY_END = _REPLAY_END


class FunctionComponent(ProcessComponent):
    """A process component whose behaviour is a plain generator function.

    Convenient for tests and small examples::

        def blinker(comp):
            while True:
                yield Send("out", 1)
                yield Advance(0.5)

        sim.add(FunctionComponent("blink", blinker, ports={"out": "out"}))
    """

    def __init__(self, name: str,
                 behaviour: Callable[["FunctionComponent"], Iterator[Command]],
                 *, ports: Optional[dict[str, str]] = None) -> None:
        super().__init__(name)
        self._behaviour = behaviour
        self._seal_infra()
        for port_name, direction in (ports or {}).items():
            self.add_port(port_name, PortDirection(direction))

    def run(self) -> Iterator[Command]:
        return self._behaviour(self)
