"""Exception hierarchy for the Pia co-simulation framework.

Every error raised by the framework derives from :class:`PiaError` so that
callers can catch framework failures without masking programming errors in
their own component behaviours.
"""

from __future__ import annotations


class PiaError(Exception):
    """Base class for all framework errors."""


class SimulationError(PiaError):
    """A violation of the simulation semantics (causality, time order)."""


class CausalityError(SimulationError):
    """An event was scheduled or delivered in the past of its target."""


class ConsistencyViolation(SimulationError):
    """Optimistic execution read state that a later message invalidated.

    Carries enough information for the recovery machinery to mark the
    offending location synchronous and roll back (paper section 2.1.1).
    """

    def __init__(self, message: str, *, address: int | None = None,
                 violation_time: float | None = None,
                 component: str | None = None) -> None:
        super().__init__(message)
        self.address = address
        self.violation_time = violation_time
        #: Name of the component that consumed the stale value.  Recovery
        #: must rewind to an image where *its local time* precedes the
        #: violating write — a component may have run far ahead of the
        #: subsystem time at which the image was taken.
        self.component = component


class DeadlockError(SimulationError):
    """No subsystem can advance and no messages are in flight."""


class CheckpointError(PiaError):
    """Checkpoint or restore could not be performed."""


class NoSuchCheckpointError(CheckpointError):
    """A restore referenced a checkpoint id that was never taken."""


class ConfigurationError(PiaError):
    """The simulated system was wired together incorrectly."""


class TopologyError(ConfigurationError):
    """The subsystem interconnection graph violates the simple-cycle rule."""


class ProtocolError(PiaError):
    """A communication protocol was used outside its specification."""


class RunLevelError(PiaError):
    """An unknown detail level was requested or a switch was illegal."""


class SwitchpointSyntaxError(RunLevelError):
    """A switchpoint expression could not be parsed."""


class TransportError(PiaError):
    """A message could not be carried between Pia nodes."""


class RemoteCallError(TransportError):
    """A synchronous call reached the peer but its handler raised.

    The link is healthy — retrying would only re-raise the same handler
    error — so the transport surfaces the remote exception's type and
    text instead of burning the retry budget and reporting a misleading
    :class:`LinkDown`.
    """

    def __init__(self, message: str, *, src: str | None = None,
                 dst: str | None = None,
                 remote_type: str | None = None) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        #: Class name of the exception the remote handler raised.
        self.remote_type = remote_type


class LinkDown(TransportError):
    """A link stayed unreachable through every retry attempt.

    Raised by the transports once a :class:`~repro.faults.RetryPolicy`
    exhausts its attempt budget (or its overall deadline) on one
    directed link — whether the failures were injected by a
    :class:`~repro.faults.FaultPlan` or were real socket errors.
    """

    def __init__(self, message: str, *, src: str | None = None,
                 dst: str | None = None, attempts: int = 0) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.attempts = attempts


class NodeFailure(PiaError):
    """A Pia node crashed or became unreachable during a run.

    Raised by the executors when the failure detector confirms a lost
    node and the configured policy forbids (or cannot perform) recovery.
    """

    def __init__(self, message: str, *, node: str | None = None) -> None:
        super().__init__(message)
        self.node = node


class MigrationError(PiaError):
    """A live subsystem migration or failover could not be performed.

    Raised when a node's state cannot be made portable (e.g. a queued
    event targets a live callable that has no by-name encoding), when no
    restore point exists for a failed worker, or when the re-splice of a
    channel endpoint fails.
    """

    def __init__(self, message: str, *, node: str | None = None) -> None:
        super().__init__(message)
        self.node = node


class HardwareStubError(PiaError):
    """The hardware-in-the-loop stub contract was violated."""


class LoaderError(PiaError):
    """A component class could not be loaded or reloaded."""
