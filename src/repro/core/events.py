"""Events and the per-subsystem event queue.

The scheduler of every subsystem owns one :class:`EventQueue`.  Events are
delivered in strict :class:`~repro.core.timestamp.Timestamp` order, which —
together with the monotone sequence numbers the queue assigns — makes every
simulation run deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Optional

from .errors import CausalityError
from .timestamp import Timestamp


class EventKind(enum.Enum):
    """What an event means to the scheduler."""

    #: A value change on a net, destined for one port.
    SIGNAL = "signal"
    #: Resume a component blocked on ``WaitUntil``/``Sync``.
    WAKE = "wake"
    #: An edge-triggered interrupt pulse destined for one port.
    INTERRUPT = "interrupt"
    #: Run an arbitrary callback (checkpoint marks, run-level switches).
    CONTROL = "control"


@dataclass(frozen=True, slots=True)
class Event:
    """One schedulable occurrence.

    ``target`` is interpreted per kind: the destination :class:`Port` for
    ``SIGNAL``/``INTERRUPT``, the :class:`Component` for ``WAKE``, and a
    zero-argument callable for ``CONTROL``.

    Slotted: millions of these are allocated per run, and dropping the
    per-instance ``__dict__`` measurably shrinks both footprint and
    construction time on the dispatch hot path.
    """

    ts: Timestamp
    kind: EventKind
    target: Any
    payload: Any = None
    #: An opaque token a blocked component uses to recognise its wake-up.
    token: Optional[int] = None
    #: Causal trace context ``(trace_id, span, parent, hop)`` of the
    #: message whose dispatch scheduled this event (``None`` for local /
    #: untraced work) — stamped by the scheduler when tracing is on.
    cause: Optional[tuple] = None

    def at(self, ts: Timestamp) -> "Event":
        """Return a copy of this event rescheduled to ``ts``."""
        return replace(self, ts=ts)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[Timestamp, Event]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event, *, now: float = float("-inf")) -> Event:
        """Insert ``event``, assigning it a fresh sequence number.

        ``now`` is the caller's current virtual time; scheduling into the
        past raises :class:`CausalityError` (the paper's consistency rule:
        subsystem time never exceeds any undelivered message's stamp).
        """
        if event.ts.time < now:
            raise CausalityError(
                f"event at {event.ts.time:g} scheduled in the past of {now:g}"
            )
        stamped = replace(event, ts=event.ts._replace(seq=next(self._seq)))
        heapq.heappush(self._heap, (stamped.ts, stamped))
        return stamped

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)[1]

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or ``None``."""
        return self._heap[0][1] if self._heap else None

    def next_time(self) -> float:
        """Virtual time of the earliest event, ``inf`` when empty."""
        return self._heap[0][0].time if self._heap else float("inf")

    def remove_if(self, predicate: Callable[[Event], bool]) -> int:
        """Drop every queued event matching ``predicate``; return the count.

        Used by rollback recovery to cancel events scheduled after a
        restored checkpoint.
        """
        kept = [entry for entry in self._heap if not predicate(entry[1])]
        removed = len(self._heap) - len(kept)
        self._heap = kept
        heapq.heapify(self._heap)
        return removed

    def snapshot(self) -> list[Event]:
        """Return the pending events in delivery order (queue unchanged)."""
        return [entry[1] for entry in sorted(self._heap)]

    def restore(self, events: list[Event]) -> None:
        """Replace the queue contents with ``events`` (stamps preserved)."""
        self._heap = [(event.ts, event) for event in events]
        heapq.heapify(self._heap)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())
