"""Events and the per-subsystem event queue.

The scheduler of every subsystem owns one :class:`EventQueue`.  Events are
delivered in strict :class:`~repro.core.timestamp.Timestamp` order, which —
together with the monotone sequence numbers the queue assigns — makes every
simulation run deterministic.

Both classes exist twice: the pure-python implementations defined here
(always importable, and exported as :data:`PythonEvent` /
:data:`PythonEventQueue` for differential testing) and a C twin in
``repro._native._core`` with identical semantics.  When the compiled
extension is present and ``PIA_PURE`` is unset, the module-level
``Event`` / ``EventQueue`` names rebind to the native types at import
time, so every consumer — scheduler, checkpoints, migration — picks up
the fast backend without changing a line.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from heapq import heappush
from typing import Any, Callable, Iterator, Optional

from .errors import CausalityError
from .timestamp import Timestamp


class EventKind(enum.Enum):
    """What an event means to the scheduler."""

    #: A value change on a net, destined for one port.
    SIGNAL = "signal"
    #: Resume a component blocked on ``WaitUntil``/``Sync``.
    WAKE = "wake"
    #: An edge-triggered interrupt pulse destined for one port.
    INTERRUPT = "interrupt"
    #: Run an arbitrary callback (checkpoint marks, run-level switches).
    CONTROL = "control"


# Dense per-member index used by the scheduler's dispatch table: tuple
# indexing via ``kind.code`` skips ``Enum.__hash__`` — a Python-level
# function call — on every single dispatch.
for _index, _kind in enumerate(EventKind):
    _kind.code = _index
del _index, _kind


class Event:
    """One schedulable occurrence.

    ``target`` is interpreted per kind: the destination :class:`Port` for
    ``SIGNAL``/``INTERRUPT``, the :class:`Component` for ``WAKE``, and a
    zero-argument callable for ``CONTROL``.

    A handwritten slotted class rather than a dataclass: millions of
    these are allocated per run, and a plain ``__init__`` constructs in
    about a third of the time of a frozen-dataclass ``__init__`` (which
    pays for ``__setattr__`` interception), while ``dataclasses.replace``
    — the old rescheduling path — cost another ~2µs per call.  Instances
    are treated as immutable by convention; nothing in the scheduler
    mutates a constructed event.
    """

    __slots__ = ("ts", "kind", "target", "payload", "token", "cause")

    def __init__(self, ts: Timestamp, kind: EventKind, target: Any,
                 payload: Any = None, token: Optional[int] = None,
                 cause: Optional[tuple] = None) -> None:
        if ts.__class__ is not Timestamp and isinstance(ts, (float, int)):
            # A bare number means "this virtual time at default signal
            # priority" — the common case for self-rescheduling ticks.
            ts = Timestamp(float(ts))
        self.ts = ts
        self.kind = kind
        self.target = target
        self.payload = payload
        #: An opaque token a blocked component uses to recognise its
        #: wake-up.
        self.token = token
        #: Causal trace context ``(trace_id, span, parent, hop)`` of the
        #: message whose dispatch scheduled this event (``None`` for
        #: local / untraced work) — stamped by the scheduler when tracing
        #: is on.
        self.cause = cause

    @property
    def time(self) -> float:
        """Virtual time of this event (``ts.time``)."""
        return self.ts.time

    @property
    def priority(self) -> int:
        """Tie-break band of this event (``ts.priority``)."""
        return self.ts.priority

    @property
    def seq(self) -> int:
        """Queue sequence number of this event (``ts.seq``)."""
        return self.ts.seq

    @property
    def code(self) -> int:
        """Dense :class:`EventKind` index used by the dispatch table."""
        return self.kind.code

    def at(self, ts: Timestamp) -> "Event":
        """Return a copy of this event rescheduled to ``ts``."""
        return Event(ts, self.kind, self.target, self.payload,
                     self.token, self.cause)

    def with_cause(self, cause: Optional[tuple]) -> "Event":
        """Return a copy carrying ``cause`` as its trace context."""
        return Event(self.ts, self.kind, self.target, self.payload,
                     self.token, cause)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return (self.ts == other.ts and self.kind is other.kind
                and self.target == other.target
                and self.payload == other.payload
                and self.token == other.token
                and self.cause == other.cause)

    def __hash__(self) -> int:
        return hash((self.ts, self.kind, self.target))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"ts={self.ts!r}", f"kind={self.kind!r}",
                 f"target={self.target!r}"]
        if self.payload is not None:
            parts.append(f"payload={self.payload!r}")
        if self.token is not None:
            parts.append(f"token={self.token!r}")
        if self.cause is not None:
            parts.append(f"cause={self.cause!r}")
        return f"Event({', '.join(parts)})"

    def __getstate__(self):
        return (self.ts, self.kind, self.target, self.payload,
                self.token, self.cause)

    def __setstate__(self, state) -> None:
        (self.ts, self.kind, self.target, self.payload,
         self.token, self.cause) = state


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[Timestamp, Event]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event, *, now: float = float("-inf")) -> Event:
        """Insert ``event``, assigning it a fresh sequence number.

        ``now`` is the caller's current virtual time; scheduling into the
        past raises :class:`CausalityError` (the paper's consistency rule:
        subsystem time never exceeds any undelivered message's stamp).
        """
        ts = event.ts
        if ts.time < now:
            raise CausalityError(
                f"event at {ts.time:g} scheduled in the past of {now:g}"
            )
        # Stamp in place rather than re-allocating a whole Event just to
        # change the sequence number: every push site constructs a fresh
        # event (or deliberately hands ownership over, like ``at()``
        # reschedules), so mutating ``ts`` here is unobservable — and it
        # halves the allocations on the hottest call in the tree.
        stamped = Timestamp(ts.time, ts.priority, next(self._seq))
        event.ts = stamped
        heappush(self._heap, (stamped, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[1]

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or ``None``."""
        return self._heap[0][1] if self._heap else None

    def next_time(self) -> float:
        """Virtual time of the earliest event, ``inf`` when empty."""
        return self._heap[0][0].time if self._heap else float("inf")

    def remove_if(self, predicate: Callable[[Event], bool]) -> int:
        """Drop every queued event matching ``predicate``; return the count.

        Used by rollback recovery to cancel events scheduled after a
        restored checkpoint.  Mutates the heap in place: the scheduler's
        run loop holds a direct reference to it, and a rollback fired
        from a CONTROL dispatch must edit the very list that loop is
        draining.
        """
        heap = self._heap
        kept = [entry for entry in heap if not predicate(entry[1])]
        removed = len(heap) - len(kept)
        heap[:] = kept
        heapq.heapify(heap)
        return removed

    def snapshot(self) -> list[Event]:
        """Return the pending events in delivery order (queue unchanged)."""
        return [entry[1] for entry in sorted(self._heap)]

    def restore(self, events: list[Event]) -> None:
        """Replace the queue contents with ``events`` (stamps preserved).

        In place, for the same reason as :meth:`remove_if`.
        """
        heap = self._heap
        heap[:] = [(event.ts, event) for event in events]
        heapq.heapify(heap)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())


#: The pure-python implementations, always importable under stable names
#: so the differential test suite can compare them against the native
#: twins regardless of which backend is live.
PythonEvent = Event
PythonEventQueue = EventQueue

from .. import _native  # noqa: E402  (after the pure definitions — the
#                         C module's init imports this package's siblings)

#: True when the module-level ``Event``/``EventQueue`` are the compiled
#: types; the scheduler selects its run loop on this flag.
NATIVE_EVENTS = _native.core is not None

if NATIVE_EVENTS:
    Event = _native.core.Event          # type: ignore[misc, assignment]
    EventQueue = _native.core.EventQueue  # type: ignore[misc, assignment]
