"""Copy elision for the checkpoint and transport hot paths.

Checkpoint capture/restore and the simulated wire both defensively copy
values so that stored or delivered state can never alias live mutable
state.  Most values crossing those paths are immutable scalars (net
levels, small tuples of them), for which the defensive copy buys nothing:
an immutable object may be shared freely.  :func:`smart_copy` keeps the
deep-copy guarantee for mutable values and skips it for provably
immutable ones.

"Provably immutable" is deliberately narrow — exact builtin types only
(``bool``/``int``/``float``/``complex``/``str``/``bytes``/``None`` plus
enum members, and ``tuple``/``frozenset`` containers thereof up to a
small depth).  Subclasses and everything else fall back to
``copy.deepcopy``; correctness never depends on the fast path firing.
"""

from __future__ import annotations

import copy
import enum
from typing import Any

#: Exact types that are immutable no matter what they contain.
_ATOMIC = frozenset({type(None), bool, int, float, complex, str, bytes})

#: Containers that are immutable iff every element is.
_CONTAINERS = (tuple, frozenset)

#: How deep nested tuples/frozensets are inspected before giving up.
_MAX_DEPTH = 4


def is_immutable(obj: Any, _depth: int = _MAX_DEPTH) -> bool:
    """True when ``obj`` is provably immutable (safe to share, not copy)."""
    if type(obj) in _ATOMIC:
        return True
    if isinstance(obj, enum.Enum):
        return True
    if type(obj) in _CONTAINERS:
        if _depth <= 0:
            return False
        return all(is_immutable(item, _depth - 1) for item in obj)
    return False


def smart_copy(obj: Any) -> Any:
    """``copy.deepcopy`` with elision for provably immutable values."""
    if is_immutable(obj):
        return obj
    return copy.deepcopy(obj)


def smart_copy_dict(mapping: dict) -> dict:
    """Per-value :func:`smart_copy` of a dict (checkpoint attr images)."""
    return {key: smart_copy(value) for key, value in mapping.items()}


def smart_copy_list(items) -> list:
    """Per-item :func:`smart_copy` of a sequence (buffers, replay logs)."""
    return [smart_copy(item) for item in items]
