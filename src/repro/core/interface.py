"""Interfaces: they connect components to ports and carry a protocol.

An interface owns (up to) an output port and an input port, a
:class:`~repro.protocols.base.Protocol`, and a current *detail level*.
Logical transfers are expanded by the protocol's codec for that level into
a timed sequence of wire values (paper section 2.1.3); incoming wire values
are reassembled back into payloads.

Each transfer's wire framing is self-describing (the header names the level
it was emitted at), so the *safe points* for detail switching are exactly
the transfer boundaries: a switch simply takes effect for the next
transfer, and an in-flight transfer always completes at the level it
started with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .errors import ConfigurationError, RunLevelError
from .fastcopy import smart_copy
from .port import Port, PortDirection

if TYPE_CHECKING:  # pragma: no cover
    from .component import Component
    from ..protocols.base import Protocol


class Interface:
    """Binds a component's behaviour to ports through a protocol."""

    def __init__(self, name: str, protocol: "Protocol", *,
                 level: Optional[str] = None,
                 out_port: Optional[str] = None,
                 in_port: Optional[str] = None) -> None:
        self.name = name
        self.protocol = protocol
        self.level = level if level is not None else protocol.default_level
        if self.level not in protocol.levels():
            raise RunLevelError(
                f"interface {name}: protocol {protocol.name} has no level "
                f"{self.level!r} (available: {sorted(protocol.levels())})")
        self._out_port_name = out_port
        self._in_port_name = in_port
        self.out_port: Optional[Port] = None
        self.in_port: Optional[Port] = None
        self.component: "Optional[Component]" = None
        self._xfer_seq = 0
        self._partial: dict[Any, dict] = {}
        #: Totals for bandwidth studies: (transfers, chunks, payload bytes).
        self.sent_transfers = 0
        self.sent_chunks = 0
        self.sent_payload_bytes = 0
        self.received_transfers = 0

    # ------------------------------------------------------------------
    def bind(self, component: "Component") -> None:
        """Attach to ``component``, creating the named ports if needed."""
        self.component = component
        if self._out_port_name is not None:
            self.out_port = component.ports.get(self._out_port_name) or \
                component.add_port(self._out_port_name, PortDirection.OUT)
        if self._in_port_name is not None:
            self.in_port = component.ports.get(self._in_port_name) or \
                component.add_port(self._in_port_name, PortDirection.IN)

    @property
    def full_name(self) -> str:
        owner = self.component.name if self.component is not None else "<unbound>"
        return f"{owner}.{self.name}"

    # ------------------------------------------------------------------
    # detail levels
    # ------------------------------------------------------------------
    def set_level(self, level: str) -> None:
        """Switch detail level; effective at the next transfer (safe point)."""
        if level not in self.protocol.levels():
            raise RunLevelError(
                f"{self.full_name}: protocol {self.protocol.name} has no "
                f"level {level!r}")
        self.level = level

    def mid_transfer(self) -> bool:
        """True while an incoming transfer is partially reassembled."""
        return bool(self._partial)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def emit(self, payload: Any, start_time: float,
             *, advance: Callable[[float], None]) -> float:
        """Expand ``payload`` at the current level and drive the wire.

        ``advance`` consumes the owning component's local time chunk by
        chunk; each wire value is posted at the component's local time after
        its chunk delay.  Returns the total transfer duration.
        """
        if self.out_port is None:
            raise ConfigurationError(f"{self.full_name}: no output port")
        if self.component is None:
            raise ConfigurationError(f"{self.full_name}: unbound interface")
        codec = self.protocol.codec(self.level)
        transfer_id = (self.component.name, self.name, self._xfer_seq)
        self._xfer_seq += 1
        total = 0.0
        chunks = 0
        for dt, wire in codec.expand(payload, transfer_id):
            advance(dt)
            total += dt
            self.out_port.drive(wire, self.component.local_time)
            chunks += 1
        self.sent_transfers += 1
        self.sent_chunks += chunks
        self.sent_payload_bytes += codec.payload_size(payload)
        return total

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def absorb(self, time: float, wire: Any) -> Optional[Any]:
        """Feed one incoming wire value; returns a payload when complete."""
        from ..protocols.base import INCOMPLETE, reassemble_step  # import cycle
        payload = reassemble_step(self._partial, wire)
        if payload is INCOMPLETE:
            return None
        self.received_transfers += 1
        return payload

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "level": self.level,
            "xfer_seq": self._xfer_seq,
            "partial": smart_copy(self._partial),
            "sent_transfers": self.sent_transfers,
            "sent_chunks": self.sent_chunks,
            "sent_payload_bytes": self.sent_payload_bytes,
            "received_transfers": self.received_transfers,
        }

    def restore_state(self, state: dict) -> None:
        self.level = state["level"]
        self._xfer_seq = state["xfer_seq"]
        self._partial = smart_copy(state["partial"])
        self.sent_transfers = state["sent_transfers"]
        self.sent_chunks = state["sent_chunks"]
        self.sent_payload_bytes = state["sent_payload_bytes"]
        self.received_transfers = state["received_transfers"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Interface {self.full_name} {self.protocol.name}@{self.level}>"
