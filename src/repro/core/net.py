"""Nets: the wires interconnecting ports.

A net fans a posted value out to every attached port except the driver,
after the net's propagation ``delay``.  Nets are the only user object the
distributed layer ever splits across subsystems (paper section 2.2.1); a
split introduces hidden ports owned by channel components, which are plain
:class:`~repro.core.port.Port` objects as far as the net is concerned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .errors import ConfigurationError
from .events import Event, EventKind
from .port import Port
from .timestamp import PRIORITY_SIGNAL, Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from .subsystem import Subsystem


class Net:
    """A multi-point wire carrying timestamped values between ports."""

    def __init__(self, name: str, *, delay: float = 0.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"net {name}: negative delay {delay}")
        self.name = name
        self.delay = delay
        self.ports: list[Port] = []
        self.subsystem: "Optional[Subsystem]" = None
        #: Last value posted and when, for switchpoint signal conditions.
        self.value: Any = None
        self.last_change: float = float("-inf")
        #: Number of values ever posted on this net.
        self.posts = 0
        #: Called as ``observer(net, time, value)`` on every value change
        #: (waveform tracers, debugger watchpoints).
        self.observers: list = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, *ports: Port) -> "Net":
        """Attach one or more ports; returns ``self`` for chaining."""
        for port in ports:
            if port not in self.ports:
                port.attach(self)
                self.ports.append(port)
        return self

    def disconnect(self, port: Port) -> None:
        if port in self.ports:
            self.ports.remove(port)
            port.detach()

    def visible_ports(self) -> list[Port]:
        """The user-facing (non-hidden) ports on this net."""
        return [port for port in self.ports if not port.hidden]

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def post(self, value: Any, at_time: float, *, driver: Optional[Port] = None) -> None:
        """Schedule delivery of ``value`` to every listener except ``driver``.

        Deliveries land at ``at_time + self.delay`` as ``SIGNAL`` events on
        the owning subsystem's queue.
        """
        if self.subsystem is None:
            raise ConfigurationError(
                f"net {self.name} is not registered with any subsystem"
            )
        self.posts += 1
        self.value = value
        self.last_change = at_time
        for observer in self.observers:
            observer(self, at_time, value)
        arrival = at_time + self.delay
        for port in self.ports:
            if port is driver:
                continue
            # Multi-driver nets: other pure drivers see the value on the
            # wire but have no receive path — skip them.
            if not port.direction.can_receive and not port.hidden:
                continue
            self.subsystem.scheduler.schedule(
                Event(Timestamp(arrival, PRIORITY_SIGNAL), EventKind.SIGNAL,
                      target=port, payload=value)
            )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ",".join(port.full_name for port in self.ports)
        return f"<Net {self.name} [{names}]>"
