"""Ports: the connection points between components and nets.

In Pia's object model (paper section 2.1) *components* expose behaviour,
*interfaces* connect components to *ports*, and ports are interconnected
through *nets*.  A port buffers the timestamped values delivered to it until
the owning component consumes them.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from .errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from .component import Component
    from .net import Net


class PortDirection(enum.Enum):
    """Data direction of a port, from the owning component's viewpoint."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def can_receive(self) -> bool:
        return self in (PortDirection.IN, PortDirection.INOUT)

    @property
    def can_drive(self) -> bool:
        return self in (PortDirection.OUT, PortDirection.INOUT)


class Port:
    """A named endpoint on a component.

    ``hidden`` marks the extra ports the distributed layer introduces when a
    net is split across subsystems (paper section 2.2.1); hidden ports belong
    to channel components and never appear in user-facing listings.
    """

    def __init__(self, name: str, direction: PortDirection = PortDirection.INOUT,
                 *, owner: "Optional[Component]" = None, hidden: bool = False) -> None:
        self.name = name
        self.direction = direction
        self.owner = owner
        self.hidden = hidden
        self.net: "Optional[Net]" = None
        #: Timestamped values delivered but not yet consumed: (time, value).
        self.buffer: deque[tuple[float, Any]] = deque()
        #: Count of values ever delivered to this port.
        self.delivered = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    @property
    def full_name(self) -> str:
        owner = self.owner.name if self.owner is not None else "<unbound>"
        return f"{owner}.{self.name}"

    def attach(self, net: "Net") -> None:
        """Join ``net``; a port belongs to at most one net."""
        if self.net is not None and self.net is not net:
            raise ConfigurationError(
                f"port {self.full_name} is already on net {self.net.name}"
            )
        self.net = net

    def detach(self) -> None:
        self.net = None

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def deliver(self, time: float, value: Any) -> None:
        """Buffer a value that arrived at virtual ``time``."""
        if not self.direction.can_receive and not self.hidden:
            raise ConfigurationError(
                f"output port {self.full_name} cannot receive values"
            )
        self.buffer.append((time, value))
        self.delivered += 1

    def has_data(self) -> bool:
        return bool(self.buffer)

    def pop_earliest(self) -> tuple[float, Any]:
        """Consume the earliest buffered value as ``(time, value)``."""
        return self.buffer.popleft()

    def peek_earliest(self) -> Optional[tuple[float, Any]]:
        return self.buffer[0] if self.buffer else None

    def drive(self, value: Any, at_time: float) -> None:
        """Place ``value`` on the attached net at virtual time ``at_time``."""
        if not self.direction.can_drive and not self.hidden:
            raise ConfigurationError(
                f"input port {self.full_name} cannot drive its net"
            )
        if self.net is None:
            raise ConfigurationError(f"port {self.full_name} is not on any net")
        self.net.post(value, at_time, driver=self)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = " hidden" if self.hidden else ""
        return f"<Port {self.full_name} {self.direction.value}{tag}>"
