"""The command vocabulary of process-style components.

A :class:`~repro.core.component.ProcessComponent` describes sequential
behaviour — typically embedded software — as a Python generator that
``yield``\\ s these commands.  The scheduler executes each command and, for
the blocking ones, resumes the generator with a result once the simulated
world has caught up.

This mirrors the paper's execution model (section 2.1): a component runs
freely, advancing only its *local* time, until it is ready to receive a
value from another component; it then pauses until subsystem time reaches
its local time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class Command:
    """Base class for everything a process behaviour may ``yield``."""

    __slots__ = ()


@dataclass(frozen=True)
class Advance(Command):
    """Advance the component's local virtual time by ``dt`` seconds.

    This is how basic-block timing estimates embedded in the software reach
    the simulator (paper section 2.1).
    """

    dt: float


@dataclass(frozen=True)
class Send(Command):
    """Drive ``value`` onto the net behind port ``port``.

    The value is posted at ``local_time + delay``; the component does not
    block.
    """

    port: str
    value: Any
    delay: float = 0.0


@dataclass(frozen=True)
class Receive(Command):
    """Block until a value is available on port ``port``.

    Resumes with ``(time, value)`` where ``time`` is the component's new
    local time (the later of its pause time and the value's arrival time).
    """

    port: str


@dataclass(frozen=True)
class TryReceive(Command):
    """Non-blocking receive: resumes immediately with ``(time, value)`` if
    port ``port`` has a buffered value, else with ``None``.

    Used by hardware-in-the-loop components that drain their input
    registers between clock windows rather than blocking on them.
    """

    port: str


@dataclass(frozen=True)
class WaitUntil(Command):
    """Block until virtual time ``time``; resumes with the new local time.

    A no-op when the component's local time is already past ``time``.
    """

    time: float


@dataclass(frozen=True)
class Sync(Command):
    """Block until subsystem time catches up with this component's local time.

    This is the synchronisation a component performs before touching a
    *synchronous* memory location (paper section 2.1.1): once the wait
    completes, every message and interrupt stamped at or before the
    component's local time has been delivered.
    """


@dataclass(frozen=True)
class Transfer(Command):
    """Perform one logical transfer of ``payload`` through ``interface``.

    The interface's protocol codec, at its current detail level, expands the
    payload into a level-dependent sequence of timed wire values (paper
    section 2.1.3).  The component's local time advances across the whole
    transfer; it does not block.
    """

    interface: str
    payload: Any


@dataclass(frozen=True)
class ReceiveTransfer(Command):
    """Block until one complete logical transfer arrives on ``interface``.

    Resumes with ``(time, payload)``.  Chunks are reassembled per the
    framing each transfer carries, so the receiver is level-agnostic and a
    detail switch between transfers is always safe.
    """

    interface: str


@dataclass(frozen=True)
class SwitchLevel(Command):
    """Imperatively change a detail level from inside component source.

    ``target`` names a component (``"Comp"``) or interface
    (``"Comp.iface"``); ``None`` means the yielding component itself.  The
    switch takes effect at the next safe point (transfer boundary).
    """

    level: str
    target: Optional[str] = None


@dataclass(frozen=True)
class SaveCheckpoint(Command):
    """Request a subsystem-wide checkpoint from inside a behaviour."""

    label: Optional[str] = None


@dataclass(frozen=True)
class BlockInfo:
    """Why a process component is currently paused (scheduler internal)."""

    kind: str                       # "receive" | "wake" | "transfer"
    port: Optional[str] = None      # for "receive"
    interface: Optional[str] = None  # for "transfer"
    token: Optional[int] = None     # for "wake"
    chunks: tuple = field(default=())  # partial transfer state
