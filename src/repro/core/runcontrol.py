"""Simulation run-control files (paper section 2.1.3).

"there may be a switchpoint defined in the simulation run control file" —
this module defines that file.  A run-control file collects everything a
designer configures per *run* rather than per *design*: initial run
levels, switchpoints, a checkpoint cadence, detail sliders and the end
time.  The format is line-based with ``[section]`` headers::

    # WubbleU evaluation run
    [runlevels]
    Stack.bus = word
    NetIf.bus = word

    [switchpoints]
    when Stack.localtime >= 0.02: Stack.bus -> packet, NetIf.bus -> packet
    repeat when net.irq == 1: Cpu -> hardwareLevel

    [sliders]
    link = Stack.bus, NetIf.bus : transaction, packet, word

    [checkpoints]
    interval = 0.5

    [run]
    until = 2.0

``apply`` configures any target exposing the shared facade surface
(:class:`~repro.core.simulator.Simulator` or
:class:`~repro.distributed.executor.CoSimulation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError
from .runlevel import DetailSlider, Switchpoint, parse_switchpoint

_SECTIONS = ("runlevels", "switchpoints", "sliders", "checkpoints", "run")


@dataclass
class RunControl:
    """A parsed run-control file."""

    #: target ("Comp" or "Comp.iface") -> initial level.
    runlevels: Dict[str, str] = field(default_factory=dict)
    switchpoints: List[Switchpoint] = field(default_factory=list)
    #: slider name -> (targets, levels).
    sliders: Dict[str, Tuple[List[str], List[str]]] = field(
        default_factory=dict)
    checkpoint_interval: Optional[float] = None
    until: Optional[float] = None

    # ------------------------------------------------------------------
    def apply(self, target) -> Dict[str, DetailSlider]:
        """Configure ``target`` (Simulator or CoSimulation); returns the
        created sliders by name.

        Each application registers *fresh copies* of the switchpoints, so
        one parsed file can drive any number of runs without a fired
        switchpoint from an earlier run staying disarmed.
        """
        import dataclasses

        for name, level in self.runlevels.items():
            target.set_runlevel(name, level)
        for switchpoint in self.switchpoints:
            target.add_switchpoint(
                dataclasses.replace(switchpoint, fired=False))
        sliders = {name: target.slider(targets, levels)
                   for name, (targets, levels) in self.sliders.items()}
        if self.checkpoint_interval is not None:
            auto = getattr(target, "auto_checkpoint", None)
            if auto is not None:
                auto(self.checkpoint_interval)
            else:
                target.snapshot_interval = self.checkpoint_interval
        return sliders

    def run(self, target) -> int:
        """Apply the configuration and run to the configured end time."""
        self.apply(target)
        if self.until is not None:
            return target.run(until=self.until)
        return target.run()


def parse(text: str) -> RunControl:
    """Parse run-control ``text``; raises on malformed lines."""
    control = RunControl()
    section: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip().lower()
            if section not in _SECTIONS:
                raise ConfigurationError(
                    f"run control line {lineno}: unknown section "
                    f"[{section}] (expected one of {_SECTIONS})")
            continue
        if section is None:
            raise ConfigurationError(
                f"run control line {lineno}: content before any [section]")
        _parse_line(control, section, line, lineno)
    return control


def load(path: str) -> RunControl:
    """Parse the run-control file at ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return parse(handle.read())
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path!r}: {exc}") from exc


def _parse_line(control: RunControl, section: str, line: str,
                lineno: int) -> None:
    if section == "runlevels":
        name, __, level = line.partition("=")
        if not __ or not name.strip() or not level.strip():
            raise ConfigurationError(
                f"run control line {lineno}: expected 'target = level'")
        control.runlevels[name.strip()] = level.strip()
    elif section == "switchpoints":
        once = True
        text = line
        if text.lower().startswith("repeat "):
            once = False
            text = text[len("repeat "):]
        control.switchpoints.append(parse_switchpoint(text, once=once))
    elif section == "sliders":
        name, __, rest = line.partition("=")
        targets_text, ___, levels_text = rest.partition(":")
        if not __ or not ___:
            raise ConfigurationError(
                f"run control line {lineno}: expected "
                "'name = target, ... : level, ...'")
        targets = [t.strip() for t in targets_text.split(",") if t.strip()]
        levels = [l.strip() for l in levels_text.split(",") if l.strip()]
        if not targets or not levels:
            raise ConfigurationError(
                f"run control line {lineno}: empty targets or levels")
        control.sliders[name.strip()] = (targets, levels)
    elif section == "checkpoints":
        key, __, value = line.partition("=")
        if key.strip() != "interval":
            raise ConfigurationError(
                f"run control line {lineno}: only 'interval = <seconds>' "
                "is understood in [checkpoints]")
        control.checkpoint_interval = _number(value, lineno)
    elif section == "run":
        key, __, value = line.partition("=")
        if key.strip() != "until":
            raise ConfigurationError(
                f"run control line {lineno}: only 'until = <seconds>' "
                "is understood in [run]")
        control.until = _number(value, lineno)


def _number(text: str, lineno: int) -> float:
    try:
        value = float(text.strip())
    except ValueError:
        raise ConfigurationError(
            f"run control line {lineno}: bad number {text.strip()!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"run control line {lineno}: value must be > 0")
    return value
