"""Detail levels (*run levels*) and switchpoints (paper section 2.1.3).

Changes in detail level are triggered by one of three things:

1. the user directly altering a run level — modelled by
   :class:`DetailSlider`;
2. a *switchpoint* defined in the simulation run-control file — parsed by
   :func:`parse_switchpoint` and evaluated by :class:`SwitchpointManager`;
3. imperative switch statements in component source — the
   :class:`~repro.core.process.SwitchLevel` command.

A switchpoint is a condition over component local times (and net signal
values), with conjuncts and disjuncts allowed across multiple components,
plus a list of run-level assignments.  The paper's example::

    when I2CComponent.localtime >= 67:
        I2CComponent -> hardwareLevel, VidCamComponent -> byteLevel

is written here as the one-liner::

    "when I2CComponent.localtime >= 67: I2CComponent -> hardwareLevel, "
    "VidCamComponent -> byteLevel"
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from .errors import RunLevelError, SwitchpointSyntaxError

# ---------------------------------------------------------------------------
# expression AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalTimeRef:
    component: str


@dataclass(frozen=True)
class SignalRef:
    net: str


@dataclass(frozen=True)
class Comparison:
    ref: Union[LocalTimeRef, SignalRef]
    op: str
    value: Any


@dataclass(frozen=True)
class And:
    terms: tuple


@dataclass(frozen=True)
class Or:
    terms: tuple


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


# ---------------------------------------------------------------------------
# tokenizer / parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<arrow>->)
      | (?P<op>>=|<=|==|!=|>|<)
      | (?P<punct>[():,])
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
      | (?P<string>"[^"]*"|'[^']*')
      | (?P<name>[A-Za-z_][\w.]*)
      | (?P<word>\S)
    )""", re.VERBOSE)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            break
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word":
            raise SwitchpointSyntaxError(
                f"unexpected character {value!r} in switchpoint: {text!r}")
        tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Optional[tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SwitchpointSyntaxError(
                f"unexpected end of switchpoint: {self.source!r}")
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise SwitchpointSyntaxError(
                f"expected {value or kind} but found {token[1]!r} "
                f"in {self.source!r}")
        return token[1]

    # grammar ------------------------------------------------------------
    def parse_or(self):
        terms = [self.parse_and()]
        while self.peek() == ("name", "or"):
            self.next()
            terms.append(self.parse_and())
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def parse_and(self):
        terms = [self.parse_atom()]
        while self.peek() == ("name", "and"):
            self.next()
            terms.append(self.parse_atom())
        return terms[0] if len(terms) == 1 else And(tuple(terms))

    def parse_atom(self):
        token = self.peek()
        if token == ("punct", "("):
            self.next()
            inner = self.parse_or()
            self.expect("punct", ")")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Comparison:
        name = self.expect("name")
        ref = self._make_ref(name)
        op = self.expect("op")
        kind, raw = self.next()
        if kind == "number":
            value: Any = float(raw) if ("." in raw or "e" in raw.lower()) \
                else int(raw)
        elif kind == "string":
            value = raw[1:-1]
        elif kind == "name":
            value = raw
        else:
            raise SwitchpointSyntaxError(
                f"bad comparison value {raw!r} in {self.source!r}")
        return Comparison(ref, op, value)

    def _make_ref(self, dotted: str) -> Union[LocalTimeRef, SignalRef]:
        parts = dotted.split(".")
        if len(parts) == 2 and parts[1] == "localtime":
            return LocalTimeRef(parts[0])
        if len(parts) == 2 and parts[0] == "net":
            return SignalRef(parts[1])
        raise SwitchpointSyntaxError(
            f"unknown reference {dotted!r}: expected Component.localtime "
            f"or net.NetName, in {self.source!r}")

    def parse_assignments(self) -> list[tuple[str, str]]:
        assignments = [self.parse_assignment()]
        while self.peek() == ("punct", ","):
            self.next()
            assignments.append(self.parse_assignment())
        if self.peek() is not None:
            raise SwitchpointSyntaxError(
                f"trailing tokens after assignments in {self.source!r}")
        return assignments

    def parse_assignment(self) -> tuple[str, str]:
        target = self.expect("name")
        self.expect("arrow")
        level = self.expect("name")
        return target, level


@dataclass
class Switchpoint:
    """A parsed switchpoint: a condition and the switches it triggers."""

    condition: Any
    assignments: list[tuple[str, str]]
    source: str = ""
    #: Fire once (the usual case) or every time the condition holds.
    once: bool = True
    fired: bool = False

    def evaluate(self, env: "SwitchpointEnvironment") -> bool:
        return _eval(self.condition, env)


def parse_switchpoint(text: str, *, once: bool = True) -> Switchpoint:
    """Parse ``"when <condition>: <target> -> <level>, ..."``.

    The leading ``when`` keyword is optional.
    """
    tokens = _tokenize(text)
    if tokens and tokens[0] == ("name", "when"):
        tokens = tokens[1:]
    parser = _Parser(tokens, text)
    condition = parser.parse_or()
    parser.expect("punct", ":")
    assignments = parser.parse_assignments()
    return Switchpoint(condition, assignments, source=text, once=once)


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


class SwitchpointEnvironment:
    """Name resolution for switchpoint conditions.

    ``local_time(component)`` and ``signal(net)`` may look across every
    subsystem of a distributed system — the paper notes a condition "can
    include conjuncts and disjuncts of conditions across multiple
    components".
    """

    def __init__(self, *,
                 local_time: Callable[[str], float],
                 signal: Callable[[str], Any]) -> None:
        self.local_time = local_time
        self.signal = signal


def _eval(node: Any, env: SwitchpointEnvironment) -> bool:
    if isinstance(node, Or):
        return any(_eval(term, env) for term in node.terms)
    if isinstance(node, And):
        return all(_eval(term, env) for term in node.terms)
    if isinstance(node, Comparison):
        if isinstance(node.ref, LocalTimeRef):
            actual = env.local_time(node.ref.component)
        else:
            actual = env.signal(node.ref.net)
        try:
            return _OPS[node.op](actual, node.value)
        except TypeError:
            return False
    raise RunLevelError(f"cannot evaluate switchpoint node {node!r}")


class SwitchpointManager:
    """Evaluates registered switchpoints and applies their assignments."""

    def __init__(self, env: SwitchpointEnvironment,
                 apply: Callable[[str, str], None]) -> None:
        self.env = env
        self.apply = apply
        self.switchpoints: list[Switchpoint] = []
        #: (virtual_time, source) of every switch applied, for inspection.
        self.history: list[tuple[float, str]] = []

    def add(self, switchpoint: Union[str, Switchpoint], *,
            once: bool = True) -> Switchpoint:
        if isinstance(switchpoint, str):
            switchpoint = parse_switchpoint(switchpoint, once=once)
        self.switchpoints.append(switchpoint)
        return switchpoint

    def poll(self, now: float) -> int:
        """Evaluate all armed switchpoints; returns how many fired."""
        fired = 0
        for sp in self.switchpoints:
            if sp.once and sp.fired:
                continue
            if sp.evaluate(self.env):
                for target, level in sp.assignments:
                    self.apply(target, level)
                sp.fired = True
                fired += 1
                self.history.append((now, sp.source))
        return fired


class DetailSlider:
    """The paper's "detail level slider": one knob over ordered levels.

    ``levels`` is ordered from most abstract to most detailed; ``set``
    moves the knob and reconfigures every target accordingly.
    """

    def __init__(self, targets: Sequence[str], levels: Sequence[str],
                 apply: Callable[[str, str], None]) -> None:
        if not levels:
            raise RunLevelError("slider needs at least one level")
        self.targets = list(targets)
        self.levels = list(levels)
        self.apply = apply
        self.position = 0

    @property
    def level(self) -> str:
        return self.levels[self.position]

    def set(self, position: int) -> str:
        if not 0 <= position < len(self.levels):
            raise RunLevelError(
                f"slider position {position} out of range 0..{len(self.levels) - 1}")
        self.position = position
        for target in self.targets:
            self.apply(target, self.level)
        return self.level

    def more_detail(self) -> str:
        return self.set(min(self.position + 1, len(self.levels) - 1))

    def less_detail(self) -> str:
        return self.set(max(self.position - 1, 0))
