"""The per-subsystem scheduler: Pia's two-level virtual time.

The scheduler enforces the paper's core invariant (section 2.1): *system
(subsystem) time is always less than or equal to all component local
times* at every delivery, so a component resumed from a receive is certain
its view of the world is up to date.  Components run ahead of subsystem
time freely; subsystem time only advances by consuming the event queue in
timestamp order.

The paper implements this on the Java VM by making sure its thread
scheduler only ever sees one runnable thread (section 3.1).  Here the same
effect — total control over execution order — falls out of running
component generators inline from a single dispatch loop.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from ..observability import NULL_TELEMETRY, TraceKind
from .errors import CausalityError, SimulationError
from .events import Event, EventKind, EventQueue

if TYPE_CHECKING:  # pragma: no cover
    from .component import Component
    from .port import Port
    from .subsystem import Subsystem


class Scheduler:
    """Dispatches events for one subsystem in deterministic time order."""

    def __init__(self, subsystem: "Subsystem") -> None:
        self.subsystem = subsystem
        self.queue = EventQueue()
        #: Subsystem virtual time (the paper's *system time*).
        self.now = 0.0
        #: Events dispatched since construction.
        self.dispatched = 0
        #: Number of times :meth:`run` stopped early at a horizon
        #: (the stalls of paper Fig. 3).
        self.stalls = 0
        #: Called after every dispatched event (switchpoint evaluation).
        self.post_step_hooks: list[Callable[[Event], None]] = []
        #: Telemetry sink; the owning Simulator/CoSimulation attaches a
        #: live one via Subsystem.attach_telemetry.
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    def schedule(self, event: Event) -> Event:
        """Enqueue ``event``; scheduling into the past is a causality error.

        With tracing on, an event scheduled while a caused event is being
        dispatched inherits that dispatch's trace context, so causal
        chains survive local event hops between message edges.
        """
        telemetry = self.telemetry
        if telemetry.enabled and event.cause is None:
            cause = telemetry.cause
            if cause is not None:
                event = replace(event, cause=cause)
        return self.queue.push(event, now=self.now)

    def next_event_time(self) -> float:
        """Virtual time of the earliest pending event (``inf`` when idle)."""
        return self.queue.next_time()

    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Dispatch the earliest event; returns it, or ``None`` when idle."""
        if not self.queue:
            return None
        event = self.queue.pop()
        if event.ts.time < self.now:
            raise CausalityError(
                f"{self.subsystem.name}: event at {event.ts.time:g} popped "
                f"after subsystem time reached {self.now:g}")
        self.now = event.ts.time
        telemetry = self.telemetry
        traced = telemetry.enabled
        if traced:
            # Sends triggered by this dispatch mint child spans of the
            # event's cause; cleared even on a straggler abort.
            telemetry.cause = event.cause
        try:
            self._dispatch(event)
        finally:
            if traced:
                telemetry.cause = None
        self.dispatched += 1
        if traced:
            telemetry.count("scheduler.dispatched")
            if event.cause is not None:
                telemetry.trace(TraceKind.DISPATCH, time=event.ts.time,
                                subject=self.subsystem.name,
                                event=event.kind.value,
                                cause=event.cause[1], hop=event.cause[3])
            else:
                telemetry.trace(TraceKind.DISPATCH, time=event.ts.time,
                                subject=self.subsystem.name,
                                event=event.kind.value)
        for hook in self.post_step_hooks:
            hook(event)
        return event

    def run(self, until: float = float("inf"), *,
            horizon=float("inf"),
            max_events: Optional[int] = None) -> int:
        """Dispatch events while they fall at or before ``min(until, horizon)``.

        ``until`` is the caller's end-of-simulation bound; ``horizon`` is a
        safety bound imposed by conservative channels (paper section
        2.2.2.1) — either a number or a zero-argument callable re-evaluated
        before every dispatch, because sending on a channel can *shrink*
        the safe horizon mid-run (the echo bound).  Stopping at the horizon
        while work remains counts as a stall.  Returns the number of events
        dispatched.
        """
        horizon_fn = horizon if callable(horizon) else None
        count = 0
        # Hot loop: hoist the attribute lookups that are loop-invariant
        # (the queue and step bindings never change mid-run; telemetry is
        # only consulted on the cold stall path).
        queue = self.queue
        peek = queue.next_time
        step = self.step
        while queue:
            limit = horizon_fn() if horizon_fn is not None else horizon
            bound = until if until < limit else limit
            next_time = peek()
            if next_time > bound:
                if next_time <= until and limit < until:
                    self.stalls += 1
                    telemetry = self.telemetry
                    if telemetry.enabled:
                        telemetry.count("scheduler.stalls")
                        head = queue.peek()
                        cause = head.cause if head is not None else None
                        if cause is not None:
                            # Link the stall to the chain of the event it
                            # is parked behind.
                            telemetry.trace(
                                TraceKind.STALL, time=self.now,
                                subject=self.subsystem.name,
                                horizon=limit, next_event=next_time,
                                cause=cause[1], hop=cause[3])
                        else:
                            telemetry.trace(
                                TraceKind.STALL, time=self.now,
                                subject=self.subsystem.name,
                                horizon=limit,
                                next_event=next_time)
                break
            if max_events is not None and count >= max_events:
                break
            step()
            count += 1
        return count

    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        if event.kind in (EventKind.SIGNAL, EventKind.INTERRUPT):
            port: "Port" = event.target
            owner = port.owner
            if owner is None:
                raise SimulationError(
                    f"signal delivered to orphan port {port.name!r}")
            self._check_local_time(owner, event)
            owner.deliver(event)
        elif event.kind is EventKind.WAKE:
            component: "Component" = event.target
            component.deliver(event)
        elif event.kind is EventKind.CONTROL:
            event.target(event)
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _check_local_time(self, component: "Component", event: Event) -> None:
        """Invariant check: delivery never outruns the receiver's receive point.

        A component blocked at a receive has, conceptually, a local time
        equal to its pause point; deliveries earlier than that are legal
        (they queue), so the only real constraint is that subsystem time is
        monotone — already enforced in :meth:`step`.  This hook exists for
        the optimistic machinery, which overrides subsystems to detect
        reads that ran ahead of late-arriving messages.
        """
