"""The per-subsystem scheduler: Pia's two-level virtual time.

The scheduler enforces the paper's core invariant (section 2.1): *system
(subsystem) time is always less than or equal to all component local
times* at every delivery, so a component resumed from a receive is certain
its view of the world is up to date.  Components run ahead of subsystem
time freely; subsystem time only advances by consuming the event queue in
timestamp order.

The paper implements this on the Java VM by making sure its thread
scheduler only ever sees one runnable thread (section 3.1).  Here the same
effect — total control over execution order — falls out of running
component generators inline from a single dispatch loop.

The dispatch loop is the hottest code in the tree (every signal, wake
and control callback in every subsystem flows through it), so it is
written flat: a precomputed per-kind handler table instead of an
``if``/``elif`` chain, loop-invariant attribute lookups hoisted into
locals, the heap drained directly (the queue mutates it in place, so
the local binding stays valid across mid-run rollbacks), and the traced
path split out so a telemetry-off run touches no telemetry state at
all.
"""

from __future__ import annotations

from heapq import heappop
from typing import TYPE_CHECKING, Callable, Optional

from ..observability import NULL_TELEMETRY, TraceKind
from ..observability.flight import STRIDE_MASK as _FLIGHT_MASK
from .errors import CausalityError, SimulationError
from .events import NATIVE_EVENTS, Event, EventKind, EventQueue

if TYPE_CHECKING:  # pragma: no cover
    from .component import Component
    from .port import Port
    from .subsystem import Subsystem


class Scheduler:
    """Dispatches events for one subsystem in deterministic time order."""

    __slots__ = ("subsystem", "queue", "now", "dispatched", "stalls",
                 "post_step_hooks", "telemetry", "_handlers")

    def __init__(self, subsystem: "Subsystem") -> None:
        self.subsystem = subsystem
        self.queue = EventQueue()
        #: Subsystem virtual time (the paper's *system time*).
        self.now = 0.0
        #: Events dispatched since construction.
        self.dispatched = 0
        #: Number of times :meth:`run` stopped early at a horizon
        #: (the stalls of paper Fig. 3).
        self.stalls = 0
        #: Called after every dispatched event (switchpoint evaluation).
        self.post_step_hooks: list[Callable[[Event], None]] = []
        #: Telemetry sink; the owning Simulator/CoSimulation attaches a
        #: live one via Subsystem.attach_telemetry.
        self.telemetry = NULL_TELEMETRY
        #: Per-kind dispatch table, indexed by ``EventKind.code``: one
        #: tuple index replaces the old ``if``/``elif`` kind chain (and
        #: avoids hashing an enum member) on every event.
        table = {
            EventKind.SIGNAL: self._dispatch_signal,
            EventKind.INTERRUPT: self._dispatch_signal,
            EventKind.WAKE: self._dispatch_wake,
            EventKind.CONTROL: self._dispatch_control,
        }
        self._handlers = tuple(table[kind] for kind in EventKind)

    # ------------------------------------------------------------------
    def schedule(self, event: Event) -> Event:
        """Enqueue ``event``; scheduling into the past is a causality error.

        With tracing on, an event scheduled while a caused event is being
        dispatched inherits that dispatch's trace context, so causal
        chains survive local event hops between message edges.
        """
        telemetry = self.telemetry
        if telemetry.enabled and event.cause is None:
            cause = telemetry.cause
            if cause is not None:
                event = event.with_cause(cause)
        return self.queue.push(event, now=self.now)

    def next_event_time(self) -> float:
        """Virtual time of the earliest pending event (``inf`` when idle)."""
        return self.queue.next_time()

    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Dispatch the earliest event; returns it, or ``None`` when idle."""
        queue = self.queue
        if not queue:
            return None
        event = queue.pop()
        time = event.time
        if time < self.now:
            raise CausalityError(
                f"{self.subsystem.name}: event at {time:g} popped "
                f"after subsystem time reached {self.now:g}")
        self.now = time
        if self.telemetry.enabled:
            self._dispatch_traced(event)
        else:
            self._handlers[event.kind.code](event)
            self.dispatched += 1
        flight = self.telemetry.flight
        if flight.enabled:
            flight.tick_dispatch(self.subsystem.name, time)
        for hook in self.post_step_hooks:
            hook(event)
        return event

    def _dispatch_traced(self, event: Event) -> None:
        """The telemetry-on dispatch path (split out of the hot loop)."""
        telemetry = self.telemetry
        # Sends triggered by this dispatch mint child spans of the
        # event's cause; cleared even on a straggler abort.
        telemetry.cause = event.cause
        try:
            self._handlers[event.kind.code](event)
        finally:
            telemetry.cause = None
        self.dispatched += 1
        telemetry.count("scheduler.dispatched")
        if event.cause is not None:
            telemetry.trace(TraceKind.DISPATCH, time=event.time,
                            subject=self.subsystem.name,
                            event=event.kind.value,
                            cause=event.cause[1], hop=event.cause[3])
        else:
            telemetry.trace(TraceKind.DISPATCH, time=event.time,
                            subject=self.subsystem.name,
                            event=event.kind.value)

    def _record_stall(self, next_time: float, limit: float) -> None:
        """Account one horizon stall (shared by both run-loop backends)."""
        self.stalls += 1
        telemetry = self.telemetry
        flight = telemetry.flight
        if flight.enabled:
            flight.note("stall", self.subsystem.name, time=self.now,
                        horizon=limit, next_event=next_time)
        if telemetry.enabled:
            telemetry.count("scheduler.stalls")
            head = self.queue.peek()
            cause = head.cause if head is not None else None
            if cause is not None:
                # Link the stall to the chain of the event it is parked
                # behind.
                telemetry.trace(
                    TraceKind.STALL, time=self.now,
                    subject=self.subsystem.name,
                    horizon=limit, next_event=next_time,
                    cause=cause[1], hop=cause[3])
            else:
                telemetry.trace(
                    TraceKind.STALL, time=self.now,
                    subject=self.subsystem.name,
                    horizon=limit,
                    next_event=next_time)

    def _run_pure(self, until: float = float("inf"), *,
                  horizon=float("inf"),
                  max_events: Optional[int] = None) -> int:
        """Dispatch events while they fall at or before ``min(until, horizon)``.

        ``until`` is the caller's end-of-simulation bound; ``horizon`` is a
        safety bound imposed by conservative channels (paper section
        2.2.2.1) — either a number or a zero-argument callable re-evaluated
        before every dispatch, because sending on a channel can *shrink*
        the safe horizon mid-run (the echo bound).  Stopping at the horizon
        while work remains counts as a stall.  Returns the number of events
        dispatched.
        """
        horizon_fn = horizon if callable(horizon) else None
        count = 0
        # Hot loop: every loop-invariant attribute access is hoisted.
        # ``heap`` is the queue's own list — EventQueue mutates it in
        # place, so the binding survives a rollback triggered from a
        # CONTROL dispatch mid-run.  ``hooks`` is likewise the live list.
        heap = self.queue._heap
        handlers = self._handlers
        hooks = self.post_step_hooks
        telemetry = self.telemetry
        traced = telemetry.enabled
        # The flight recorder (always-on black box) samples every
        # STRIDE-th dispatch: the hot loop only ticks a *local* counter
        # and masks it — written back once, in the finally, so a
        # CausalityError still leaves the count consistent.
        flight = telemetry.flight
        flight_on = flight.enabled
        fseq = flight.dispatch_seq
        static_bound = (until if horizon_fn is not None
                        else until if until < horizon else horizon)
        try:
            while heap:
                if horizon_fn is not None:
                    limit = horizon_fn()
                    bound = until if until < limit else limit
                else:
                    limit = horizon
                    bound = static_bound
                next_time = heap[0][0].time
                if next_time > bound:
                    if next_time <= until and limit < until:
                        self._record_stall(next_time, limit)
                    break
                if max_events is not None and count >= max_events:
                    break
                # Inlined step(): pop, advance time, dispatch.
                event = heappop(heap)[1]
                if next_time < self.now:
                    raise CausalityError(
                        f"{self.subsystem.name}: event at {next_time:g} "
                        f"popped after subsystem time reached {self.now:g}")
                self.now = next_time
                if traced:
                    self._dispatch_traced(event)
                else:
                    handlers[event.kind.code](event)
                    self.dispatched += 1
                if hooks:
                    for hook in hooks:
                        hook(event)
                count += 1
                if flight_on:
                    fseq += 1
                    if not (fseq & _FLIGHT_MASK):
                        flight.note("dispatch", self.subsystem.name,
                                    time=next_time, seq=fseq)
        finally:
            if flight_on:
                flight.dispatch_seq = fseq
        return count

    def _run_native(self, until: float = float("inf"), *,
                    horizon=float("inf"),
                    max_events: Optional[int] = None) -> int:
        """The run loop over the native :class:`EventQueue`.

        Same contract and same observable behaviour as :meth:`_run_pure`
        (stall accounting included), but built around the queue's
        combined ``pop_ready(bound)`` C call — one native call per event
        replaces the peek/compare/pop triple.  The pure loop's direct
        ``_heap`` access does not exist on the C type, hence the split;
        which implementation backs :meth:`run` is decided once, at
        import time, by ``NATIVE_EVENTS``.
        """
        horizon_fn = horizon if callable(horizon) else None
        count = 0
        queue = self.queue
        pop_ready = queue.pop_ready
        handlers = self._handlers
        hooks = self.post_step_hooks
        telemetry = self.telemetry
        traced = telemetry.enabled
        # Flight recorder: same local-counter stride sampling as the
        # pure loop — a masked integer test per event, one write-back.
        flight = telemetry.flight
        flight_on = flight.enabled
        fseq = flight.dispatch_seq
        name = self.subsystem.name
        if max_events is None and horizon_fn is None:
            # Hot path: static bound, no event cap — one C call decides
            # "done or next event" per iteration.
            bound = until if until < horizon else horizon
            try:
                while True:
                    event = pop_ready(bound)
                    if event is None:
                        if queue:
                            next_time = queue.next_time()
                            if next_time <= until and horizon < until:
                                self._record_stall(next_time, horizon)
                        break
                    time = event.time
                    if time < self.now:
                        raise CausalityError(
                            f"{name}: event at {time:g} popped after "
                            f"subsystem time reached {self.now:g}")
                    self.now = time
                    if traced:
                        self._dispatch_traced(event)
                    else:
                        handlers[event.code](event)
                        self.dispatched += 1
                    if hooks:
                        for hook in hooks:
                            hook(event)
                    count += 1
                    if flight_on:
                        fseq += 1
                        if not (fseq & _FLIGHT_MASK):
                            flight.note("dispatch", name, time=time,
                                        seq=fseq)
            finally:
                if flight_on:
                    flight.dispatch_seq = fseq
            return count
        # General path: a callable horizon is re-evaluated before every
        # dispatch, and the bound check must stay *ahead* of the
        # max_events cut (a capped run parked at its horizon still
        # counts the stall) — the exact ordering of the pure loop.
        try:
            while queue:
                if horizon_fn is not None:
                    limit = horizon_fn()
                    bound = until if until < limit else limit
                else:
                    limit = horizon
                    bound = until if until < horizon else horizon
                next_time = queue.next_time()
                if next_time > bound:
                    if next_time <= until and limit < until:
                        self._record_stall(next_time, limit)
                    break
                if max_events is not None and count >= max_events:
                    break
                event = queue.pop()
                if next_time < self.now:
                    raise CausalityError(
                        f"{name}: event at {next_time:g} popped after "
                        f"subsystem time reached {self.now:g}")
                self.now = next_time
                if traced:
                    self._dispatch_traced(event)
                else:
                    handlers[event.code](event)
                    self.dispatched += 1
                if hooks:
                    for hook in hooks:
                        hook(event)
                count += 1
                if flight_on:
                    fseq += 1
                    if not (fseq & _FLIGHT_MASK):
                        flight.note("dispatch", name, time=next_time,
                                    seq=fseq)
        finally:
            if flight_on:
                flight.dispatch_seq = fseq
        return count

    #: The public run loop — bound once at class-definition time to the
    #: implementation matching the active event-queue backend.
    run = _run_native if NATIVE_EVENTS else _run_pure

    # ------------------------------------------------------------------
    def _dispatch_signal(self, event: Event) -> None:
        port: "Port" = event.target
        owner = port.owner
        if owner is None:
            raise SimulationError(
                f"signal delivered to orphan port {port.name!r}")
        self._check_local_time(owner, event)
        owner.deliver(event)

    def _dispatch_wake(self, event: Event) -> None:
        component: "Component" = event.target
        component.deliver(event)

    def _dispatch_control(self, event: Event) -> None:
        event.target(event)

    def _dispatch(self, event: Event) -> None:
        """Route one event to its per-kind handler (kept for callers and
        tests that dispatch outside the run loop)."""
        try:
            handler = self._handlers[event.kind.code]
        except (AttributeError, IndexError):  # pragma: no cover
            raise SimulationError(
                f"unknown event kind {event.kind!r}") from None
        handler(event)

    def _check_local_time(self, component: "Component", event: Event) -> None:
        """Invariant check: delivery never outruns the receiver's receive point.

        A component blocked at a receive has, conceptually, a local time
        equal to its pause point; deliveries earlier than that are legal
        (they queue), so the only real constraint is that subsystem time is
        monotone — already enforced in :meth:`step`.  This hook exists for
        the optimistic machinery, which overrides subsystems to detect
        reads that ran ahead of late-arriving messages.
        """
