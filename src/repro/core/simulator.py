"""The single-host simulator facade (paper section 2.1).

Wraps one :class:`~repro.core.subsystem.Subsystem` with the user-facing
conveniences: system construction, switchpoints and sliders, automatic
periodic checkpoints, and the optimistic run-with-recovery loop that
dynamically marks synchronous addresses and rewinds on violations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Union

from ..observability import RunReport, Telemetry, run_report
from .checkpoint import CheckpointStore
from .component import Component
from .errors import CheckpointError, ConsistencyViolation, SimulationError
from .events import Event, EventKind
from .net import Net
from .port import Port
from .runlevel import (
    DetailSlider,
    Switchpoint,
    SwitchpointEnvironment,
    SwitchpointManager,
)
from .subsystem import Subsystem
from .sync import SyncTable
from .timestamp import PRIORITY_CONTROL, Timestamp


class Simulator:
    """Build and run a complete system on a single host."""

    def __init__(self, name: str = "system", *,
                 checkpoint_store: Optional[CheckpointStore] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.subsystem = Subsystem(name, checkpoint_store=checkpoint_store)
        #: Run telemetry; on by default (the disabled path is a single
        #: attribute read, see repro.observability).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.subsystem.attach_telemetry(self.telemetry)
        env = SwitchpointEnvironment(local_time=self._local_time,
                                     signal=self._signal)
        self.switchpoints = SwitchpointManager(env, self.set_runlevel)
        self.subsystem.scheduler.post_step_hooks.append(self._poll_switchpoints)
        self._auto_interval: Optional[float] = None
        #: checkpoint id -> (switchpoint fired flags, switch history).
        self._switchpoint_states: dict = {}
        #: Rollback recoveries performed by :meth:`run_with_recovery`.
        self.recoveries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        return self.subsystem.add(component)

    def wire(self, name: str, *ports: Port, delay: float = 0.0) -> Net:
        return self.subsystem.wire(name, *ports, delay=delay)

    def component(self, name: str) -> Component:
        return self.subsystem.component(name)

    def net(self, name: str) -> Net:
        return self.subsystem.net(name)

    # ------------------------------------------------------------------
    # time & execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.subsystem.now

    def run(self, until: float = float("inf"), *,
            max_events: Optional[int] = None) -> int:
        """Run until the event queue drains or passes ``until``."""
        self.subsystem.start()
        # Components may have run ahead during start (they execute until
        # their first receive), so conditions can already hold.
        self._poll_switchpoints(None)
        return self.subsystem.run(until, max_events=max_events)

    def step(self) -> Optional[Event]:
        self.subsystem.start()
        return self.subsystem.scheduler.step()

    def run_with_recovery(self, until: float = float("inf"), *,
                          sync_tables: Iterable[SyncTable] = (),
                          max_rollbacks: int = 100) -> int:
        """Run optimistically; on a consistency violation, mark & rewind.

        This is the paper's dynamic treatment of interrupts (section
        2.1.1): run with all memory assumed safe; when a violation is
        detected, mark the address synchronous in its :class:`SyncTable`
        (which survives rollback) and restore the most recent checkpoint
        not later than the violating write, then re-execute.
        """
        tables = list(sync_tables)
        store = self.subsystem.checkpoints
        if store.latest() is None:
            # Taken *before* start: components run ahead the moment they
            # start, so any later image may already contain the offending
            # optimistic accesses.
            initial = self.subsystem.request_checkpoint(label="initial")
            self._switchpoint_states[initial] = (
                [sp.fired for sp in self.switchpoints.switchpoints],
                list(self.switchpoints.history))
        total = 0
        for __ in range(max_rollbacks + 1):
            try:
                total += self.run(until)
                return total
            except ConsistencyViolation as violation:
                self.recoveries += 1
                self._recover(violation, tables, store)
        raise SimulationError(
            f"gave up after {max_rollbacks} rollbacks; the system keeps "
            "violating consistency")

    def _recover(self, violation: ConsistencyViolation,
                 tables: list[SyncTable], store: CheckpointStore) -> None:
        if violation.address is not None:
            for table in tables:
                table.mark_synchronous(violation.address, dynamic=True)
        when = violation.violation_time
        if when is None:
            checkpoint_id = store.latest()
        elif violation.component is not None:
            # The image must predate the *component's* offending access —
            # it may have run far ahead of subsystem time.
            checkpoint_id = store.latest_for_component(violation.component,
                                                       when)
        else:
            checkpoint_id = store.latest_at_or_before(when)
        if checkpoint_id is None:
            raise CheckpointError(
                "consistency violation but no checkpoint to rewind to"
            ) from violation
        self.restore(checkpoint_id)
        image = store.image(checkpoint_id)
        for table in tables:
            table.forget_after(image.time)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, label: Optional[str] = None) -> int:
        self.subsystem.start()
        checkpoint_id = self.subsystem.request_checkpoint(label=label)
        # Switchpoint armed/fired state is simulation state too: a restore
        # must re-arm anything that fired after the checkpoint, or replay
        # would diverge from the original run.
        self._switchpoint_states[checkpoint_id] = (
            [sp.fired for sp in self.switchpoints.switchpoints],
            list(self.switchpoints.history),
        )
        return checkpoint_id

    def restore(self, checkpoint_id: int) -> None:
        self.subsystem.restore_checkpoint(checkpoint_id)
        saved = self._switchpoint_states.get(checkpoint_id)
        if saved is not None:
            fired_flags, history = saved
            for sp, fired in zip(self.switchpoints.switchpoints, fired_flags):
                sp.fired = fired
            self.switchpoints.history = list(history)

    def auto_checkpoint(self, interval: float) -> None:
        """Take a checkpoint every ``interval`` seconds of virtual time."""
        if interval <= 0:
            raise SimulationError(f"checkpoint interval must be > 0: {interval}")
        self._auto_interval = interval
        self._schedule_auto(self.now + interval)

    def _schedule_auto(self, at_time: float) -> None:
        self.subsystem.scheduler.schedule(
            Event(Timestamp(at_time, PRIORITY_CONTROL), EventKind.CONTROL,
                  target=self._auto_tick))

    def _auto_tick(self, event: Event) -> None:
        # Once the simulation has drained, stop: re-arming would keep an
        # otherwise-finished run alive forever, and a checkpoint after the
        # last event would record nothing new.
        if not self.subsystem.scheduler.queue:
            return
        self.checkpoint(label="auto")
        if self._auto_interval is not None:
            self._schedule_auto(event.time + self._auto_interval)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def report(self, *, title: Optional[str] = None) -> RunReport:
        """Assemble the :class:`~repro.observability.RunReport` so far."""
        return run_report(self, title=title)

    # ------------------------------------------------------------------
    # run levels
    # ------------------------------------------------------------------
    def set_runlevel(self, target: str, level: str) -> None:
        self.subsystem.set_runlevel(target, level)

    def add_switchpoint(self, text_or_sp: Union[str, Switchpoint], *,
                        once: bool = True) -> Switchpoint:
        """Register a switchpoint from the run-control file syntax."""
        return self.switchpoints.add(text_or_sp, once=once)

    def slider(self, targets: Iterable[str], levels: Iterable[str]) -> DetailSlider:
        """Create the paper's detail-level slider over ``targets``."""
        return DetailSlider(list(targets), list(levels), self.set_runlevel)

    # ------------------------------------------------------------------
    # switchpoint environment
    # ------------------------------------------------------------------
    def _local_time(self, component: str) -> float:
        return self.subsystem.component(component).local_time

    def _signal(self, net: str) -> Any:
        return self.subsystem.net(net).value

    def _poll_switchpoints(self, event: Event) -> None:
        if self.switchpoints.switchpoints:
            self.switchpoints.poll(self.now)
