"""Subsystems: the unit of scheduling and distribution.

Each Pia node contains one or more subsystems, and each subsystem contains
some fragment of the design under test together with a scheduler object
that enforces the local timing semantics (paper section 2.2).  A single
subsystem behaves exactly like the single-host version of Pia.

Components, interfaces and ports are atomic: they are always wholly
contained in one subsystem.  Nets are the only user object that may be
split across subsystems (handled by :mod:`repro.distributed.partition`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Union

from .checkpoint import CheckpointStore
from .component import Component
from .errors import ConfigurationError, RunLevelError
from .net import Net
from .port import Port
from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..distributed.channel import ChannelEndpoint
    from ..distributed.node import PiaNode


class Subsystem:
    """A schedulable fragment of the system under test."""

    def __init__(self, name: str, *,
                 checkpoint_store: Optional[CheckpointStore] = None) -> None:
        self.name = name
        self.components: dict[str, Component] = {}
        self.nets: dict[str, Net] = {}
        self.scheduler = Scheduler(self)
        self.checkpoints = checkpoint_store if checkpoint_store is not None \
            else CheckpointStore()
        #: Channel endpoints keyed by channel id (distributed layer).
        self.channels: dict[str, "ChannelEndpoint"] = {}
        self.node: "Optional[PiaNode]" = None
        self._started = False

    def attach_telemetry(self, telemetry) -> None:
        """Point this subsystem's scheduler and checkpoint store at the
        owning simulation's :class:`~repro.observability.Telemetry`."""
        self.scheduler.telemetry = telemetry
        self.checkpoints.telemetry = telemetry

    @property
    def telemetry(self):
        return self.scheduler.telemetry

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise ConfigurationError(
                f"{self.name}: duplicate component {component.name}")
        if component.subsystem is not None:
            raise ConfigurationError(
                f"component {component.name} already belongs to "
                f"{component.subsystem.name}")
        component.subsystem = self
        self.components[component.name] = component
        return component

    def remove(self, name: str) -> Component:
        """Detach a component (used when migrating between subsystems)."""
        component = self.components.pop(name)
        component.subsystem = None
        return component

    def add_net(self, net: Net) -> Net:
        if net.name in self.nets:
            raise ConfigurationError(f"{self.name}: duplicate net {net.name}")
        net.subsystem = self
        self.nets[net.name] = net
        return net

    def wire(self, name: str, *ports: Port, delay: float = 0.0) -> Net:
        """Create a net and connect the given ports to it."""
        net = self.add_net(Net(name, delay=delay))
        net.connect(*ports)
        return net

    def component(self, name: str) -> Component:
        try:
            return self.components[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no component named {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no net named {name!r}") from None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    def start(self) -> None:
        """Start every component (idempotent)."""
        if self._started:
            return
        self._started = True
        for component in self._ordered_components():
            component.start()

    def run(self, until: float = float("inf"), *,
            horizon=float("inf"),
            max_events: Optional[int] = None) -> int:
        """Run the local scheduler; see :meth:`Scheduler.run`."""
        self.start()
        return self.scheduler.run(until, horizon=horizon, max_events=max_events)

    def next_event_time(self) -> float:
        return self.scheduler.next_event_time()

    def idle(self) -> bool:
        """No pending events (components may still be blocked on input)."""
        return not self.scheduler.queue

    def _ordered_components(self) -> list[Component]:
        return [self.components[name] for name in sorted(self.components)]

    # ------------------------------------------------------------------
    # run levels
    # ------------------------------------------------------------------
    def set_runlevel(self, target: str, level: str) -> None:
        """Change the detail level of a component or one interface.

        ``target`` is ``"Component"`` (switch the component and all its
        interfaces) or ``"Component.interface"``.  Takes effect at the next
        transfer — the safe point of section 2.1.3.
        """
        if "." in target:
            comp_name, iface_name = target.split(".", 1)
            component = self.component(comp_name)
            component.interface(iface_name).set_level(level)
            return
        component = self.component(target)
        component.runlevel = level
        failed = []
        for iface in component.interfaces.values():
            if level in iface.protocol.levels():
                iface.set_level(level)
            else:
                failed.append(iface.name)
        if failed and not component.interfaces.keys() - set(failed):
            # No interface understands the level at all: surface the mistake.
            raise RunLevelError(
                f"{target}: no interface supports level {level!r}")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def request_checkpoint(self, *, label: Optional[str] = None,
                           checkpoint_id: Optional[int] = None) -> int:
        """Save a local checkpoint at the earliest safe point — i.e. now.

        Component activations are atomic, so between event dispatches every
        component is at a stable boundary and the paper's
        save-before-next-receive rule holds trivially.
        """
        return self.checkpoints.take(self, label=label,
                                     checkpoint_id=checkpoint_id)

    def restore_checkpoint(self, checkpoint_id: int) -> None:
        self.checkpoints.restore(self, checkpoint_id)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Subsystem {self.name} t={self.now:g} "
                f"components={len(self.components)}>")
