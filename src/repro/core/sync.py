"""Synchronous memory locations and optimistic violation detection.

Paper section 2.1.1: components with interrupt-style data receipt are made
safe by marking the memory locations interrupt handlers touch as
*synchronous* — the component must bring its local time level with system
time before reading or writing them.  When such locations cannot be
determined statically, the simulator makes the optimistic assumption,
treats all memory as safe, and *detects* violations: an external write
stamped earlier than a read the component already performed.  On detection
the offending address is dynamically marked synchronous and the simulation
rewinds using the checkpoint facilities.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from .errors import ConsistencyViolation


class SyncPolicy(enum.Enum):
    """How a component treats unmarked memory."""

    #: Only statically marked addresses synchronise; others are trusted
    #: blindly (no detection).  The baseline semantics.
    STATIC = "static"
    #: Unmarked addresses are accessed optimistically with access logging;
    #: late external writes raise :class:`ConsistencyViolation`.
    OPTIMISTIC = "optimistic"


class SyncTable:
    """The set of synchronous addresses plus the optimistic access log.

    One table is shared between a processor's memory and the recovery
    machinery.  It deliberately does **not** participate in checkpoints:
    an address marked synchronous after a violation must stay marked when
    the simulation rewinds, otherwise re-execution would hit the same
    violation forever.
    """

    __slots__ = ("synchronous", "policy", "owner", "access_log",
                 "violations", "dynamic_marks")

    def __init__(self, synchronous: Iterable[int] = (),
                 policy: SyncPolicy = SyncPolicy.STATIC,
                 *, owner: Optional[str] = None) -> None:
        self.synchronous: set[int] = set(synchronous)
        self.policy = policy
        #: Name of the component whose accesses this table guards.
        self.owner = owner
        #: addr -> latest component local time that read/wrote it.
        self.access_log: dict[int, float] = {}
        #: Violations detected so far (addr, write_time, access_time).
        self.violations: list[tuple[int, float, float]] = []
        #: Addresses marked synchronous dynamically (subset of synchronous).
        self.dynamic_marks: set[int] = set()

    # ------------------------------------------------------------------
    def is_synchronous(self, addr: int) -> bool:
        return addr in self.synchronous

    def mark_synchronous(self, addr: int, *, dynamic: bool = False) -> None:
        self.synchronous.add(addr)
        if dynamic:
            self.dynamic_marks.add(addr)

    def mark_range(self, start: int, stop: int) -> None:
        self.synchronous.update(range(start, stop))

    # ------------------------------------------------------------------
    def record_access(self, addr: int, local_time: float) -> None:
        """Log a component (CPU) access for later violation checks.

        Called on every guarded memory access, so the common STATIC case
        must cost exactly one identity check.
        """
        if self.policy is not SyncPolicy.OPTIMISTIC:
            return
        if addr not in self.synchronous:
            log = self.access_log
            if local_time > log.get(addr, float("-inf")):
                log[addr] = local_time

    def check_external_write(self, addr: int, write_time: float) -> None:
        """Validate an asynchronous (interrupt handler) write at ``write_time``.

        If the owning component already accessed ``addr`` at a local time
        *later* than the write, it consumed a stale value: raise.
        """
        if self.policy is not SyncPolicy.OPTIMISTIC:
            return
        if addr in self.synchronous:
            return
        accessed = self.access_log.get(addr)
        if accessed is not None and accessed > write_time:
            self.violations.append((addr, write_time, accessed))
            raise ConsistencyViolation(
                f"address {addr:#x} written at t={write_time:g} but already "
                f"accessed at t={accessed:g}",
                address=addr, violation_time=write_time, component=self.owner)

    def forget_after(self, time: float) -> None:
        """Drop access-log entries later than ``time`` (after a rollback)."""
        self.access_log = {addr: t for addr, t in self.access_log.items()
                           if t <= time}

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SyncTable {self.policy.value} "
                f"{len(self.synchronous)} synchronous>")
