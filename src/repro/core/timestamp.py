"""Virtual-time stamps with a deterministic total order.

Pia maintains a two-level hierarchy of virtual time (paper section 2.1): a
*subsystem time* plus per-component *local times*.  Every scheduled event
carries a :class:`Timestamp` that orders it totally against every other
event, so simulation runs are bit-for-bit reproducible.

A timestamp is ``(time, priority, seq)``:

``time``
    Virtual time in seconds.
``priority``
    Breaks ties at equal virtual time.  Lower values run first.  The
    framework reserves a few bands (see the ``PRIORITY_*`` constants) so
    that, for example, an interrupt arriving at exactly the instant a
    component synchronises is delivered *before* the component resumes.
``seq``
    A per-scheduler monotone counter breaking any remaining ties in
    scheduling order.
"""

from __future__ import annotations

import math
from typing import NamedTuple

#: Control events (checkpoint marks, run-level switches) preempt everything.
PRIORITY_CONTROL = 0
#: Interrupts outrank ordinary signals so a synchronising CPU sees them.
PRIORITY_INTERRUPT = 5
#: Ordinary signal/message delivery.
PRIORITY_SIGNAL = 10
#: Wake-ups for components blocked on ``WaitUntil``/``Sync`` run after all
#: same-instant deliveries, so the component observes a settled world.
PRIORITY_WAKE = 20


class Timestamp(NamedTuple):
    """A totally ordered point in virtual time."""

    time: float
    priority: int = PRIORITY_SIGNAL
    seq: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"t={self.time:g}/p{self.priority}/#{self.seq}"

    def advanced(self, dt: float) -> "Timestamp":
        """Return a copy shifted ``dt`` seconds into the future."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative dt={dt}")
        return self._replace(time=self.time + dt)


#: The beginning of virtual time.
ZERO = Timestamp(0.0, PRIORITY_CONTROL, 0)

#: A timestamp later than any event the simulation can produce.
FOREVER = Timestamp(math.inf, PRIORITY_WAKE, 2**62)


def earliest(*stamps: Timestamp) -> Timestamp:
    """Return the smallest of the given timestamps (``FOREVER`` if empty)."""
    return min(stamps, default=FOREVER)
