"""Debugging support (paper sections 1 and 5): breakpoints, watchpoints,
single-stepping, time travel, and VCD waveform dumping."""

from .debugger import (
    Breakpoint,
    BreakReason,
    Debugger,
    DebuggerError,
    WatchRecord,
)
from .distributed import DistributedDebugger
from .vcd import VcdError, VcdTracer

__all__ = [
    "BreakReason", "Breakpoint", "Debugger", "DebuggerError", "DistributedDebugger", "VcdError",
    "VcdTracer", "WatchRecord",
]
