"""The Pia debugger (paper section 5: "Current work is in the extension
of Pia to include a debugger").

The paper asks for "debugging support for the parts of the system that are
in hardware, the parts in software, the parts that are in simulation, as
well as the system as a whole" (section 1).  This debugger provides the
simulation-level half of that wish:

* **breakpoints** on virtual time, on a component's *local* time (the
  two-level model means these differ!), on a net taking a value, or on an
  arbitrary event predicate;
* **watchpoints** logging every change of chosen nets;
* **single-stepping** event by event;
* **inspection** of the full system state (``where``), including each
  component's local time, block reason and user attributes;
* **time travel**: because checkpoints are first-class, ``rewind()`` jumps
  back to any checkpoint and re-executes — a debugger feature simulators
  get for free and real systems never do.

The debugger drives a single-host :class:`~repro.core.simulator.Simulator`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..core.component import ProcessComponent
from ..core.errors import PiaError
from ..core.events import Event, EventKind
from ..core.simulator import Simulator

_bp_ids = itertools.count(1)


class DebuggerError(PiaError):
    """Misuse of the debugger API."""


@dataclass
class Breakpoint:
    """A condition that halts the run when it becomes true."""

    bp_id: int
    description: str
    condition: Callable[[Simulator, Optional[Event]], bool]
    enabled: bool = True
    once: bool = False
    hits: int = 0

    def check(self, sim: Simulator, event: Optional[Event]) -> bool:
        if not self.enabled:
            return False
        if self.condition(sim, event):
            self.hits += 1
            if self.once:
                self.enabled = False
            return True
        return False


@dataclass
class BreakReason:
    """Why the run stopped."""

    breakpoint: Optional[Breakpoint]
    time: float
    event: Optional[Event] = None

    @property
    def finished(self) -> bool:
        return self.breakpoint is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.finished:
            return f"finished at t={self.time:g}"
        return (f"breakpoint #{self.breakpoint.bp_id} "
                f"({self.breakpoint.description}) at t={self.time:g}")


@dataclass
class WatchRecord:
    time: float
    net: str
    value: Any


class Debugger:
    """Interactive control over a single-host simulation."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.breakpoints: Dict[int, Breakpoint] = {}
        self.watch_log: List[WatchRecord] = []
        self._watched: set = set()
        #: Ring buffer of recent events (enable with :meth:`trace`).
        self.trace_log: List[str] = []
        self._trace_limit = 0

    # ------------------------------------------------------------------
    # breakpoints
    # ------------------------------------------------------------------
    def _add(self, description: str, condition, *, once: bool) -> Breakpoint:
        bp = Breakpoint(next(_bp_ids), description, condition, once=once)
        self.breakpoints[bp.bp_id] = bp
        return bp

    def break_at(self, time: float, *, once: bool = True) -> Breakpoint:
        """Halt when subsystem (system) time reaches ``time``."""
        return self._add(
            f"t >= {time:g}",
            lambda sim, event: sim.now >= time,
            once=once)

    def break_at_local_time(self, component: str, time: float, *,
                            once: bool = True) -> Breakpoint:
        """Halt when ``component``'s *local* time reaches ``time`` — which
        can be long before system time does (run-ahead)."""
        return self._add(
            f"{component}.localtime >= {time:g}",
            lambda sim, event: sim.component(component).local_time >= time,
            once=once)

    def break_on_signal(self, net: str, value: Any = None, *,
                        once: bool = True) -> Breakpoint:
        """Halt when a value (``value`` if given) is *delivered* on ``net``.

        Components run ahead, so a net's ``value`` attribute updates when
        the driver posts; the debugger instead halts at the virtual time
        the signal reaches a listener — the observable instant.
        """
        def condition(sim: Simulator, event: Optional[Event]) -> bool:
            if event is None or event.kind not in (EventKind.SIGNAL,
                                                   EventKind.INTERRUPT):
                return False
            port = event.target
            if port.net is None or port.net.name != net:
                return False
            return value is None or event.payload == value

        label = f"net {net}" + ("" if value is None else f" == {value!r}")
        return self._add(label, condition, once=once)

    def break_when(self, predicate: Callable[[Simulator], bool], *,
                   description: str = "<predicate>",
                   once: bool = True) -> Breakpoint:
        """Halt on an arbitrary condition over the simulator."""
        return self._add(description,
                         lambda sim, event: predicate(sim), once=once)

    def delete(self, bp_id: int) -> None:
        if bp_id not in self.breakpoints:
            raise DebuggerError(f"no breakpoint #{bp_id}")
        del self.breakpoints[bp_id]

    # ------------------------------------------------------------------
    # watch & trace
    # ------------------------------------------------------------------
    def watch(self, net: str) -> None:
        """Log every value change of ``net`` into :attr:`watch_log`."""
        if net in self._watched:
            return
        target = self.sim.net(net)
        target.observers.append(
            lambda n, time, value: self.watch_log.append(
                WatchRecord(time, n.name, value)))
        self._watched.add(net)

    def trace(self, limit: int = 1000) -> None:
        """Keep a rolling textual trace of dispatched events."""
        self._trace_limit = limit

    def _record_trace(self, event: Event) -> None:
        if not self._trace_limit:
            return
        target = getattr(event.target, "full_name",
                         getattr(event.target, "name", repr(event.target)))
        self.trace_log.append(
            f"t={event.time:g} {event.kind.value} -> {target} "
            f"payload={event.payload!r}")
        if len(self.trace_log) > self._trace_limit:
            del self.trace_log[: len(self.trace_log) - self._trace_limit]

    # ------------------------------------------------------------------
    # execution control
    # ------------------------------------------------------------------
    def step(self, count: int = 1) -> BreakReason:
        """Dispatch up to ``count`` events, ignoring breakpoints."""
        self.sim.subsystem.start()
        last = None
        for __ in range(count):
            event = self.sim.step()
            if event is None:
                break
            self._record_trace(event)
            last = event
        return BreakReason(None, self.sim.now, last)

    def run(self, until: float = float("inf")) -> BreakReason:
        """Run until a breakpoint fires, ``until`` passes, or it drains.

        Like any debugger's *continue*, at least one event is dispatched
        before conditions are re-evaluated — otherwise a still-true
        breakpoint would pin the simulation in place.
        """
        self.sim.subsystem.start()
        while True:
            if self.sim.subsystem.next_event_time() > until:
                return BreakReason(None, self.sim.now)
            event = self.sim.step()
            if event is None:
                return BreakReason(None, self.sim.now)
            self._record_trace(event)
            for bp in list(self.breakpoints.values()):
                if bp.check(self.sim, event):
                    return BreakReason(bp, self.sim.now, event)

    # ------------------------------------------------------------------
    # time travel
    # ------------------------------------------------------------------
    def snapshot(self, label: Optional[str] = None) -> int:
        return self.sim.checkpoint(label or "debugger")

    def rewind(self, checkpoint_id: Optional[int] = None) -> float:
        """Jump back to a checkpoint (default: the most recent one)."""
        store = self.sim.subsystem.checkpoints
        if checkpoint_id is None:
            checkpoint_id = store.latest()
        if checkpoint_id is None:
            raise DebuggerError("no checkpoint to rewind to — "
                                "call snapshot() first")
        self.sim.restore(checkpoint_id)
        return self.sim.now

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def where(self) -> str:
        """A human-readable summary of the whole system's state."""
        subsystem = self.sim.subsystem
        lines = [f"subsystem {subsystem.name}: t={subsystem.now:g}, "
                 f"{len(subsystem.scheduler.queue)} pending events, "
                 f"next at t={subsystem.next_event_time():g}"]
        for name in sorted(subsystem.components):
            component = subsystem.components[name]
            status = "finished" if component.finished else (
                self._block_text(component) or "runnable")
            lines.append(f"  {name}: local t={component.local_time:g} "
                         f"[{status}] level={component.runlevel}")
        return "\n".join(lines)

    @staticmethod
    def _block_text(component) -> Optional[str]:
        if isinstance(component, ProcessComponent) and component.is_blocked():
            block = component._block
            detail = block.port or block.interface or f"token {block.token}"
            return f"blocked: {block.kind} {detail}"
        return None

    def inspect(self, component: str) -> Dict[str, Any]:
        """A component's user-visible state (its checkpointable attrs)."""
        target = self.sim.component(component)
        state = dict(target._user_attrs())
        state["__local_time__"] = target.local_time
        state["__finished__"] = target.finished
        return state

    def backtrace(self, last: int = 20) -> List[str]:
        """The most recent trace lines (enable with :meth:`trace`)."""
        return self.trace_log[-last:]
