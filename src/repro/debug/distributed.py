"""Debugging the system as a whole (paper section 1).

"Finally, it should include debugging support for the parts of the system
that are in hardware, the parts in software, the parts that are in
simulation, as well as the system as a whole."

:class:`DistributedDebugger` extends the debugging surface across a
:class:`~repro.distributed.executor.CoSimulation`: breakpoints on global
or per-subsystem time, on any component's local time, on signal deliveries
anywhere in the system; a global ``where`` spanning every node; and time
travel through Chandy-Lamport snapshots — the whole distributed state,
channels included, rewound in one call.

Halting works by hooking every subsystem scheduler's post-step and raising
a control signal out of the executor's run loop; the matching event has
already been dispatched when the halt lands (the same semantics as the
single-host debugger, and of any debugger's *continue*).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import itertools

from ..core.component import ProcessComponent
from ..core.events import Event, EventKind
from ..distributed.executor import CoSimulation
from .debugger import Breakpoint, BreakReason, DebuggerError, WatchRecord

_bp_ids = itertools.count(1000)


class _Halt(Exception):
    """Internal control flow: a breakpoint fired inside the run loop."""

    def __init__(self, reason: BreakReason) -> None:
        self.reason = reason


class DistributedDebugger:
    """Breakpoints, inspection and time travel over a whole CoSimulation."""

    def __init__(self, cosim: CoSimulation) -> None:
        self.cosim = cosim
        self.breakpoints: Dict[int, Breakpoint] = {}
        self.watch_log: List[WatchRecord] = []
        self._watched: set = set()
        self._armed = False
        for subsystem in cosim.subsystems.values():
            subsystem.scheduler.post_step_hooks.append(self._hook)

    # ------------------------------------------------------------------
    # breakpoints
    # ------------------------------------------------------------------
    def _add(self, description: str, condition, *, once: bool) -> Breakpoint:
        bp = Breakpoint(next(_bp_ids), description, condition, once=once)
        self.breakpoints[bp.bp_id] = bp
        return bp

    def break_at_global_time(self, time: float, *,
                             once: bool = True) -> Breakpoint:
        """Halt when the *slowest* subsystem passes ``time``."""
        return self._add(
            f"global t >= {time:g}",
            lambda cosim, event: cosim.global_time() >= time, once=once)

    def break_at_subsystem_time(self, subsystem: str, time: float, *,
                                once: bool = True) -> Breakpoint:
        return self._add(
            f"{subsystem} t >= {time:g}",
            lambda cosim, event: cosim.subsystem(subsystem).now >= time,
            once=once)

    def break_at_local_time(self, component: str, time: float, *,
                            once: bool = True) -> Breakpoint:
        return self._add(
            f"{component}.localtime >= {time:g}",
            lambda cosim, event:
                cosim.component(component).local_time >= time,
            once=once)

    def break_on_signal(self, net: str, value: Any = None, *,
                        once: bool = True) -> Breakpoint:
        def condition(cosim: CoSimulation, event: Optional[Event]) -> bool:
            if event is None or event.kind not in (EventKind.SIGNAL,
                                                   EventKind.INTERRUPT):
                return False
            port = event.target
            if port.net is None or port.net.name != net:
                return False
            return value is None or event.payload == value

        label = f"net {net}" + ("" if value is None else f" == {value!r}")
        return self._add(label, condition, once=once)

    def break_when(self, predicate: Callable[[CoSimulation], bool], *,
                   description: str = "<predicate>",
                   once: bool = True) -> Breakpoint:
        return self._add(description,
                         lambda cosim, event: predicate(cosim), once=once)

    def delete(self, bp_id: int) -> None:
        if bp_id not in self.breakpoints:
            raise DebuggerError(f"no breakpoint #{bp_id}")
        del self.breakpoints[bp_id]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _hook(self, event: Event) -> None:
        if not self._armed:
            return
        for bp in list(self.breakpoints.values()):
            if bp.check(self.cosim, event):
                self._armed = False
                raise _Halt(BreakReason(bp, self.cosim.global_time(), event))

    def run(self, until: float = float("inf")) -> BreakReason:
        """Run the whole distributed system until a breakpoint fires."""
        self._armed = True
        try:
            self.cosim.run(until=until)
        except _Halt as halt:
            return halt.reason
        finally:
            self._armed = False
        return BreakReason(None, self.cosim.global_time())

    # ------------------------------------------------------------------
    # watch
    # ------------------------------------------------------------------
    def watch(self, net: str) -> None:
        """Watch every half of ``net`` across all subsystems."""
        if net in self._watched:
            return
        found = False
        for subsystem in self.cosim.subsystems.values():
            target = subsystem.nets.get(net)
            if target is None:
                continue
            found = True
            target.observers.append(
                lambda n, time, value, ss=subsystem.name:
                    self.watch_log.append(
                        WatchRecord(time, f"{ss}:{n.name}", value)))
        if not found:
            raise DebuggerError(f"no net named {net!r} in any subsystem")
        self._watched.add(net)

    # ------------------------------------------------------------------
    # time travel (through Chandy-Lamport snapshots)
    # ------------------------------------------------------------------
    def snapshot(self) -> str:
        return self.cosim.snapshot()

    def rewind(self, snapshot_id: Optional[str] = None) -> float:
        completed = self.cosim.registry.completed()
        if snapshot_id is None:
            if not completed:
                raise DebuggerError("no completed snapshot to rewind to — "
                                    "call snapshot() first")
            snap = completed[-1]
        else:
            snap = self.cosim.registry.snapshots.get(snapshot_id)
            if snap is None or not snap.complete:
                raise DebuggerError(
                    f"no completed snapshot {snapshot_id!r}")
        self.cosim.recovery.rollback_to(snap)
        return self.cosim.global_time()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def where(self) -> str:
        lines = [f"global t={self.cosim.global_time():g} over "
                 f"{len(self.cosim.subsystems)} subsystems / "
                 f"{len(self.cosim.nodes)} nodes"]
        for name in sorted(self.cosim.subsystems):
            subsystem = self.cosim.subsystems[name]
            node = subsystem.node.name if subsystem.node else "?"
            lines.append(
                f"  {name} @ {node}: t={subsystem.now:g} "
                f"next={subsystem.next_event_time():g} "
                f"stalls={subsystem.scheduler.stalls}")
            for comp_name in sorted(subsystem.components):
                component = subsystem.components[comp_name]
                if comp_name.startswith("__channel"):
                    continue
                status = "finished" if component.finished else (
                    self._block_text(component) or "runnable")
                lines.append(f"    {comp_name}: local t="
                             f"{component.local_time:g} [{status}]")
        return "\n".join(lines)

    @staticmethod
    def _block_text(component) -> Optional[str]:
        if isinstance(component, ProcessComponent) and component.is_blocked():
            block = component._block
            detail = block.port or block.interface or f"token {block.token}"
            return f"blocked: {block.kind} {detail}"
        return None

    def inspect(self, component: str) -> Dict[str, Any]:
        target = self.cosim.component(component)
        state = dict(target._user_attrs())
        state["__local_time__"] = target.local_time
        state["__finished__"] = target.finished
        return state
