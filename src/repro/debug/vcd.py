"""VCD waveform dumping — view a co-simulation in any EDA wave viewer.

The paper's designers "view all parts of the system ... at several levels
of detail"; the standard artefact for that in EDA practice is the IEEE
1364 Value Change Dump.  :class:`VcdTracer` hooks net observers (and,
optionally, component local times as real-valued signals — a direct
visualisation of the paper's two-level virtual time) and writes a ``.vcd``
file readable by GTKWave and friends.

Values are encoded per type: ints as binary vectors, floats as ``real``,
bytes by their length (a pragmatic choice for protocol payloads), and
anything else as a toggling event wire.
"""

from __future__ import annotations

import io
import time as _time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from ..core.errors import PiaError
from ..core.net import Net

#: Printable VCD identifier code characters.
_ID_CHARS = [chr(c) for c in range(33, 127)]


class VcdError(PiaError):
    """Tracer misuse or unwritable output."""


def _identifier(index: int) -> str:
    """The classic VCD short-id encoding (!, ", ... !!, !", ...)."""
    digits = []
    while True:
        digits.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
        if index == 0:
            break
        index -= 1
    return "".join(reversed(digits))


@dataclass
class _Signal:
    name: str
    ident: str
    kind: str            # "wire" | "real" | "event"
    width: int
    changes: List[Tuple[int, Any]]


class VcdTracer:
    """Collects value changes and renders them as a VCD document."""

    def __init__(self, *, timescale: str = "1 ns",
                 module: str = "pia") -> None:
        self.timescale = timescale
        self.module = module
        self._per_unit = self._seconds_per_unit(timescale)
        self._signals: Dict[str, _Signal] = {}
        self._count = 0
        self._clocks: List[Tuple[Any, _Signal]] = []

    @staticmethod
    def _seconds_per_unit(timescale: str) -> float:
        try:
            magnitude, unit = timescale.split()
            scale = {"s": 1.0, "ms": 1e-3, "us": 1e-6,
                     "ns": 1e-9, "ps": 1e-12, "fs": 1e-15}[unit]
            return int(magnitude) * scale
        except (ValueError, KeyError) as exc:
            raise VcdError(
                f"bad timescale {timescale!r}: expected e.g. '1 ns'"
            ) from exc

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def _new_signal(self, name: str, kind: str, width: int) -> _Signal:
        if name in self._signals:
            raise VcdError(f"signal {name!r} already traced")
        signal = _Signal(name, _identifier(self._count), kind, width, [])
        self._count += 1
        self._signals[name] = signal
        return signal

    def trace_net(self, net: Net, *, width: int = 32,
                  name: Optional[str] = None) -> None:
        """Record every value change of ``net``."""
        signal = self._new_signal(name or net.name, "wire", width)
        net.observers.append(
            lambda n, time, value: self._record(signal, time, value))

    def trace_local_time(self, component, *,
                         name: Optional[str] = None) -> None:
        """Record a component's local virtual time as a ``real`` signal.

        Sampled on every recorded change of anything else plus explicit
        :meth:`sample` calls — enough to see run-ahead versus system time.
        """
        signal = self._new_signal(
            name or f"{component.name}.localtime", "real", 64)
        self._clocks.append((component, signal))

    def sample(self, now: float) -> None:
        """Sample all traced local-time signals at virtual time ``now``."""
        for component, signal in self._clocks:
            ticks = self._ticks(now)
            if not signal.changes or \
                    signal.changes[-1][1] != component.local_time:
                signal.changes.append((ticks, float(component.local_time)))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _ticks(self, seconds: float) -> int:
        return max(0, int(round(seconds / self._per_unit)))

    def _record(self, signal: _Signal, time: float, value: Any) -> None:
        signal.changes.append((self._ticks(time), value))
        if self._clocks:
            self.sample(time)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(signal: _Signal, value: Any) -> str:
        if signal.kind == "real":
            return f"r{float(value):.9g} {signal.ident}"
        if isinstance(value, bool):
            return f"{int(value)}{signal.ident}"
        if isinstance(value, int):
            masked = value & ((1 << signal.width) - 1)
            return f"b{masked:b} {signal.ident}"
        if isinstance(value, float):
            return f"r{value:.9g} {signal.ident}"
        if isinstance(value, (bytes, bytearray, memoryview)):
            return f"b{len(value):b} {signal.ident}"   # payload length
        # arbitrary object: toggle an event wire
        return f"1{signal.ident}"

    def render(self) -> str:
        out = io.StringIO()
        out.write("$date\n    (deterministic reproduction run)\n$end\n")
        out.write("$version\n    pia-repro VcdTracer\n$end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.module} $end\n")
        for signal in self._signals.values():
            kind = "real" if signal.kind == "real" else "wire"
            width = 64 if kind == "real" else signal.width
            safe = signal.name.replace(" ", "_")
            out.write(f"$var {kind} {width} {signal.ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        merged: List[Tuple[int, str]] = []
        for signal in self._signals.values():
            for ticks, value in signal.changes:
                merged.append((ticks, self._encode(signal, value)))
        merged.sort(key=lambda item: item[0])

        out.write("$dumpvars\n$end\n")
        current: Optional[int] = None
        for ticks, encoded in merged:
            if ticks != current:
                out.write(f"#{ticks}\n")
                current = ticks
            out.write(encoded + "\n")
        return out.getvalue()

    def write(self, path: str) -> str:
        text = self.render()
        try:
            with open(path, "w", encoding="ascii") as handle:
                handle.write(text)
        except OSError as exc:
            raise VcdError(f"cannot write {path!r}: {exc}") from exc
        return path

    # ------------------------------------------------------------------
    def change_count(self) -> int:
        return sum(len(signal.changes) for signal in self._signals.values())
