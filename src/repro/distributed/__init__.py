"""The geographically distributed layer (paper section 2.2)."""

from .channel import (
    Channel,
    ChannelComponent,
    ChannelEndpoint,
    ChannelMode,
    StragglerError,
)
from .conservative import (
    UNBOUNDED,
    SafeTimeClient,
    SafeTimeService,
    compute_grant,
    local_floor,
)
from .executor import FAILURE_POLICIES, CoSimulation
from .node import PiaNode, Socket
from .optimistic import RecoveryManager
from .partition import Deployment, Design, NetSpec, deploy, suggest_partition
from .snapshot import (
    GlobalSnapshot,
    SnapshotManager,
    SnapshotRegistry,
    SubsystemCut,
    new_snapshot_id,
)
from .threaded import ThreadedCoSimulation
from .topology import communication_digraph, offending_cycles, validate

__all__ = [
    "Channel", "ChannelComponent", "ChannelEndpoint", "ChannelMode",
    "CoSimulation", "Deployment", "Design", "FAILURE_POLICIES",
    "GlobalSnapshot", "NetSpec",
    "PiaNode", "RecoveryManager", "SafeTimeClient", "SafeTimeService",
    "SnapshotManager", "SnapshotRegistry", "Socket", "StragglerError",
    "SubsystemCut", "ThreadedCoSimulation", "UNBOUNDED",
    "communication_digraph", "compute_grant", "deploy", "local_floor",
    "new_snapshot_id", "offending_cycles", "suggest_partition", "validate",
]
