"""The geographically distributed layer (paper section 2.2)."""

from .channel import (
    Channel,
    ChannelComponent,
    ChannelEndpoint,
    ChannelMode,
    StragglerError,
)
from .conservative import (
    UNBOUNDED,
    SafeTimeClient,
    SafeTimeService,
    compute_grant,
    local_floor,
)
from .executor import FAILURE_POLICIES, CoSimulation
from .multiprocess import (
    ChannelSpec,
    MultiprocessCoSimulation,
    SubsystemSpec,
    WorkerPool,
    register_factory,
    resolve_factory,
)
from .node import PiaNode, Socket
from .optimistic import RecoveryManager
from .partition import Deployment, Design, NetSpec, deploy, suggest_partition
from .snapshot import (
    GlobalSnapshot,
    SnapshotManager,
    SnapshotRegistry,
    SubsystemCut,
    new_snapshot_id,
)
from .threaded import LockedSafeTimeService, ThreadedCoSimulation
from .topology import communication_digraph, offending_cycles, validate

__all__ = [
    "Channel", "ChannelComponent", "ChannelEndpoint", "ChannelMode",
    "ChannelSpec", "CoSimulation", "Deployment", "Design",
    "FAILURE_POLICIES", "GlobalSnapshot", "LockedSafeTimeService",
    "MultiprocessCoSimulation", "NetSpec",
    "PiaNode", "RecoveryManager", "SafeTimeClient", "SafeTimeService",
    "SnapshotManager", "SnapshotRegistry", "Socket", "StragglerError",
    "SubsystemCut", "SubsystemSpec", "ThreadedCoSimulation", "UNBOUNDED",
    "WorkerPool",
    "communication_digraph", "compute_grant", "deploy", "local_floor",
    "new_snapshot_id", "offending_cycles", "register_factory",
    "resolve_factory", "suggest_partition", "validate",
]
