"""The geographically distributed layer (paper section 2.2)."""

from .channel import (
    Channel,
    ChannelComponent,
    ChannelEndpoint,
    ChannelMode,
    StragglerError,
)
from .conservative import (
    UNBOUNDED,
    SafeTimeClient,
    SafeTimeService,
    compute_grant,
    local_floor,
)
from .executor import FAILURE_POLICIES, CoSimulation
from .migration import (
    MigrationRecord,
    NodeArchive,
    PortableImage,
    archive_node,
    restore_node,
)
from .multiprocess import (
    MP_FAILURE_POLICIES,
    ChannelSpec,
    MultiprocessCoSimulation,
    SubsystemSpec,
    WorkerPool,
    register_factory,
    resolve_factory,
)
from .node import PiaNode, Socket
from .optimistic import RecoveryManager
from .partition import Deployment, Design, NetSpec, deploy, suggest_partition
from .snapshot import (
    GlobalSnapshot,
    SnapshotManager,
    SnapshotRegistry,
    SubsystemCut,
    new_snapshot_id,
)
from .threaded import LockedSafeTimeService, ThreadedCoSimulation
from .topology import communication_digraph, offending_cycles, validate

__all__ = [
    "Channel", "ChannelComponent", "ChannelEndpoint", "ChannelMode",
    "ChannelSpec", "CoSimulation", "Deployment", "Design",
    "FAILURE_POLICIES", "GlobalSnapshot", "LockedSafeTimeService",
    "MP_FAILURE_POLICIES", "MigrationRecord",
    "MultiprocessCoSimulation", "NetSpec", "NodeArchive",
    "PiaNode", "PortableImage", "RecoveryManager", "SafeTimeClient",
    "SafeTimeService",
    "SnapshotManager", "SnapshotRegistry", "Socket", "StragglerError",
    "SubsystemCut", "SubsystemSpec", "ThreadedCoSimulation", "UNBOUNDED",
    "WorkerPool", "archive_node",
    "communication_digraph", "compute_grant", "deploy", "local_floor",
    "new_snapshot_id", "offending_cycles", "register_factory",
    "resolve_factory", "restore_node", "suggest_partition", "validate",
]
