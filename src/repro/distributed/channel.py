"""Channels between subsystems (paper sections 2.2.1 and 2.2.2).

Between each pair of communicating subsystems is a *channel*, across which
all communication occurs.  Each channel is associated with a pair of dummy
*channel components* (one per subsystem); every net split across the pair
contributes a hidden port owned by that channel component.  Channel
components are proxies for the opposite subsystem: they forward local net
activity over the transport and inject remote activity into the local
scheduler.  They have no thread of their own — they run on the subsystem's
scheduler, exactly as the paper describes.

A channel is *conservative* or *optimistic*:

* on a conservative channel, a subsystem may not advance past the safe
  time granted by the opposite side (see
  :mod:`repro.distributed.conservative`);
* on an optimistic channel it may run ahead, accepting that a straggler
  message forces a checkpoint restore (see
  :mod:`repro.distributed.optimistic`).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..core.component import Component
from ..core.errors import ConfigurationError, SimulationError
from ..core.events import Event, EventKind
from ..core.net import Net
from ..core.port import Port, PortDirection
from ..core.timestamp import PRIORITY_SIGNAL, Timestamp
from ..transport.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from ..core.subsystem import Subsystem
    from .node import PiaNode


class ChannelMode(enum.Enum):
    CONSERVATIVE = "conservative"
    OPTIMISTIC = "optimistic"


class StragglerError(SimulationError):
    """An optimistic channel delivered a message into the local past."""

    def __init__(self, message: str, *, channel_id: str,
                 straggler_time: float, cause: Optional[tuple] = None) -> None:
        super().__init__(message)
        self.channel_id = channel_id
        self.straggler_time = straggler_time
        #: Trace context of the straggler message (rollback records link
        #: to its causal chain), when tracing was on.
        self.cause = cause


class ChannelComponent(Component):
    """The dummy proxy component owning a channel's hidden ports.

    Delivery of a SIGNAL event to one of its hidden ports means a local
    net changed value; the component forwards it across the channel.
    """

    def __init__(self, name: str, endpoint: "ChannelEndpoint") -> None:
        super().__init__(name)
        self.endpoint = endpoint
        self._seal_infra()

    def deliver(self, event: Event) -> None:
        if event.kind not in (EventKind.SIGNAL, EventKind.INTERRUPT):
            return
        port: Port = event.target
        time = event.time
        self.local_time = max(self.local_time, time)
        self.endpoint.forward(port.name, time, event.payload)

    # Channel components save/restore with the subsystem like any other
    # component; the endpoint's safe-time bookkeeping is reset separately
    # by the recovery manager on a global rollback.


class ChannelEndpoint:
    """One subsystem's half of a channel.

    Slotted: endpoints sit on the per-message receive path (every remote
    signal flows through :meth:`receive_signal`/:meth:`inject`), so the
    fixed attribute layout keeps those paths free of dict lookups.
    """

    __slots__ = ("channel", "subsystem", "peer_subsystem", "peer_node",
                 "component", "_nets", "peer_grant", "granted",
                 "pending_echoes", "forwarded", "injected",
                 "injected_reported", "granted_reported", "passive_skips",
                 "stragglers", "safe_time_requests", "peer_want", "severed")

    def __init__(self, channel: "Channel", subsystem: "Subsystem",
                 peer_subsystem: str, peer_node: str) -> None:
        self.channel = channel
        self.subsystem = subsystem
        self.peer_subsystem = peer_subsystem
        self.peer_node = peer_node
        self.component = ChannelComponent(
            f"__channel_{channel.channel_id}_{subsystem.name}", self)
        subsystem.add(self.component)
        subsystem.channels[channel.channel_id] = self
        #: hidden-port name -> local half-net it taps.
        self._nets: dict[str, Net] = {}
        # --- safe-time state (conservative protocol) ---
        #: Latest safe time the peer granted us.  A grant only bounds
        #: traffic *not caused by our own messages*; echoes of our sends
        #: are bounded by the echo ledger below.
        self.peer_grant = 0.0
        #: Latest safe time we granted the peer (stats/debugging).
        self.granted = 0.0
        #: Outstanding sends the peer has not yet confirmed consuming:
        #: (send ordinal, earliest possible echo arrival time).
        self.pending_echoes: "deque[tuple[int, float]]" = deque()
        #: Messages sent/received over this endpoint (consumption
        #: confirmation rides on these counts in grant replies).
        self.forwarded = 0
        self.injected = 0
        #: Injected count last reported to the peer (batched fast path):
        #: consumption beyond this is pushed at the next round boundary
        #: so the peer can release its echo ledger without a call.
        self.injected_reported = 0
        #: Watermark of the last grant value communicated to the peer
        #: (served, piggybacked or pushed).  A floor that rises above it
        #: is news the peer cannot learn any other way while idle.
        self.granted_reported = 0.0
        #: Consecutive passively-skipped refreshes (liveness backstop).
        self.passive_skips = 0
        self.stragglers = 0
        self.safe_time_requests = 0
        #: The peer requested a safe time we could not yet grant (batched
        #: fast path): once our floor passes this, a grant is pushed to it
        #: instead of waiting for its next request round trip.
        self.peer_want = 0.0
        #: True once the peer is gone for good (``drop-node`` policy).
        self.severed = False

    # ------------------------------------------------------------------
    @property
    def mode(self) -> ChannelMode:
        return self.channel.mode

    @property
    def node(self) -> "PiaNode":
        node = self.subsystem.node
        if node is None:
            raise ConfigurationError(
                f"subsystem {self.subsystem.name} is not attached to a node")
        return node

    @property
    def delay_out(self) -> float:
        """Virtual-time delay this channel adds in the outgoing direction."""
        return self.channel.delay

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def tap(self, net: Net) -> Port:
        """Attach a hidden port for ``net``; local posts will be forwarded."""
        if net.name in self._nets:
            raise ConfigurationError(
                f"channel {self.channel.channel_id} already taps {net.name}")
        port = self.component.add_port(net.name, PortDirection.INOUT,
                                       hidden=True)
        net.connect(port)
        self._nets[net.name] = net
        return port

    def taps(self) -> list:
        return sorted(self._nets)

    # ------------------------------------------------------------------
    # outgoing
    # ------------------------------------------------------------------
    def forward(self, net_name: str, time: float, value: Any) -> None:
        """Ship a local net change to the peer subsystem."""
        if self.severed:
            return
        channel = self.channel
        node = self.node
        stamp = time + channel.delay
        self.forwarded += 1
        node.send_channel_message(Message(
            kind=MessageKind.SIGNAL,
            src=node.name,
            dst=self.peer_node,
            channel=channel.channel_id,
            time=stamp,
            payload=(self.subsystem.name, net_name, value),
        ))
        # Echo ledger: anything the peer does in reaction to this message
        # can come back no earlier than stamp + return delay.  The entry
        # is released only when a grant reply confirms the peer consumed
        # the message — at which point echoes are reflected in the peer's
        # own floor (its queue and its own echo ledgers).
        self.pending_echoes.append((self.forwarded,
                                    stamp + channel.delay))

    def echo_floor(self) -> float:
        """Earliest possible arrival of an unconfirmed echo."""
        return self.pending_echoes[0][1] if self.pending_echoes \
            else float("inf")

    def effective_horizon(self) -> float:
        """How far this endpoint lets its subsystem run."""
        return min(self.peer_grant, self.echo_floor())

    def confirm_consumed(self, peer_injected: int) -> None:
        """Release echo entries the peer has confirmed consuming."""
        released = False
        while self.pending_echoes and \
                self.pending_echoes[0][0] <= peer_injected:
            self.pending_echoes.popleft()
            released = True
        if released:
            # Passive confirmation is flowing; re-arm the skip budget.
            self.passive_skips = 0

    def apply_grant(self, grant: float, peer_injected: int,
                    peer_forwarded: int) -> None:
        """Apply a *piggybacked* safe-time grant (batched fast path).

        Same acceptance rule as a served grant reply
        (:meth:`~repro.distributed.conservative.SafeTimeClient.refresh`):
        release confirmed echo entries, then accept the grant only if
        nothing of the peer's is still in flight towards us.  Grants ride
        behind the data messages of their batch frame, so the injected
        count already reflects everything the grant's floor assumed.  A
        stale (lower) grant is always safe; a grant the in-flight check
        rejects is simply dropped — the explicit request path remains the
        fallback, so this is a liveness optimisation, never a safety one.
        """
        if self.severed:
            return
        self.confirm_consumed(peer_injected)
        if self.injected >= peer_forwarded:
            self.peer_grant = grant
            telemetry = self.subsystem.scheduler.telemetry
            if telemetry.enabled:
                telemetry.count("safetime.piggybacked")

    def reset_sync_state(self, *, forwarded: int = 0,
                         injected: int = 0) -> None:
        """Void all safe-time state (global rollback support)."""
        self.peer_grant = float("inf") if self.severed else 0.0
        self.granted = 0.0
        self.peer_want = 0.0
        self.pending_echoes.clear()
        self.forwarded = forwarded
        self.injected = injected
        self.injected_reported = injected
        self.granted_reported = float("inf") if self.severed else 0.0
        self.passive_skips = 0

    def sever(self) -> None:
        """Permanently disconnect: the peer is gone and must never block
        (or receive traffic from) this side again."""
        self.severed = True
        self.peer_grant = float("inf")
        self.peer_want = 0.0
        self.granted_reported = float("inf")
        self.pending_echoes.clear()

    # ------------------------------------------------------------------
    # incoming
    # ------------------------------------------------------------------
    def receive_signal(self, message: Message) -> None:
        """Inject a remote net change into the local scheduler."""
        __, net_name, value = message.payload
        net = self._nets.get(net_name)
        if net is None:
            raise ConfigurationError(
                f"channel {self.channel.channel_id}: unknown net {net_name!r}")
        now = self.subsystem.scheduler.now
        if message.time < now:
            self.stragglers += 1
            if self.mode is ChannelMode.CONSERVATIVE:
                raise SimulationError(
                    f"conservative channel {self.channel.channel_id} received "
                    f"a message at {message.time:g} after subsystem "
                    f"{self.subsystem.name} reached {now:g} — the safe-time "
                    "protocol has been violated")
            raise StragglerError(
                f"optimistic channel {self.channel.channel_id}: straggler at "
                f"{message.time:g} < subsystem time {now:g}",
                channel_id=self.channel.channel_id,
                straggler_time=message.time, cause=message.trace)
        self.inject(net, message.time, value)

    def inject(self, net: Net, time: float, value: Any) -> None:
        """Schedule a remote value on the local half-net (hidden port
        excluded, so the value does not bounce straight back)."""
        self.injected += 1
        net.posts += 1
        net.value = value
        net.last_change = time
        for observer in net.observers:
            observer(net, time, value)
        schedule = self.subsystem.scheduler.schedule
        hidden = self.component.ports.get(net.name)
        ts = Timestamp(time, PRIORITY_SIGNAL)
        signal = EventKind.SIGNAL
        for port in net.ports:
            if port is hidden:
                continue
            if not port.direction.can_receive and not port.hidden:
                continue
            schedule(Event(ts, signal, port, value))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ChannelEndpoint {self.channel.channel_id} "
                f"@{self.subsystem.name} {self.mode.value}>")


class Channel:
    """A pair of endpoints joining two subsystems (possibly across nodes)."""

    def __init__(self, channel_id: str, mode: ChannelMode = ChannelMode.CONSERVATIVE,
                 *, delay: float = 0.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"channel {channel_id}: negative delay")
        self.channel_id = channel_id
        self.mode = mode
        #: Virtual time a value takes to cross (also the lookahead the
        #: safe-time protocol can exploit).
        self.delay = delay
        self.endpoints: dict[str, ChannelEndpoint] = {}

    def attach(self, subsystem: "Subsystem", *, peer_subsystem: str,
               peer_node: str) -> ChannelEndpoint:
        if subsystem.name in self.endpoints:
            raise ConfigurationError(
                f"channel {self.channel_id} already attached to "
                f"{subsystem.name}")
        if len(self.endpoints) >= 2:
            raise ConfigurationError(
                f"channel {self.channel_id} already has two endpoints")
        endpoint = ChannelEndpoint(self, subsystem, peer_subsystem, peer_node)
        self.endpoints[subsystem.name] = endpoint
        return endpoint

    def endpoint(self, subsystem_name: str) -> ChannelEndpoint:
        try:
            return self.endpoints[subsystem_name]
        except KeyError:
            raise ConfigurationError(
                f"channel {self.channel_id}: no endpoint at "
                f"{subsystem_name!r}") from None

    def other(self, subsystem_name: str) -> ChannelEndpoint:
        for name, endpoint in self.endpoints.items():
            if name != subsystem_name:
                return endpoint
        raise ConfigurationError(
            f"channel {self.channel_id} has no peer for {subsystem_name!r}")

    def split_net(self, net_a: Net, net_b: Net) -> None:
        """Register the two halves of a split net with the endpoints.

        ``net_a`` must live in one endpoint's subsystem and ``net_b`` in
        the other's; both halves share the original net's name.
        """
        if net_a.name != net_b.name:
            raise ConfigurationError(
                f"split halves must share a name: {net_a.name} != {net_b.name}")
        sides = list(self.endpoints.values())
        if len(sides) != 2:
            raise ConfigurationError(
                f"channel {self.channel_id} needs both endpoints attached "
                "before splitting nets")
        by_subsystem = {ep.subsystem: ep for ep in sides}
        ep_a = by_subsystem.get(net_a.subsystem)
        ep_b = by_subsystem.get(net_b.subsystem)
        if ep_a is None or ep_b is None or ep_a is ep_b:
            raise ConfigurationError(
                f"net halves {net_a.name!r} are not on this channel's "
                "two subsystems")
        ep_a.tap(net_a)
        ep_b.tap(net_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Channel {self.channel_id} {self.mode.value} d={self.delay:g}>"
