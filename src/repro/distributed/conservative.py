"""The safe-time protocol for conservative channels (paper section 2.2.2.1).

"Before a subsystem can advance its version of virtual time, it must first
make sure that no conservative channels will send it any messages with an
earlier time-stamp.  To ensure this, each subsystem can request a safe time
from the subsystem on the far end of the channel."

The grant a subsystem reports is "essentially its own subsystem time with
all restrictions from the opposite processor removed" — otherwise the two
would deadlock waiting on each other.  Concretely, the grant to requester
``R`` is::

    min( next local event time,
         effective horizons of conservative channels whose peer is not R )
    + channel delay towards R

A grant only bounds traffic *not caused by R's own messages*; the echoes R
may provoke are bounded on R's side by its **echo ledger**: every send
records the earliest time a reaction could come back, and the entry is
released only once a grant reply confirms the peer consumed the message
(at which point any reaction is visible in the peer's own floor).  Grant
replies also carry the peer's sent-message count so a requester never
accepts a grant while peer traffic is still in flight towards it.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..core.errors import ConfigurationError
from ..observability import TraceKind
from ..transport.message import Message, MessageKind
from .channel import ChannelEndpoint, ChannelMode

if TYPE_CHECKING:  # pragma: no cover
    from ..core.subsystem import Subsystem
    from .node import PiaNode

#: Grants at or beyond this are treated as "unrestricted".
UNBOUNDED = float("inf")

#: Batched fast path: consecutive refreshes a client may skip for an
#: endpoint whose grant already covers the desired time (only its own
#: unconfirmed echo ledger restricts it) before falling back to an
#: explicit request as a liveness backstop.  Kept small so the backstop
#: fires well inside the executor's widened deadlock budget.
PASSIVE_SKIP_LIMIT = 2


def local_floor(subsystem: "Subsystem", *, excluding: Optional[str] = None,
                conservative_override: bool = False) -> float:
    """Lower bound on the stamp of anything ``subsystem`` will send next.

    Every future send originates either from a pending local event, from a
    message arriving on an in-channel (bounded by that channel's effective
    horizon: the peer's grant capped by our own unconfirmed echoes), or as
    an echo of something the *requester* sent us — which the requester
    itself bounds with its echo ledger, hence ``excluding`` removes that
    restriction (the paper's deadlock-avoidance rule).
    ``conservative_override`` makes optimistic channels count as
    restrictions too (used while a recovery window forces conservatism).
    """
    floor = subsystem.next_event_time()
    for endpoint in subsystem.channels.values():
        if endpoint.peer_subsystem == excluding:
            continue
        if endpoint.mode is ChannelMode.CONSERVATIVE or conservative_override:
            floor = min(floor, endpoint.effective_horizon())
    return floor


def compute_grant(subsystem: "Subsystem", requester: str,
                  *, conservative_override: bool = False) -> float:
    """The safe time ``subsystem`` grants to peer subsystem ``requester``.

    Grants are *not* monotone: they describe the subsystem's current
    floor, which legitimately drops when new work (e.g. an echo of the
    requester's own message) enters its queue.  The requester's echo
    ledger and the in-flight count check in :meth:`SafeTimeClient.refresh`
    are what make accepting a grant safe.
    """
    endpoint = _endpoint_towards(subsystem, requester)
    grant = local_floor(subsystem, excluding=requester,
                        conservative_override=conservative_override) \
        + endpoint.channel.delay
    endpoint.granted = grant
    return grant


def _endpoint_towards(subsystem: "Subsystem", peer: str) -> ChannelEndpoint:
    for endpoint in subsystem.channels.values():
        if endpoint.peer_subsystem == peer:
            return endpoint
    raise ConfigurationError(
        f"{subsystem.name}: no channel towards {peer!r}")


class SafeTimeService:
    """Per-node server side of the safe-time protocol.

    Before granting, the service transitively refreshes the target
    subsystem's *own* restricting horizons (excluding the requester, and
    never back along the request path): an idle subsystem in the middle of
    a chain never refreshes on its own, yet its stale horizons must not
    poison the grants it hands out.  The simple-cycle-only topology rule
    bounds this recursion.
    """

    def __init__(self, node: "PiaNode", *,
                 client_for=None,
                 conservative_override=lambda: False) -> None:
        self.node = node
        #: Resolver from subsystem name to its :class:`SafeTimeClient`.
        self.client_for = client_for
        self.conservative_override = conservative_override
        self.requests_served = 0
        node.call_services[MessageKind.SAFE_TIME_REQUEST] = self.serve

    def serve(self, message: Message) -> Message:
        requester, target, path = message.payload
        subsystem = self.node.subsystem(target)
        self.requests_served += 1
        subsystem.scheduler.telemetry.count("safetime.served")
        desired = message.time
        if self.client_for is not None:
            client = self.client_for(target)
            if client is not None:
                client.refresh(desired, exclude=requester,
                               path=tuple(path) + (target,))
        grant = compute_grant(subsystem, requester,
                              conservative_override=self.conservative_override())
        endpoint = _endpoint_towards(subsystem, requester)
        # An unsatisfied request leaves the peer stalled; remember what it
        # wanted so a batching executor can push a grant the moment the
        # floor passes it, sparing the peer its next request round trip.
        endpoint.peer_want = desired if grant < desired else 0.0
        endpoint.injected_reported = endpoint.injected
        endpoint.granted_reported = grant
        # The reply carries consumption/production counts so the requester
        # can (a) release confirmed echo-ledger entries and (b) refuse the
        # grant while our messages to it are still in flight.
        return message.reply(MessageKind.SAFE_TIME_REPLY, time=grant,
                             payload=(endpoint.injected, endpoint.forwarded))


class SafeTimeClient:
    """Per-subsystem client side: refresh horizons, compute run bounds."""

    def __init__(self, subsystem: "Subsystem", *,
                 conservative_override=lambda: False) -> None:
        self.subsystem = subsystem
        self.conservative_override = conservative_override
        self.requests_sent = 0
        # Request ids are purely diagnostic (calls are synchronous, so
        # nothing correlates by id), but they are *encoded on the wire* —
        # an instance-local counter keeps the byte accounting of
        # identical runs identical regardless of what the process ran
        # before.
        self._request_ids = itertools.count(1)

    def _restricting_endpoints(self):
        for endpoint in self.subsystem.channels.values():
            if endpoint.mode is ChannelMode.CONSERVATIVE \
                    or self.conservative_override():
                yield endpoint

    def horizon(self) -> float:
        """How far this subsystem may currently run."""
        return min((ep.effective_horizon()
                    for ep in self._restricting_endpoints()),
                   default=UNBOUNDED)

    def refresh(self, desired: float, *, exclude: Optional[str] = None,
                path: tuple = ()) -> float:
        """Request fresh grants from every peer restricting us below
        ``desired``; returns the new horizon.

        ``exclude`` removes the requester's restriction (paper 2.2.2.1);
        ``path`` is the chain of subsystems already being served, so
        transitive refreshes terminate.
        """
        node = self.subsystem.node
        if node is None:
            raise ConfigurationError(
                f"{self.subsystem.name} is not attached to a node")
        if not path:
            path = (self.subsystem.name,)
        passive = bool(getattr(node.transport, "batching", False))
        for endpoint in self._restricting_endpoints():
            if endpoint.peer_subsystem == exclude:
                continue
            if endpoint.peer_subsystem in path:
                continue
            if endpoint.effective_horizon() >= desired:
                continue
            if passive and endpoint.peer_grant >= desired \
                    and endpoint.passive_skips < PASSIVE_SKIP_LIMIT:
                # The peer's grant already covers ``desired``; the only
                # live restriction is our own unconfirmed echo ledger.  A
                # request could only confirm consumption — and under
                # batching the peer reports that passively (counts on
                # piggybacked and pushed grants), so the round trip is
                # skipped.  The skip budget keeps an explicit request as
                # the liveness backstop.
                endpoint.passive_skips += 1
                continue
            endpoint.passive_skips = 0
            endpoint.safe_time_requests += 1
            self.requests_sent += 1
            telemetry = self.subsystem.scheduler.telemetry
            telemetry.count("safetime.requests")
            reply = node.transport.call(Message(
                kind=MessageKind.SAFE_TIME_REQUEST,
                src=node.name,
                dst=endpoint.peer_node,
                channel=endpoint.channel.channel_id,
                time=desired,
                payload=(self.subsystem.name, endpoint.peer_subsystem, path),
                request_id=next(self._request_ids),
            ))
            peer_injected, peer_forwarded = reply.payload
            # Echoes of sends the peer has consumed are now reflected in
            # the grant itself; release their ledger entries.
            endpoint.confirm_consumed(peer_injected)
            if endpoint.injected >= peer_forwarded:
                # Nothing of the peer's is in flight towards us: the grant
                # fully describes its floor.  (Otherwise keep the old
                # grant; the in-flight message will be pumped before the
                # next refresh.)
                endpoint.peer_grant = reply.time
                if telemetry.enabled:
                    telemetry.count("safetime.grants_accepted")
                    telemetry.trace(TraceKind.GRANT, time=reply.time,
                                    subject=self.subsystem.name,
                                    peer=endpoint.peer_subsystem,
                                    channel=endpoint.channel.channel_id,
                                    desired=desired)
        return self.horizon()

    def blocking_endpoint(self) -> Optional[ChannelEndpoint]:
        """The endpoint currently pinning this subsystem's horizon.

        Returns the restricting endpoint with the lowest effective
        horizon (ties broken by peer subsystem name), or ``None`` when
        nothing restricts the subsystem below infinity.  This is a live
        diagnostic — under the threaded/multiprocess executors the answer
        depends on when grants happen to land, so it feeds status views,
        not deterministic reports.
        """
        worst: Optional[ChannelEndpoint] = None
        worst_h = UNBOUNDED
        for endpoint in self._restricting_endpoints():
            if endpoint.severed:
                continue
            h = endpoint.effective_horizon()
            if worst is None or h < worst_h or (
                    h == worst_h
                    and endpoint.peer_subsystem < worst.peer_subsystem):
                worst, worst_h = endpoint, h
        if worst is None or worst_h == UNBOUNDED:
            return None
        return worst
