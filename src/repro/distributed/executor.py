"""The deterministic co-simulation executor.

Orchestrates a set of Pia nodes in one process: pumps the transport,
enforces the conservative safe-time discipline, triggers periodic
Chandy-Lamport snapshots, and recovers from optimistic stragglers by
coordinated rollback.  Being cooperative and single-threaded, it gives the
same total control over execution order the paper obtains by tricking the
JVM scheduler (section 3.1) — and makes every distributed experiment
reproducible bit for bit.  The genuinely concurrent deployment lives in
:mod:`repro.distributed.threaded`.
"""

from __future__ import annotations

import itertools
import time as _time
from typing import Any, Dict, Iterable, List, Optional, Union

from ..core.errors import (
    ConfigurationError,
    DeadlockError,
    LinkDown,
    NodeFailure,
)
from ..core.runlevel import (
    DetailSlider,
    Switchpoint,
    SwitchpointEnvironment,
    SwitchpointManager,
)
from ..core.subsystem import Subsystem
from ..faults import FailureDetector, FaultInjector, FaultPlan, RetryPolicy
from ..observability import RunReport, Telemetry, TraceKind, run_report
from ..transport.inmemory import InMemoryTransport
from ..transport.latency import SAME_HOST, LatencyModel
from ..transport.message import Message, MessageKind
from .channel import Channel, ChannelMode, StragglerError
from .conservative import (
    SafeTimeClient,
    SafeTimeService,
    UNBOUNDED,
    compute_grant,
)
from .node import PiaNode
from .optimistic import RecoveryManager
from .snapshot import SnapshotManager, SnapshotRegistry, new_snapshot_id
from . import topology

#: What the executor does once the failure detector confirms a node loss.
FAILURE_POLICIES = ("recover", "raise", "drop-node")


class CoSimulation:
    """A complete distributed Pia system under deterministic execution."""

    def __init__(self, *, transport: Optional[InMemoryTransport] = None,
                 default_model: LatencyModel = SAME_HOST,
                 snapshot_interval: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 failure_policy: str = "recover",
                 heartbeat_misses: int = 3,
                 batching: bool = False) -> None:
        self.transport = transport if transport is not None \
            else InMemoryTransport(default_model=default_model,
                                   batching=batching)
        if batching:
            self.transport.batching = True
        # Batched transports flush per-destination frames at safe points;
        # the executor supplies the safe-time grants piggybacked on them.
        set_provider = getattr(self.transport, "set_piggyback_provider", None)
        if set_provider is not None:
            set_provider(self._piggyback_grants)
        #: Run telemetry shared by every layer; on by default (the
        #: disabled path is a single attribute read per hot-path visit).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        attach = getattr(self.transport, "attach_telemetry", None)
        if attach is not None:
            attach(self.telemetry)
        self.nodes: Dict[str, PiaNode] = {}
        self.subsystems: Dict[str, Subsystem] = {}
        self.channels: Dict[str, Channel] = {}
        self.registry = SnapshotRegistry()
        self.recovery = RecoveryManager(self.subsystems, self.transport,
                                        self.registry)
        self.recovery.telemetry = self.telemetry
        self.recovery.on_rollback = self._restore_switchpoint_state
        #: snapshot id -> (switchpoint fired flags, switch history).
        self._switchpoint_states: Dict[str, tuple] = {}
        self._sync: Dict[str, SafeTimeClient] = {}
        self._managers: Dict[str, SnapshotManager] = {}
        #: Take a Chandy-Lamport snapshot every this many virtual seconds
        #: (needed whenever optimistic channels are in use).
        self.snapshot_interval = snapshot_interval
        self._last_snapshot_time = 0.0
        env = SwitchpointEnvironment(local_time=self._local_time,
                                     signal=self._signal)
        self.switchpoints = SwitchpointManager(env, self.set_runlevel)
        # --- fault plane -------------------------------------------------
        if failure_policy not in FAILURE_POLICIES:
            raise ConfigurationError(
                f"failure_policy must be one of {FAILURE_POLICIES}: "
                f"{failure_policy!r}")
        self.failure_policy = failure_policy
        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        self.detector: Optional[FailureDetector] = None
        self._pending_crashes: List = []
        self._down_nodes: set = set()
        self._dead_nodes: set = set()
        self._dead_subsystems: set = set()
        if fault_plan is not None:
            self.fault_injector = FaultInjector(
                fault_plan, retry_policy=retry_policy,
                telemetry=self.telemetry)
            attach_faults = getattr(self.transport, "attach_faults", None)
            if attach_faults is None:
                raise ConfigurationError(
                    f"transport {type(self.transport).__name__} does not "
                    "support fault injection (no attach_faults)")
            attach_faults(self.fault_injector)
            #: Heartbeat staleness, measured in run-loop rounds here.
            self.detector = FailureDetector(timeout=float(heartbeat_misses))
            self._pending_crashes = sorted(
                fault_plan.crashes, key=lambda c: (c.at_time, c.node))
        #: Extra settle budget: a held (delayed) message is in flight even
        #: when a pump round moves nothing.
        self._settle_slack = 1 + (fault_plan.max_delay_ticks()
                                  if fault_plan is not None else 0)
        #: Batched fast path: a stalled subsystem re-requests the same
        #: safe time at most every this many rounds — in between it waits
        #: for the granting side to *push* once its floor passes the want
        #: (1 frame instead of the 2-frame request round trip).
        self._refresh_every = 4
        #: subsystem name -> (desired, round of last request).
        self._refresh_throttle: Dict[str, tuple] = {}
        self._started = False
        #: Channel-id allocator.  Instance-local, not module-global: ids
        #: travel on the wire, so a process-global counter would make the
        #: byte counts of otherwise identical runs depend on how many
        #: systems the process built before this one.
        self._channel_ids = itertools.count(1)
        #: Total rounds the run loop executed.
        self.rounds = 0
        #: Wall-clock seconds spent inside :meth:`run`.
        self.cpu_seconds = 0.0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> PiaNode:
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node {name!r}")
        node = PiaNode(name, self.transport)
        self.nodes[name] = node
        SafeTimeService(node, client_for=self._sync.get,
                        conservative_override=self._conservative_now)
        manager = SnapshotManager(
            node, self.registry, expected_subsystems=lambda: set(self.subsystems))
        manager.telemetry = self.telemetry
        self._managers[name] = manager
        return node

    def node(self, name: str) -> PiaNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"no node named {name!r}") from None

    def add_subsystem(self, node: Union[str, PiaNode],
                      subsystem: Union[str, Subsystem]) -> Subsystem:
        if isinstance(node, str):
            node = self.node(node)
        if isinstance(subsystem, str):
            subsystem = Subsystem(subsystem)
        if subsystem.name in self.subsystems:
            raise ConfigurationError(
                f"duplicate subsystem {subsystem.name!r}")
        node.add_subsystem(subsystem)
        subsystem.attach_telemetry(self.telemetry)
        self.subsystems[subsystem.name] = subsystem
        self._sync[subsystem.name] = SafeTimeClient(
            subsystem, conservative_override=self._conservative_now)
        # Switchpoints must be evaluated after every event, not just at
        # run-slice boundaries — a slice can be the whole simulation.
        subsystem.scheduler.post_step_hooks.append(
            lambda event: self._poll_switchpoints())
        return subsystem

    def connect(self, a: Subsystem, b: Subsystem, *,
                mode: ChannelMode = ChannelMode.CONSERVATIVE,
                delay: float = 0.0,
                channel_id: Optional[str] = None) -> Channel:
        """Create the channel between two subsystems (one per pair)."""
        if channel_id is None:
            channel_id = f"ch{next(self._channel_ids)}-{a.name}-{b.name}"
        if a.node is None or b.node is None:
            raise ConfigurationError(
                "attach both subsystems to nodes before connecting them")
        channel = Channel(channel_id, mode, delay=delay)
        channel.attach(a, peer_subsystem=b.name, peer_node=b.node.name)
        channel.attach(b, peer_subsystem=a.name, peer_node=a.node.name)
        self.channels[channel_id] = channel
        return channel

    def set_link_model(self, node_a: str, node_b: str,
                       model: LatencyModel) -> None:
        self.transport.set_link(node_a, node_b, model)

    def validate_topology(self):
        """Enforce the paper's simple-cycle-only rule."""
        return topology.validate(self.channels.values())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def subsystem(self, name: str) -> Subsystem:
        try:
            return self.subsystems[name]
        except KeyError:
            raise ConfigurationError(f"no subsystem named {name!r}") from None

    def component(self, name: str):
        for subsystem in self.subsystems.values():
            if name in subsystem.components:
                return subsystem.components[name]
        raise ConfigurationError(f"no component named {name!r}")

    def _live_subsystems(self) -> List[Subsystem]:
        """Subsystems still part of the computation (``drop-node`` policy
        permanently removes a failed node's subsystems)."""
        return [ss for name, ss in sorted(self.subsystems.items())
                if name not in self._dead_subsystems]

    def global_time(self) -> float:
        """The paper's global notion: the slowest subsystem's time."""
        return min((ss.now for ss in self._live_subsystems()), default=0.0)

    def finished(self) -> bool:
        return (all(ss.idle() for ss in self._live_subsystems())
                and self.transport.pending() == 0)

    def stalls(self) -> int:
        return sum(ss.scheduler.stalls for ss in self.subsystems.values())

    def safe_time_requests(self) -> int:
        return sum(client.requests_sent for client in self._sync.values())

    def report(self, *, title: Optional[str] = None) -> RunReport:
        """Assemble the :class:`~repro.observability.RunReport` so far."""
        return run_report(self, title=title)

    # ------------------------------------------------------------------
    # run levels (global view, as switchpoint conditions may span hosts)
    # ------------------------------------------------------------------
    def set_runlevel(self, target: str, level: str) -> None:
        name = target.split(".", 1)[0]
        for subsystem in self.subsystems.values():
            if name in subsystem.components:
                subsystem.set_runlevel(target, level)
                return
        raise ConfigurationError(f"no component named {name!r}")

    def add_switchpoint(self, text_or_sp: Union[str, Switchpoint], *,
                        once: bool = True) -> Switchpoint:
        return self.switchpoints.add(text_or_sp, once=once)

    def slider(self, targets: Iterable[str], levels: Iterable[str]) -> DetailSlider:
        return DetailSlider(list(targets), list(levels), self.set_runlevel)

    def _local_time(self, component: str) -> float:
        return self.component(component).local_time

    def _signal(self, net: str) -> Any:
        for subsystem in self.subsystems.values():
            if net in subsystem.nets:
                return subsystem.nets[net].value
        raise ConfigurationError(f"no net named {net!r}")

    def _poll_switchpoints(self) -> None:
        if self.switchpoints.switchpoints:
            self.switchpoints.poll(self.global_time())

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self, *, initiator: Optional[str] = None) -> str:
        """Take one global Chandy-Lamport snapshot; returns its id."""
        self.start()
        if initiator is None:
            initiator = self._live_subsystems()[0].name
        subsystem = self.subsystem(initiator)
        assert subsystem.node is not None
        # Settle all signal traffic first (recovering from any straggler),
        # so the only messages moving during the snapshot are the marks.
        self._pump_all()
        snapshot_id = self._managers[subsystem.node.name].initiate(subsystem)
        # Marks need only message pumping (no subsystem progress) to settle.
        # With a fault plan attached a mark can be parked for a few poll
        # ticks, so the settle budget widens and an idle pump round is not
        # final while the injector still holds traffic.
        injector = self.fault_injector
        for __ in range((2 * len(self.subsystems) + 2) * self._settle_slack):
            pumped = sum(node.pump() for node in self._ordered_nodes())
            if self.registry.snapshots[snapshot_id].complete:
                break
            if pumped == 0 and \
                    (injector is None or injector.held_pending() == 0):
                break
        snap = self.registry.snapshots[snapshot_id]
        if not snap.complete:
            raise DeadlockError(
                f"snapshot {snapshot_id} did not complete: marks pending on "
                f"{[c.pending for c in snap.cuts.values()]}")
        self._switchpoint_states[snapshot_id] = (
            [sp.fired for sp in self.switchpoints.switchpoints],
            list(self.switchpoints.history))
        self._last_snapshot_time = self.global_time()
        return snapshot_id

    def _restore_switchpoint_state(self, snap) -> None:
        saved = self._switchpoint_states.get(snap.snapshot_id)
        if saved is None:
            return
        fired_flags, history = saved
        for sp, fired in zip(self.switchpoints.switchpoints, fired_flags):
            sp.fired = fired
        self.switchpoints.history = list(history)

    def _maybe_periodic_snapshot(self) -> None:
        if self.snapshot_interval is None:
            return
        if self._down_nodes:
            return    # marks to a down node are lost; wait for recovery
        if self.global_time() - self._last_snapshot_time >= self.snapshot_interval:
            self.snapshot()

    def _has_optimism(self) -> bool:
        return any(ch.mode is ChannelMode.OPTIMISTIC
                   for ch in self.channels.values())

    def _piggyback_grants(self, src: str, dst: str) -> List[Message]:
        """Safe-time grants riding on a ``src``→``dst`` batch frame.

        Called by a batching transport at flush time.  For every live
        conservative endpoint on ``src`` whose peer lives on ``dst``, the
        current grant (plus consumption/production counts, exactly as in
        a served reply) is appended behind the frame's data messages —
        so by the time the receiver applies it, everything the grant's
        floor assumed has already been injected.  Peers then advance
        without a synchronous safe-time round trip: O(peers) frames per
        round instead of O(messages + requests).
        """
        if src in self._down_nodes or src in self._dead_nodes:
            return []
        node = self.nodes.get(src)
        if node is None:
            return []
        conservative = self._conservative_now()
        grants: List[Message] = []
        for ss_name in sorted(node.subsystems):
            if ss_name in self._dead_subsystems:
                continue
            subsystem = node.subsystems[ss_name]
            for channel_id in sorted(subsystem.channels):
                endpoint = subsystem.channels[channel_id]
                if endpoint.severed or endpoint.peer_node != dst:
                    continue
                if endpoint.mode is not ChannelMode.CONSERVATIVE \
                        and not conservative:
                    continue
                grant = compute_grant(subsystem, endpoint.peer_subsystem,
                                      conservative_override=conservative)
                if endpoint.peer_want and grant >= endpoint.peer_want:
                    # This grant satisfies the peer's recorded stall; no
                    # standalone push needed on top of this frame.
                    endpoint.peer_want = 0.0
                endpoint.injected_reported = endpoint.injected
                endpoint.granted_reported = grant
                grants.append(Message(
                    kind=MessageKind.SAFE_TIME_GRANT,
                    src=src, dst=dst, channel=channel_id,
                    time=grant,
                    payload=(endpoint.injected, endpoint.forwarded),
                ))
        return grants

    def _batching(self) -> bool:
        return bool(getattr(self.transport, "batching", False))

    def _should_refresh(self, name: str, desired: float) -> bool:
        """Throttle synchronous safe-time requests under batching.

        A freshly stalled subsystem does *not* call immediately: grants
        piggybacked on in-flight frames and the round-boundary pushes
        (consumption reports and satisfied wants) usually unblock it
        within a round or two for free.  Only a stall that survives
        ``_refresh_every`` rounds falls back to the explicit request —
        the liveness backstop.  Round counts are deterministic, so the
        throttle is too."""
        if not self._batching():
            return True
        last = self._refresh_throttle.get(name)
        if last is None or last[0] != desired:
            self._refresh_throttle[name] = (desired, self.rounds)
            return False
        if self.rounds - last[1] < self._refresh_every:
            return False
        self._refresh_throttle[name] = (desired, self.rounds)
        return True

    def _round_flush(self) -> bool:
        """Round boundary under batching: ship every queued frame, then
        push standalone grants to peers recorded as stalled whose want
        the local floor has now passed.  Each push is one frame replacing
        the two-frame request round trip the peer would otherwise issue.
        Returns True if anything moved (counts as round progress)."""
        push = getattr(self.transport, "push_grants", None)
        acted = self.transport.flush_batches() > 0
        if push is None:
            return acted
        conservative = self._conservative_now()
        for node in self._ordered_nodes():
            by_dst: Dict[str, List[Message]] = {}
            for ss_name in sorted(node.subsystems):
                if ss_name in self._dead_subsystems:
                    continue
                subsystem = node.subsystems[ss_name]
                # A subsystem that can still run will talk to its peers
                # through ordinary data frames (whose piggybacked grants
                # carry everything below for free); only one that cannot —
                # stalled below its next event, or idle — has news its
                # peers may never otherwise learn.
                client = self._sync.get(ss_name)
                next_time = subsystem.next_event_time()
                runnable = (next_time != float("inf")
                            and (client is None
                                 or client.horizon() >= next_time))
                for channel_id in sorted(subsystem.channels):
                    endpoint = subsystem.channels[channel_id]
                    if endpoint.severed:
                        continue
                    if endpoint.peer_node in self._down_nodes \
                            or endpoint.peer_node in self._dead_nodes:
                        continue
                    if endpoint.mode is not ChannelMode.CONSERVATIVE \
                            and not conservative:
                        continue
                    want = endpoint.peer_want
                    # Unreported consumption must reach the peer so it can
                    # release its echo ledger (it skips requests under
                    # batching, counting on exactly this push).
                    stale = endpoint.injected > endpoint.injected_reported
                    if runnable and not want:
                        # Still making local progress: the next data frame
                        # (or a later round's push, once stalled or idle)
                        # reports counts and grants for free.
                        continue
                    grant = compute_grant(
                        subsystem, endpoint.peer_subsystem,
                        conservative_override=conservative)
                    if want:
                        # The peer told us what it needs: push only once
                        # the floor passes it (or counts must flow).
                        if grant < want and not stale:
                            continue
                    elif not stale and grant <= endpoint.granted_reported:
                        continue    # nothing the peer doesn't already know
                    if want and grant >= want:
                        endpoint.peer_want = 0.0
                    endpoint.injected_reported = endpoint.injected
                    endpoint.granted_reported = grant
                    by_dst.setdefault(endpoint.peer_node, []).append(Message(
                        kind=MessageKind.SAFE_TIME_GRANT,
                        src=node.name, dst=endpoint.peer_node,
                        channel=channel_id, time=grant,
                        payload=(endpoint.injected, endpoint.forwarded),
                    ))
            for dst, grants in sorted(by_dst.items()):
                if push(node.name, dst, grants):
                    acted = True
                    if self.telemetry.enabled:
                        self.telemetry.count("safetime.pushed", len(grants))
        return acted

    def _conservative_now(self) -> bool:
        return self.recovery.in_conservative_window(self.global_time())

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.validate_topology()
        for node in self._ordered_nodes():
            node.start()
        if self._has_optimism() or self._wants_crash_recovery():
            # Optimism — and crash recovery — require a restorable
            # baseline before anything moves.
            self.snapshot()
        self._poll_switchpoints()

    def _wants_crash_recovery(self) -> bool:
        return (self.fault_plan is not None
                and bool(self.fault_plan.crashes)
                and self.failure_policy == "recover")

    def _ordered_nodes(self) -> List[PiaNode]:
        return [self.nodes[name] for name in sorted(self.nodes)
                if name not in self._down_nodes
                and name not in self._dead_nodes]

    def _ordered_subsystems(self) -> List[Subsystem]:
        out = []
        for subsystem in self._live_subsystems():
            node = subsystem.node
            if node is not None and node.name in self._down_nodes:
                continue
            out.append(subsystem)
        return out

    def _pump_all(self) -> int:
        """Route all in-flight messages; recover from stragglers."""
        total = 0
        while True:
            pumped = 0
            for node in self._ordered_nodes():
                try:
                    pumped += node.pump()
                except LinkDown as down:
                    self._absorb_link_down(down)
                    pumped += 1
                except StragglerError as straggler:
                    receiver = self._straggler_receiver(straggler)
                    self.recovery.recover(straggler, receiver)
                    # The snapshot cadence restarts from the rewound time,
                    # and the conservative window extends far enough for
                    # the next snapshot to land inside it — otherwise a
                    # sparse cadence lets the same race recur immediately.
                    self._last_snapshot_time = self.global_time()
                    self.recovery.conservative_until = max(
                        self.recovery.conservative_until,
                        straggler.straggler_time
                        + (self.snapshot_interval or 0.0))
                    pumped += 1
            total += pumped
            if pumped == 0:
                return total

    def _straggler_receiver(self, straggler: StragglerError) -> str:
        channel = self.channels.get(straggler.channel_id)
        if channel is None:
            raise ConfigurationError(
                f"straggler on unknown channel {straggler.channel_id!r}")
        # The straggler was raised by the endpoint whose subsystem had
        # already advanced past the message time.
        later = max(channel.endpoints.values(),
                    key=lambda ep: ep.subsystem.scheduler.now)
        return later.subsystem.name

    def run(self, until: float = float("inf"), *,
            max_rounds: Optional[int] = None) -> int:
        """Run the whole system until global quiescence (or ``until``).

        Returns the total number of events dispatched.
        """
        started_at = _time.perf_counter()
        self.start()
        dispatched = 0
        idle_rounds = 0
        while True:
            self.rounds += 1
            if max_rounds is not None and self.rounds > max_rounds:
                break
            acted = False
            if self.fault_injector is not None:
                acted = self._fault_tick()
            progress = self._pump_all() > 0 or acted
            for subsystem in self._ordered_subsystems():
                self._pump_all()
                client = self._sync[subsystem.name]
                next_time = subsystem.next_event_time()
                if next_time == float("inf") or next_time > until:
                    continue
                horizon = client.horizon()
                try:
                    if horizon < next_time:
                        desired = min(next_time, until)
                        if self._should_refresh(subsystem.name, desired):
                            horizon = client.refresh(desired)
                    if next_time <= horizon:
                        # The horizon is re-read before every dispatch:
                        # sending on a channel shrinks it via the echo bound.
                        count = subsystem.run(until, horizon=client.horizon)
                        dispatched += count
                        progress = progress or count > 0
                        self._poll_switchpoints()
                except LinkDown as down:
                    self._absorb_link_down(down)
                    progress = True
            if self._batching():
                progress = self._round_flush() or progress
            self._maybe_periodic_snapshot()
            series = self.telemetry.series
            if series is not None:
                # Round boundary = the sampling point: virtual-cadence
                # samples are deterministic here because the round
                # structure is.
                series.tick(self.global_time(), self.telemetry.registry)
            if not progress:
                idle_rounds += 1
                if self._down_nodes:
                    # Quiescence is an illusion while a node is down; keep
                    # ticking so the failure detector can confirm the loss.
                    continue
                if self.finished() or self._all_past(until):
                    break
                idle_budget = (len(self.subsystems) + 2) * self._settle_slack
                if self._batching():
                    # Throttled refreshes make a waiting round look idle;
                    # widen the deadlock budget by the throttle period.
                    idle_budget *= self._refresh_every
                if idle_rounds > idle_budget:
                    self._report_deadlock(until)
            else:
                idle_rounds = 0
        elapsed = _time.perf_counter() - started_at
        self.cpu_seconds += elapsed
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.registry.timer("executor.run").add(elapsed)
            telemetry.gauge("executor.rounds", self.rounds)
        return dispatched

    def _all_past(self, until: float) -> bool:
        """Every pending event lies beyond the requested end time."""
        if self.transport.pending():
            return False
        return all(ss.next_event_time() > until
                   for ss in self._live_subsystems())

    # ------------------------------------------------------------------
    # fault plane (crash, detect, recover/raise/drop)
    # ------------------------------------------------------------------
    def _fault_tick(self) -> bool:
        """One round of the fault machinery: heartbeats, scheduled
        crashes, suspicion, and the configured failure response.
        Returns True if anything happened (counts as round progress)."""
        detector = self.detector
        now_round = float(self.rounds)
        for name in self.nodes:
            if name not in self._down_nodes and name not in self._dead_nodes:
                detector.beat(name, now_round)
        acted = False
        now = self.global_time()
        for crash in [c for c in self._pending_crashes if c.at_time <= now]:
            self._pending_crashes.remove(crash)
            self._crash_node(crash.node)
            acted = True
        for node in detector.suspects(now_round):
            if node in self._down_nodes:
                self._handle_node_failure(node)
                acted = True
        return acted

    def _crash_node(self, name: str) -> None:
        """Take ``name`` down: its traffic is lost until the failure
        detector notices and the failure policy responds."""
        if name not in self.nodes:
            raise ConfigurationError(
                f"scheduled crash for unknown node {name!r}")
        if name in self._dead_nodes or name in self._down_nodes:
            return
        self._down_nodes.add(name)
        self.fault_injector.mark_down(name)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("fault.node_crashes")
            telemetry.trace(TraceKind.NODE_CRASH, time=self.global_time(),
                            subject=name)

    def _absorb_link_down(self, down: LinkDown) -> None:
        """A send or call exhausted its retry budget.  If the destination
        is a known, still-live node, presume it dead and let the failure
        policy respond at the next fault tick; otherwise propagate."""
        if self.fault_injector is None:
            raise down
        dst = down.dst
        if dst in self._down_nodes or dst in self._dead_nodes:
            return    # already waiting on the failure detector
        if dst in self.nodes:
            self._crash_node(dst)
            return
        raise down

    def _handle_node_failure(self, node: str) -> None:
        if self.failure_policy == "raise":
            raise NodeFailure(
                f"node {node!r} failed at global time "
                f"{self.global_time():g} and recovery is disabled",
                node=node)
        if self.failure_policy == "drop-node":
            self._drop_node(node)
        else:
            self._recover_node(node)

    def _recover_node(self, node: str) -> None:
        """Restart ``node`` from the last consistent global snapshot."""
        completed = self.registry.completed()
        if not completed:
            raise NodeFailure(
                f"node {node!r} failed with no completed snapshot to "
                "recover from — set snapshot_interval", node=node)
        snap = completed[-1]
        # The node is back before the rollback runs, so the re-injected
        # channel state is not swallowed as lost traffic.
        self._down_nodes.discard(node)
        self.fault_injector.mark_up(node)
        self.recovery.rollback_to(snap)
        self._last_snapshot_time = self.global_time()
        self.detector.beat(node, float(self.rounds))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("fault.node_recoveries")
            telemetry.trace(TraceKind.NODE_RECOVER, time=self.global_time(),
                            subject=node, snapshot_id=snap.snapshot_id,
                            restored_time=snap.max_time())

    def _drop_node(self, name: str) -> None:
        """Graceful degradation: cut the failed node out of the system
        and let the survivors finish without it."""
        self._down_nodes.discard(name)
        self._dead_nodes.add(name)
        self.detector.forget(name)
        node = self.nodes[name]
        for ss_name, subsystem in sorted(node.subsystems.items()):
            self._dead_subsystems.add(ss_name)
            for endpoint in subsystem.channels.values():
                endpoint.sever()
                endpoint.channel.other(ss_name).sever()
        unregister = getattr(self.transport, "unregister", None)
        if unregister is not None:
            unregister(name)
        # Stray sends towards the dead node stay "lost", never errors, so
        # the node remains marked down; its parked deliveries are purged.
        self.fault_injector.purge_node(name)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("fault.nodes_dropped")
            telemetry.trace(TraceKind.NODE_DROP, time=self.global_time(),
                            subject=name)

    def _report_deadlock(self, until: float) -> None:
        detail = []
        for subsystem in self._ordered_subsystems():
            client = self._sync[subsystem.name]
            detail.append(
                f"{subsystem.name}: t={subsystem.now:g} "
                f"next={subsystem.next_event_time():g} "
                f"horizon={client.horizon():g}")
        raise DeadlockError(
            "no subsystem can advance and no messages are in flight:\n  "
            + "\n  ".join(detail))
