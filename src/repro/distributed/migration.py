"""Live subsystem migration and failover images (paper sections 2.2.3, 2.4).

The multiprocess backplane moves subsystems between worker processes in
two situations: an explicit :meth:`MultiprocessCoSimulation.migrate`
request, and automatic failover when the supervisor's heartbeat detector
confirms a dead worker.  Both paths ship the same artefact — a
:class:`NodeArchive` built from a completed Chandy-Lamport cut — to the
adopting worker, which reconstructs the subsystems from their factory
specs (routing file-backed specs through the
:class:`~repro.loader.ComponentLoader`) and reinstates the images.

A :class:`~repro.core.checkpoint.CheckpointImage` is *not* portable
across processes: its queued events target live :class:`Port` and
:class:`Component` objects.  :func:`encode_image` rewrites every event
target into a by-name form (``("port", owner, name)`` /
``("component", name)``) and :func:`decode_image` resolves the names
against the rebuilt subsystem on the destination worker.  ``CONTROL``
events target arbitrary callables with no by-name encoding, so a
subsystem with a queued ``CONTROL`` event cannot be moved — that is a
:class:`~repro.core.errors.MigrationError`, not a crash.

Recorded in-flight channel messages ride alongside the images.  Restore
mirrors the proven single-process rollback recipe
(:meth:`OptimisticRecovery.rollback_to`): flush the transport, reinstate
the images, void every endpoint's safe-time ledger via
``reset_sync_state`` with ``forwarded`` pre-seeded to the number of
recorded messages the peer will re-deliver, then re-inject the recorded
messages on the destination node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.checkpoint import CheckpointImage, NetState, reinstate
from ..core.errors import MigrationError
from ..core.events import Event, EventKind
from ..core.fastcopy import smart_copy

if TYPE_CHECKING:  # pragma: no cover
    from ..core.subsystem import Subsystem
    from ..transport.message import Message
    from .snapshot import GlobalSnapshot


# ----------------------------------------------------------------------
# portable checkpoint images
# ----------------------------------------------------------------------
def _encode_event(event: Event, subsystem_name: str) -> tuple:
    """One queued event in by-name form (see module docstring)."""
    if event.kind in (EventKind.SIGNAL, EventKind.INTERRUPT):
        port = event.target
        owner = getattr(port, "owner", None)
        if owner is None:
            raise MigrationError(
                f"{subsystem_name}: queued {event.kind.value} event targets "
                f"an orphan port; its state cannot be made portable")
        target = ("port", owner.name, port.name)
    elif event.kind is EventKind.WAKE:
        target = ("component", event.target.name)
    else:
        raise MigrationError(
            f"{subsystem_name}: queued {event.kind.value} event targets a "
            f"live callable that has no by-name encoding")
    return (event.ts, event.kind.value, target, smart_copy(event.payload),
            event.token, event.cause)


def _decode_event(encoded: tuple, subsystem: "Subsystem") -> Event:
    ts, kind_value, target_ref, payload, token, cause = encoded
    kind = EventKind(kind_value)
    shape = target_ref[0]
    if shape == "port":
        __, owner_name, port_name = target_ref
        try:
            target = subsystem.components[owner_name].ports[port_name]
        except KeyError:
            raise MigrationError(
                f"{subsystem.name}: restored event references unknown "
                f"port {owner_name}.{port_name}") from None
    else:
        try:
            target = subsystem.components[target_ref[1]]
        except KeyError:
            raise MigrationError(
                f"{subsystem.name}: restored event references unknown "
                f"component {target_ref[1]!r}") from None
    return Event(ts, kind, target, payload, token, cause)


@dataclass
class PortableImage:
    """A :class:`CheckpointImage` with every live reference made by-name,
    so it pickles cleanly across process boundaries."""

    subsystem: str
    checkpoint_id: int
    label: Optional[str]
    time: float
    started: bool
    dispatched: int
    stalls: int
    events: List[tuple] = field(default_factory=list)
    components: dict = field(default_factory=dict)   # name -> ComponentSnapshot
    nets: Dict[str, NetState] = field(default_factory=dict)
    #: channel id -> in-flight messages recorded by the Chandy-Lamport cut.
    recorded: Dict[str, List["Message"]] = field(default_factory=dict)

    def storage_bytes(self) -> int:
        """Pickled size of this image — the unit the migration pause /
        snapshot-size study in EXPERIMENTS.md measures."""
        import pickle
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))


def encode_image(subsystem: "Subsystem", image: CheckpointImage,
                 recorded: Optional[Dict[str, List["Message"]]] = None
                 ) -> PortableImage:
    """Rewrite ``image`` into its process-portable form."""
    return PortableImage(
        subsystem=subsystem.name,
        checkpoint_id=image.checkpoint_id,
        label=image.label,
        time=image.time,
        started=image.started,
        dispatched=image.dispatched,
        stalls=image.stalls,
        events=[_encode_event(event, subsystem.name)
                for event in image.events],
        components=dict(image.components),
        nets=dict(image.nets),
        recorded={cid: list(msgs)
                  for cid, msgs in (recorded or {}).items()},
    )


def decode_image(subsystem: "Subsystem", portable: PortableImage) -> None:
    """Reinstate ``portable`` into the (freshly built or live) ``subsystem``."""
    if portable.subsystem != subsystem.name:
        raise MigrationError(
            f"image of {portable.subsystem!r} applied to {subsystem.name!r}")
    image = CheckpointImage(
        checkpoint_id=portable.checkpoint_id,
        label=portable.label,
        time=portable.time,
        events=[_decode_event(encoded, subsystem)
                for encoded in portable.events],
        components=portable.components,
        nets=portable.nets,
        started=portable.started,
        dispatched=portable.dispatched,
        stalls=portable.stalls,
    )
    reinstate(subsystem, image)


# ----------------------------------------------------------------------
# per-node archives
# ----------------------------------------------------------------------
@dataclass
class NodeArchive:
    """Everything one node contributes to a global restore point."""

    node: str
    snapshot_id: str
    #: subsystem name -> portable image (with its recorded channel state).
    images: Dict[str, PortableImage] = field(default_factory=dict)
    #: The node's span-minter ordinal streams at archive time, so a moved
    #: node's deterministic span ids continue where they left off.
    minter_ordinals: Dict[str, int] = field(default_factory=dict)

    def storage_bytes(self) -> int:
        return sum(image.storage_bytes() for image in self.images.values())


def archive_node(node, registry, snapshot_id: str,
                 minter_ordinals: Optional[Dict[str, int]] = None
                 ) -> NodeArchive:
    """Build the :class:`NodeArchive` for ``node``'s completed local cuts.

    ``registry`` is the node's :class:`SnapshotRegistry`; every local
    subsystem must already hold a complete cut for ``snapshot_id``.
    """
    snap = registry.snapshots.get(snapshot_id)
    if snap is None:
        raise MigrationError(
            f"{node.name}: no cut data for snapshot {snapshot_id!r}",
            node=node.name)
    archive = NodeArchive(node=node.name, snapshot_id=snapshot_id,
                          minter_ordinals=dict(minter_ordinals or {}))
    for name, subsystem in node.subsystems.items():
        cut = snap.cuts.get(name)
        if cut is None or not cut.complete:
            raise MigrationError(
                f"{node.name}: cut of {name!r} incomplete for "
                f"snapshot {snapshot_id!r}", node=node.name)
        image = subsystem.checkpoints.image(cut.checkpoint_id)
        archive.images[name] = encode_image(subsystem, image, cut.recorded)
    return archive


def resent_counts(archives) -> Dict[Tuple[str, str], int]:
    """``(channel_id, dst_node) -> count`` of recorded in-flight messages.

    The counts pre-seed every endpoint's ``forwarded`` ledger on restore
    (mirroring ``OptimisticRecovery.rollback_to``): the sender's counter
    must equal the number of copies the receiver will re-inject, so the
    first post-restore safe-time exchange balances.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for archive in archives:
        for image in archive.images.values():
            for channel_id, messages in image.recorded.items():
                for message in messages:
                    key = (channel_id, message.dst)
                    counts[key] = counts.get(key, 0) + 1
    return counts


def restore_node(node, images: Dict[str, PortableImage],
                 resent: Dict[Tuple[str, str], int]) -> int:
    """Reinstate ``images`` into ``node`` and re-align its ledgers.

    The caller has already fenced the transport (epoch bump) and flushed
    its queues.  Returns the number of recorded in-flight messages
    re-injected locally.  Recorded messages were captured at their
    *destination* node's cut, so each node re-injects exactly the ones
    destined for itself — no wire traffic, no double delivery.
    """
    replayed = 0
    for name, portable in images.items():
        try:
            subsystem = node.subsystems[name]
        except KeyError:
            raise MigrationError(
                f"{node.name}: restore payload references unknown "
                f"subsystem {name!r}", node=node.name) from None
        decode_image(subsystem, portable)
        for channel_id, endpoint in subsystem.channels.items():
            endpoint.reset_sync_state(
                forwarded=resent.get((channel_id, endpoint.peer_node), 0),
                injected=0)
    # Re-inject after *every* local ledger is reset: a recorded message's
    # dispatch bumps its channel's ``injected`` count.
    for name, portable in images.items():
        for messages in portable.recorded.values():
            for message in messages:
                node.dispatch(message)
                replayed += 1
    return replayed


# ----------------------------------------------------------------------
# factory resolution (explicit ComponentLoader routing)
# ----------------------------------------------------------------------
def rebuild_factory(ref: str):
    """Resolve a subsystem factory reference on the adopting worker.

    Dotted module paths go through the spec machinery's
    ``resolve_factory``; file-backed references (``file://…`` or a
    ``…/thing.py:Name`` path) go through the
    :class:`~repro.loader.ComponentLoader`, which is how a worker that
    never imported the defining module can still reconstruct the moved
    subsystem.
    """
    if "file://" in ref or ".py" in ref.split(":", 1)[0]:
        from ..loader import ComponentLoader
        return ComponentLoader(require_component=False).load(ref)
    from .multiprocess import resolve_factory
    return resolve_factory(ref)


# ----------------------------------------------------------------------
# run-report records
# ----------------------------------------------------------------------
@dataclass
class MigrationRecord:
    """One migration or failover, as reported in ``RunReport.migrations``."""

    kind: str                    # "failover" | "migrate"
    node: str                    # the node that moved
    reason: str                  # "worker-death", "heartbeat", "requested"...
    epoch: int                   # the migration epoch the move started
    snapshot_id: str             # the restore point used
    at_global_time: float        # global virtual time when the move began
    wall_pause: float = 0.0      # seconds the run was stopped end to end
    snapshot_bytes: int = 0      # pickled size of the shipped archives
    replayed_messages: int = 0   # recorded in-flight messages re-injected

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "node": self.node, "reason": self.reason,
            "epoch": self.epoch, "snapshot_id": self.snapshot_id,
            "at_global_time": self.at_global_time,
            "wall_pause": self.wall_pause,
            "snapshot_bytes": self.snapshot_bytes,
            "replayed_messages": self.replayed_messages,
        }
