"""Process-per-node execution: real parallelism across OS processes.

The paper's deployment is one JVM *process* per Pia node, joined by RMI —
genuinely parallel machines.  :class:`ThreadedCoSimulation` mirrors the
concurrency shape but executes all Python bytecode under one GIL, so
adding nodes never adds cores.  This module completes the picture: each
:class:`~repro.distributed.node.PiaNode` runs in its own OS process over
the real :class:`~repro.transport.tcp.TcpTransport` (loopback), with the
batched fast path and grant piggybacking on by default, so compute-heavy
subsystems scale with cores.

Three problems are specific to crossing a process boundary:

* **Bootstrap** — live components cannot cross ``spawn``, so the system
  is described as picklable *specs*: subsystems are named factories
  (dotted-path or :func:`register_factory` names) the worker resolves and
  calls in its own process.
* **Coordination** — a pipe-based control plane starts, probes, quiesces
  and stops the workers; a worker that dies (or a scheduled
  :class:`~repro.faults.NodeCrash` the coordinator fires) surfaces as a
  typed :class:`~repro.core.errors.NodeFailure`, exactly like the
  threaded executor.  Quiescence itself is a distributed property,
  detected by a double probe over logical wire counters
  (``TcpTransport.wire_out``/``wire_in``): two consecutive sweeps showing
  every worker idle, all event queues past ``until``, nothing parked, and
  the global out/in sums balanced and unchanged.
* **Observability** — every worker runs its own
  :class:`~repro.observability.Telemetry`; at quiescence each serialises
  its deterministic snapshot back to the coordinator, which merges them
  (:mod:`repro.observability.merge`) into one
  :class:`~repro.observability.RunReport` with the same shape as a
  single-process report.

Chaos stays reproducible: fault decisions are pure functions of the
*plan seed* and per-link ordinals, so every worker receives
``fault_plan.for_node(...)`` — same seed, crashes filtered — and the
drop/duplicate/delay counters of a seeded run match the single-process
executors bit for bit.

With ``failure_policy="migrate"`` the coordinator becomes a supervisor:
before the run starts it takes a baseline Chandy-Lamport cut (every
worker archives portable images of its subsystems back to the
coordinator — stable storage in the paper's terms), and the supervision
loop feeds a heartbeat :class:`~repro.faults.FailureDetector`.  A worker
that dies, partitions, or is killed by a scheduled
:class:`~repro.faults.NodeCrash` is *replaced*: a fresh pool worker
adopts the lost node, every channel endpoint is re-spliced (peer tables,
shm rings, TCP connections), all workers roll back to the last completed
global snapshot under a new migration epoch (stale pre-failover traffic
is fenced at ingest), recorded in-flight messages are re-injected, and
the run resumes — deterministically, because conservative execution from
a consistent cut is a pure function of the virtual state.
:meth:`MultiprocessCoSimulation.migrate` uses the same machinery to move
a live node between workers on request: halt, drain the wire to
quiescence, cut, re-splice, restore, resume.
"""

from __future__ import annotations

import importlib
import itertools
import json
import multiprocessing
import os
import threading
import time as _time
import weakref
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mpconn
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from ..core.errors import (
    ConfigurationError,
    MigrationError,
    NodeFailure,
    SimulationError,
    TopologyError,
    TransportError,
)
from ..core.subsystem import Subsystem
from ..faults import FailureDetector, FaultInjector, FaultPlan, RetryPolicy
from ..observability import (
    LinkHealthMonitor,
    RunReport,
    Telemetry,
    TimeSeriesRecorder,
    TraceKind,
    finalize_health,
    merge_counters,
    merge_gauges,
    merge_health_rows,
    merge_histograms,
    merge_link_rows,
    merge_series,
    merge_timings,
    merge_trace_records,
)
from ..observability.export import stall_attribution, subject_nodes
from ..observability.timeseries import DEFAULT_CAPACITY as SERIES_CAPACITY
from ..observability.report import _link_rows, _subsystem_row
from ..transport.codec import VERSION as CODEC_VERSION
from ..transport.message import Message, MessageKind
from ..transport.shm import (
    DEFAULT_RING_CAPACITY,
    SharedMemoryTransport,
    create_ring_segment,
)
from ..transport.tcp import TcpTransport
from .channel import Channel, ChannelMode
from .conservative import SafeTimeClient, compute_grant
from .migration import (
    MigrationRecord,
    NodeArchive,
    archive_node,
    resent_counts,
    restore_node,
)
from .node import PiaNode
from .snapshot import SnapshotManager, SnapshotRegistry, new_snapshot_id
from .threaded import LockedSafeTimeService

#: Failure policies the multiprocess executor understands.
MP_FAILURE_POLICIES = ("raise", "migrate")

#: Factories registered by short name (an alternative to dotted paths).
_FACTORIES: Dict[str, Callable[..., Subsystem]] = {}


def register_factory(name: str, factory: Callable[..., Subsystem]) -> None:
    """Register ``factory`` under ``name`` for use in subsystem specs.

    Registration is per-process: a factory registered only in the
    coordinator is invisible to spawned workers, so registry names are
    mainly for tests and single-process tooling — specs that must cross
    ``spawn`` should use importable dotted paths.
    """
    if not callable(factory):
        raise ConfigurationError(f"factory {name!r} is not callable")
    _FACTORIES[name] = factory


def resolve_factory(ref: str) -> Callable[..., Subsystem]:
    """Resolve a factory reference: a registered name, ``pkg.mod:attr``,
    or ``pkg.mod.attr``."""
    found = _FACTORIES.get(ref)
    if found is not None:
        return found
    if ":" in ref:
        module_name, __, attr_path = ref.partition(":")
    else:
        module_name, __, attr_path = ref.rpartition(".")
    if not module_name or not attr_path:
        raise ConfigurationError(
            f"cannot resolve subsystem factory {ref!r}: use a registered "
            "name or a dotted path like 'package.module:callable'")
    try:
        target = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import factory module {module_name!r}: {exc}") from exc
    for part in attr_path.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_name!r} has no attribute chain "
                f"{attr_path!r}") from None
    if not callable(target):
        raise ConfigurationError(f"factory {ref!r} resolved to a "
                                 f"non-callable {target!r}")
    return target


@dataclass(frozen=True)
class SubsystemSpec:
    """A picklable recipe for one subsystem: the factory is called as
    ``factory(name, *args, **kwargs)`` in the worker process and must
    return a fully built :class:`~repro.core.subsystem.Subsystem` of that
    name (components added, nets wired)."""

    name: str
    factory: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def build(self) -> Subsystem:
        subsystem = resolve_factory(self.factory)(
            self.name, *self.args, **dict(self.kwargs))
        if not isinstance(subsystem, Subsystem):
            raise ConfigurationError(
                f"factory {self.factory!r} returned "
                f"{type(subsystem).__name__}, not a Subsystem")
        if subsystem.name != self.name:
            raise ConfigurationError(
                f"factory {self.factory!r} built subsystem "
                f"{subsystem.name!r}, expected {self.name!r}")
        return subsystem


@dataclass(frozen=True)
class ChannelSpec:
    """A picklable conservative channel between two subsystem specs.

    ``nets`` are the names of the split nets the channel carries; each
    side's factory must have created its half (same name) via
    ``Subsystem.wire``.
    """

    channel_id: str
    subsystem_a: str
    node_a: str
    subsystem_b: str
    node_b: str
    delay: float = 0.0
    nets: Tuple[str, ...] = ()

    def touches(self, node: str) -> bool:
        return node in (self.node_a, self.node_b)


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything one worker process needs to bootstrap its node."""

    node: str
    subsystems: Tuple[SubsystemSpec, ...]
    channels: Tuple[ChannelSpec, ...]
    batching: bool = True
    fault_plan: Optional[FaultPlan] = None
    retry_policy: Optional[RetryPolicy] = None
    trace_capacity: int = 4096
    transport: str = "tcp"
    ring_capacity: int = DEFAULT_RING_CAPACITY
    #: True under ``failure_policy="migrate"``: a vanished peer is the
    #: supervisor's problem, so transport failures wedge the worker
    #: (no progress, await restore) instead of killing it.
    supervised: bool = False
    #: Telemetry plane: time-series cadences (either unset leaves that
    #: cadence off), per-link health estimators, and whether ``status?``
    #: replies carry streaming telemetry deltas.
    series_interval: Optional[float] = None
    series_wall_interval: Optional[float] = None
    health: bool = False
    stream: bool = False


class _ControlInbox:
    """The worker process's single wait point.

    A reader thread pushes every control-pipe message here; the
    transport's ``wakeup_hook`` kicks the same condition when network
    traffic arrives.  The serve loop can therefore *park* — one
    condition wait instead of a ``poll(0)``/sleep spin — and still react
    immediately to either control or data.
    """

    def __init__(self) -> None:
        self._messages: deque = deque()
        self._cond = threading.Condition()
        self._wake = False
        self.eof = False

    def push(self, message) -> None:
        with self._cond:
            self._messages.append(message)
            self._cond.notify_all()

    def push_eof(self) -> None:
        with self._cond:
            self.eof = True
            self._cond.notify_all()

    def kick(self) -> None:
        """Transport wakeup: remembered so a kick that lands between a
        worker's last poll and its park is not lost."""
        with self._cond:
            self._wake = True
            self._cond.notify_all()

    def pop(self):
        """Next queued control message, or None without blocking."""
        with self._cond:
            return self._messages.popleft() if self._messages else None

    def wait_control(self):
        """Block until a control message arrives; None means EOF."""
        with self._cond:
            while not self._messages:
                if self.eof:
                    return None
                self._cond.wait()
            return self._messages.popleft()

    def park(self, timeout: float) -> None:
        """Sleep until control, transport activity, EOF, or ``timeout``."""
        with self._cond:
            if not (self._wake or self._messages or self.eof):
                self._cond.wait(timeout)
            self._wake = False


class _Worker:
    """The child-process side: one node, its subsystems, and a control
    loop mirroring the threaded executor's per-node worker."""

    def __init__(self, spec: _WorkerSpec, conn,
                 inbox: Optional[_ControlInbox] = None) -> None:
        self.spec = spec
        self.conn = conn
        self.inbox = inbox if inbox is not None else _ControlInbox()
        self.telemetry = Telemetry(trace_capacity=spec.trace_capacity)
        if spec.transport == "shm":
            self.transport = SharedMemoryTransport(
                batching=spec.batching, ring_capacity=spec.ring_capacity)
        else:
            self.transport = TcpTransport(batching=spec.batching)
        self.transport.wakeup_hook = self.inbox.kick
        self.transport.attach_telemetry(self.telemetry)
        self.injector: Optional[FaultInjector] = None
        if spec.fault_plan is not None:
            self.injector = FaultInjector(spec.fault_plan,
                                          retry_policy=spec.retry_policy,
                                          telemetry=self.telemetry)
            self.transport.attach_faults(self.injector)
        elif spec.retry_policy is not None:
            self.transport.retry_policy = spec.retry_policy
        self.series: Optional[TimeSeriesRecorder] = None
        if spec.series_interval is not None \
                or spec.series_wall_interval is not None:
            self.series = self.telemetry.attach_series(TimeSeriesRecorder(
                virtual_interval=spec.series_interval,
                wall_interval=spec.series_wall_interval))
        self.health_monitor: Optional[LinkHealthMonitor] = None
        if spec.health:
            self.health_monitor = LinkHealthMonitor()
            self.transport.attach_health(self.health_monitor)
            self.telemetry.health = self.health_monitor
        #: Counter values already shipped in streaming deltas.
        self._streamed: Dict[str, int] = {}
        self.lock = threading.RLock()
        self.node = PiaNode(spec.node, self.transport)
        self.clients: Dict[str, SafeTimeClient] = {}
        for sspec in spec.subsystems:
            subsystem = sspec.build()
            self.node.add_subsystem(subsystem)
            subsystem.attach_telemetry(self.telemetry)
            self.clients[subsystem.name] = SafeTimeClient(subsystem)
        LockedSafeTimeService(self.node, self.lock, self.clients.get)
        self.transport.set_piggyback_provider(self._piggyback_grants)
        self._attach_channels()
        # Chandy-Lamport participation: the coordinator triggers cuts
        # over the control pipe; marks cross between workers as ordinary
        # channel traffic.  Completion is judged against the *local*
        # subsystems — the coordinator assembles the global picture from
        # the archives each worker pushes back.
        self.registry = SnapshotRegistry()
        self.snapshots = SnapshotManager(
            self.node, self.registry, lambda: list(self.node.subsystems))
        self.snapshots.telemetry = self.telemetry
        #: Cut ids initiated here whose archive has not been pushed yet.
        self._open_cuts: set = set()
        self.until = float("inf")
        self.dispatched = 0
        self.rounds = 0
        #: Whether the last round moved anything (reported in status).
        self.progress = False

    # ------------------------------------------------------------------
    def _attach_channels(self) -> None:
        name = self.node.name
        for cs in self.spec.channels:
            channel = Channel(cs.channel_id, ChannelMode.CONSERVATIVE,
                              delay=cs.delay)
            sides = (
                (cs.subsystem_a, cs.node_a, cs.subsystem_b, cs.node_b),
                (cs.subsystem_b, cs.node_b, cs.subsystem_a, cs.node_a),
            )
            for local_ss, local_node, peer_ss, peer_node in sides:
                if local_node != name:
                    continue
                subsystem = self.node.subsystem(local_ss)
                endpoint = channel.attach(subsystem, peer_subsystem=peer_ss,
                                          peer_node=peer_node)
                for net_name in cs.nets:
                    net = subsystem.nets.get(net_name)
                    if net is None:
                        raise ConfigurationError(
                            f"channel {cs.channel_id}: subsystem "
                            f"{local_ss!r} has no net {net_name!r} — its "
                            "factory must wire it")
                    endpoint.tap(net)

    def _piggyback_grants(self, src: str, dst: str) -> List[Message]:
        """Safe-time grants for an outgoing batch frame (see the threaded
        executor's provider — same try-acquire discipline)."""
        if src != self.node.name or not self.lock.acquire(blocking=False):
            return []
        try:
            grants: List[Message] = []
            for ss_name in sorted(self.node.subsystems):
                subsystem = self.node.subsystems[ss_name]
                for channel_id in sorted(subsystem.channels):
                    endpoint = subsystem.channels[channel_id]
                    if endpoint.severed or endpoint.peer_node != dst:
                        continue
                    grants.append(Message(
                        kind=MessageKind.SAFE_TIME_GRANT,
                        src=src, dst=dst, channel=channel_id,
                        time=compute_grant(subsystem,
                                           endpoint.peer_subsystem),
                        payload=(endpoint.injected, endpoint.forwarded),
                    ))
            return grants
        finally:
            self.lock.release()

    # ------------------------------------------------------------------
    def _one_round(self) -> bool:
        progress = False
        with self.lock:
            progress |= self.node.pump() > 0
        for name in sorted(self.node.subsystems):
            subsystem = self.node.subsystems[name]
            client = self.clients[name]
            with self.lock:
                self.node.pump()
                next_time = subsystem.next_event_time()
            if next_time == float("inf") or next_time > self.until:
                continue
            # Blocking network call: outside the lock, or two nodes
            # refreshing towards each other deadlock.
            if client.horizon() < next_time:
                client.refresh(min(next_time, self.until))
            with self.lock:
                if subsystem.next_event_time() <= client.horizon():
                    count = subsystem.run(self.until, horizon=client.horizon)
                    self.dispatched += count
                    progress = progress or count > 0
        self.transport.flush_batches(src=self.node.name)
        return progress

    def _status(self) -> dict:
        with self.lock:
            rows = []
            for name, subsystem in sorted(self.node.subsystems.items()):
                client = self.clients[name]
                horizon = client.horizon()
                blocking = client.blocking_endpoint()
                next_time = subsystem.next_event_time()
                rows.append({
                    "name": name,
                    "time": subsystem.now,
                    "next_event": next_time,
                    "dispatched": subsystem.scheduler.dispatched,
                    "stalls": subsystem.scheduler.stalls,
                    "queue_depth": len(subsystem.scheduler.queue),
                    "horizon": horizon,
                    "stalled": next_time != float("inf")
                        and next_time > horizon,
                    "waiting_on": None if blocking is None else
                        f"{blocking.peer_subsystem}@{blocking.peer_node}",
                })
            pending = self.transport.pending()
            status = {
                "node": self.node.name,
                "idle": not self.progress,
                "subsystems": rows,
                "wire_out": self.transport.wire_out,
                "wire_in": self.transport.wire_in,
                "pending": pending,
                "rounds": self.rounds,
                "epoch": self.transport.epoch,
                "stale_drops": self.transport.stale_epoch_drops,
                "wall": _time.time(),
            }
            if self.spec.stream:
                status["telemetry"] = self._stream_delta()
            return status

    def _stream_delta(self) -> dict:
        """Incremental telemetry riding a streaming ``status?`` reply:
        counter *deltas* since the last reply (payload proportional to
        activity, not run length), absolute gauges, the unshipped tail of
        every time-series, and the raw link-health rows.  Lossy by
        design — a delta the coordinator drops as stale is simply absent
        from the live view; the final report merges the workers'
        absolute bundles, so accuracy is never at stake."""
        snap = self.telemetry.registry.snapshot()
        counters: Dict[str, int] = {}
        for name, value in snap["counters"].items():
            shipped = self._streamed.get(name, 0)
            if value != shipped:
                counters[name] = value - shipped
                self._streamed[name] = value
        delta = {"counters": counters, "gauges": snap["gauges"]}
        if self.series is not None:
            delta["series"] = self.series.take_delta()
        if self.health_monitor is not None:
            delta["health"] = self.health_monitor.rows()
        return delta

    def _report_bundle(self) -> dict:
        # The serve-loop round count is wall-paced (how many control
        # sweeps the OS scheduler let us run), so it must NOT enter the
        # gauge registry — gauges land in the report's deterministic
        # projection.  The bundle's own "rounds" field carries it for
        # status views instead.
        with self.lock:
            subsystems = [_subsystem_row(subsystem)
                          for __, subsystem
                          in sorted(self.node.subsystems.items())]
            snap = self.telemetry.registry.snapshot()
            return {
                "node": self.node.name,
                "dispatched": self.dispatched,
                "rounds": self.rounds,
                "subsystems": subsystems,
                "links": _link_rows(self.transport),
                "counters": snap["counters"],
                "gauges": snap["gauges"],
                "histograms": snap["histograms"],
                "trace_counts": self.telemetry.trace_buffer.counts_by_kind(),
                "trace_dropped": self.telemetry.trace_buffer.dropped,
                # The full per-worker trace rides home with the bundle so
                # the coordinator can merge one causally linked timeline.
                "trace": [dict(record.to_dict(), node=self.node.name,
                               wall=record.wall)
                          for record in self.telemetry.trace_buffer.records()],
                "timings": self.telemetry.registry.timings(),
                "faults": self.injector.summary()
                          if self.injector is not None else {},
                "wire_out": self.transport.wire_out,
                "wire_in": self.transport.wire_in,
                "series": self.series.to_dict()
                          if self.series is not None else {},
                "health": self.health_monitor.rows()
                          if self.health_monitor is not None else [],
            }

    # ------------------------------------------------------------------
    # migration plumbing (coordinator-triggered, over the control pipe)
    # ------------------------------------------------------------------
    def _drain_round(self) -> bool:
        """Pump and flush without running subsystems — the halted worker's
        round, so in-flight traffic (data, marks, fault-held deliveries)
        keeps draining while the simulation itself is stopped."""
        try:
            with self.lock:
                moved = self.node.pump() > 0
            self.transport.flush_batches(src=self.node.name)
        except TransportError:
            if not self.spec.supervised:
                raise
            return False
        return moved

    def _initiate_cut(self, snapshot_id: str) -> None:
        with self.lock:
            for name in sorted(self.node.subsystems):
                self.snapshots.initiate(self.node.subsystems[name],
                                        snapshot_id)
        self._open_cuts.add(snapshot_id)

    def _cut_complete(self, snapshot_id: str) -> bool:
        snap = self.registry.snapshots.get(snapshot_id)
        if snap is None:
            return False
        return all(name in snap.cuts and snap.cuts[name].complete
                   for name in self.node.subsystems)

    def _announce_cuts(self) -> None:
        """Push the archive for every locally completed cut — the paper's
        'transmit the checkpoint to stable storage' step, so a restore
        point survives the death of the worker that produced it."""
        for snapshot_id in sorted(self._open_cuts):
            if not self._cut_complete(snapshot_id):
                continue
            self._open_cuts.discard(snapshot_id)
            with self.lock:
                archive = archive_node(
                    self.node, self.registry, snapshot_id,
                    self.telemetry.spans.ordinals())
            self.conn.send(("cut-data", archive))

    def _restore(self, payload: dict) -> None:
        """Roll this node back to a restore point under a new epoch."""
        epoch = payload["epoch"]
        # Black box first: the discarded world's last moments are exactly
        # what a restore post-mortem needs, and the rollback wipes them.
        flight = self.telemetry.flight
        if flight.enabled and len(flight):
            flight.note("restore", self.node.name, epoch=epoch)
            flight.dump(tag=self.node.name, reason="restore")
        with self.lock:
            # Fence first: traffic minted in the discarded world must not
            # leak into the restored one.  ``set_epoch`` also rebases the
            # logical wire counters to a balanced zero on every worker.
            self.transport.set_epoch(epoch)
            self.transport.flush()
            self.telemetry.spans.set_epoch(epoch)
            minter = payload.get("minter_ordinals")
            if minter:
                self.telemetry.spans.load_ordinals(minter)
            # In-progress cuts recorded state of the discarded world.
            self.registry.snapshots.clear()
            self._open_cuts.clear()
            replayed = restore_node(self.node, payload["images"],
                                    payload["resent"])
            # run()'s contribution counter mirrors the restored schedulers
            # so merged dispatch totals match an uninterrupted run.
            self.dispatched = sum(ss.scheduler.dispatched
                                  for ss in self.node.subsystems.values())
        self.until = payload["until"]
        if self.telemetry.enabled:
            self.telemetry.count("migration.restores")
            if replayed:
                self.telemetry.count("migration.replayed_messages",
                                     replayed)

    # ------------------------------------------------------------------
    def serve(self) -> None:
        conn = self.conn
        inbox = self.inbox
        # Hello carries the wire-codec version: every process must speak
        # the same frame layout, and a mixed deployment (a stale worker
        # importing an old tree) must die at startup, not mid-run with a
        # cryptic decode error.
        conn.send(("port", (self.transport.local_port(self.node.name),
                            CODEC_VERSION)))
        running = False
        crashed = False
        halted = False
        idle_noted = False
        while True:
            message = inbox.pop()
            if message is not None:
                tag = message[0]
                if tag == "peers":
                    for peer, (host, port) in sorted(message[1].items()):
                        self.transport.set_peer(peer, port, host)
                elif tag == "repeer":
                    # Re-splice after a migration: drop the stale address,
                    # cached connections and (shm) retired rings before
                    # learning the node's new home.
                    for peer, (host, port) in sorted(message[1].items()):
                        self.transport.forget_peer(peer)
                        self.transport.set_peer(peer, port, host)
                elif tag == "rings":
                    self._attach_rings(message[1])
                elif tag == "detach-rings":
                    if isinstance(self.transport, SharedMemoryTransport):
                        self.transport.detach_node_rings(message[1])
                elif tag == "start":
                    self.until = message[1]
                    with self.lock:
                        self.node.start()
                    running = True
                    halted = False
                    idle_noted = False
                elif tag == "halt":
                    halted = True
                    try:
                        self.transport.flush_batches(src=self.node.name)
                    except TransportError:
                        if not self.spec.supervised:
                            raise
                    # Echo the token: the coordinator drops acks from
                    # coordination rounds a cascading failure aborted.
                    conn.send(("halted", message[1]))
                elif tag == "cut":
                    self._initiate_cut(message[1])
                elif tag == "restore":
                    self._restore(message[1])
                    # Stay parked until the coordinator's start: running
                    # ahead of peers still restoring would only mint
                    # traffic their epoch fence discards.
                    halted = True
                    conn.send(("restored", message[1]["epoch"]))
                elif tag == "status?":
                    conn.send(("status", self._status()))
                elif tag == "crash":
                    crashed = True
                    if self.injector is not None:
                        self.injector.mark_down(self.node.name)
                elif tag == "report?":
                    conn.send(("report", self._report_bundle()))
                elif tag == "stop":
                    return
                continue    # drain queued control before the next round
            if inbox.eof:
                # Coordinator gone: exit rather than linger as an orphan.
                return
            if not running or crashed or halted:
                if not crashed and (halted or self._open_cuts):
                    # Halted (or parked with an open cut): keep the wire
                    # draining so in-flight traffic and marks land, and
                    # push archives as cuts complete.
                    moved = self._drain_round()
                    self._announce_cuts()
                    inbox.park(0.01 if moved else 0.05)
                else:
                    inbox.park(60.0)
                continue
            try:
                self.progress = self._one_round()
            except TransportError:
                if not self.spec.supervised:
                    raise
                # A peer vanished mid-send.  The supervisor is about to
                # fail over and restore this worker — wedge (report no
                # progress, keep serving control) instead of dying, so
                # one dead node does not cascade into a dead cluster.
                self.progress = False
            self.rounds += 1
            series = self.series
            if series is not None:
                # Sampled at the round boundary, never inside dispatch:
                # the virtual cadence is deterministic for a given
                # schedule, the wall cadence is a measurement.
                with self.lock:
                    now = min((ss.now
                               for ss in self.node.subsystems.values()),
                              default=0.0)
                series.tick(now, self.telemetry.registry,
                            wall=_time.monotonic())
            self._announce_cuts()
            if self.progress:
                idle_noted = False
                continue
            if not idle_noted:
                # One note per idle transition wakes the coordinator's
                # supervision wait without a per-round status storm.
                idle_noted = True
                conn.send(("note", "idle"))
            # Park until control or network traffic; the short backstop
            # covers tick-counted fault releases that arrive without a
            # wire-level wakeup.
            inbox.park(0.05)

    def _attach_rings(self, names: Dict[Tuple[str, str], str]) -> None:
        if not isinstance(self.transport, SharedMemoryTransport):
            return
        me = self.node.name
        for (src, dst), name in sorted(names.items()):
            if src == me:
                self.transport.attach_outbound_ring(src, dst, name)
            elif dst == me:
                self.transport.attach_inbound_ring(src, dst, name)

    def close(self) -> None:
        self.transport.close()


def _json_safe(value):
    """``inf`` has no JSON encoding; status snapshots use ``null``."""
    return None if value == float("inf") else value


def status_snapshot(statuses: Dict[str, dict], *,
                    until: float = float("inf"),
                    phase: str = "running") -> dict:
    """Fold per-worker ``status?`` replies into one JSON-safe snapshot.

    The document :mod:`repro.observability.live` renders: per node the
    idle flag, control-loop round count, parked/pending messages, wire
    counters and heartbeat age (seconds since the worker stamped its
    reply), and per subsystem the local virtual time, next event, event
    count, queue depth, safe-time horizon, stall state and the peer
    currently pinning the horizon.
    """
    wall = _time.time()
    nodes = {}
    times = []
    for name in sorted(statuses):
        st = statuses[name]
        rows = []
        for row in st["subsystems"]:
            times.append(row["time"])
            rows.append({
                "name": row["name"],
                "time": row["time"],
                "next_event": _json_safe(row["next_event"]),
                "dispatched": row["dispatched"],
                "stalls": row["stalls"],
                "queue_depth": row["queue_depth"],
                "horizon": _json_safe(row["horizon"]),
                "stalled": row["stalled"],
                "waiting_on": row["waiting_on"],
            })
        nodes[name] = {
            "idle": st["idle"],
            "rounds": st["rounds"],
            "pending": st["pending"],
            "wire_out": st["wire_out"],
            "wire_in": st["wire_in"],
            "epoch": st.get("epoch", 0),
            "heartbeat_age": max(0.0, wall - st.get("wall", wall)),
            "subsystems": rows,
        }
    return {"phase": phase, "wall": wall, "until": _json_safe(until),
            "global_time": min(times, default=0.0), "nodes": nodes}


def _inbox_reader(conn, inbox: _ControlInbox) -> None:
    """Pump every control-pipe message into the inbox; EOF means the
    coordinator closed its end (or died)."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            inbox.push_eof()
            return
        inbox.push(message)


def _pool_main(conn) -> None:
    """Process entry point for a warm pool worker (top-level so it
    survives ``spawn`` pickling).

    The process outlives any single job: it loops receiving ``("job",
    spec)`` messages, runs a full :class:`_Worker` lifetime per job, and
    acknowledges teardown with ``("job-done",)`` so the coordinator
    knows the worker is clean to reuse.  The expensive part of
    process-per-node execution — ``spawn`` plus importing the framework
    — is paid once per *pool worker*, not once per ``run()``.
    """
    inbox = _ControlInbox()
    threading.Thread(target=_inbox_reader, args=(conn, inbox),
                     name="pia-pool-reader", daemon=True).start()
    while True:
        message = inbox.wait_control()
        if message is None:     # coordinator gone
            return
        tag = message[0]
        if tag == "exit":
            return
        if tag != "job":
            # Stray control from a job that already ended (a "stop" or
            # "status?" that raced the job-done ack): ignore.
            continue
        worker = None
        try:
            worker = _Worker(message[1], conn, inbox)
            worker.serve()
        except BaseException as exc:     # surface into the coordinator
            if worker is not None:
                # Crash post-mortem: dump the black box before the
                # process (or the next job) loses it.
                worker.telemetry.flight.dump(
                    tag=worker.node.name,
                    reason=f"{type(exc).__name__}: {exc}")
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except OSError:
                return
        finally:
            if worker is not None:
                try:
                    worker.close()
                except Exception:
                    pass
        try:
            conn.send(("job-done",))
        except OSError:
            return


class _PoolWorker:
    """Coordinator-side handle on one warm worker process."""

    def __init__(self, ctx, index: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(target=_pool_main, args=(child_conn,),
                                name=f"pia-pool-{index}", daemon=True)
        self.proc.start()
        child_conn.close()

    def is_alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)


class WorkerPool:
    """A reusable pool of warm worker processes.

    Spawning a Python process and importing the framework costs far more
    than most short co-simulation runs.  A pool spawns each process
    once; :class:`MultiprocessCoSimulation` checks workers out per
    ``run()`` and returns them afterwards, so repeated runs (parameter
    sweeps, benchmarks, warm services) skip the spawn entirely.  Share
    one pool across executors by passing it as the ``pool=`` argument.
    """

    def __init__(self, *, start_method: str = "spawn") -> None:
        if start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available on this "
                f"platform: {multiprocessing.get_all_start_methods()}")
        self.start_method = start_method
        self.ctx = multiprocessing.get_context(start_method)
        self._idle: List[_PoolWorker] = []
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._closed = False
        #: Lifetime spawn count (a warm pool keeps this flat across runs).
        self.spawned = 0

    def acquire(self, count: int) -> List[_PoolWorker]:
        """Check out ``count`` live workers, spawning only on shortfall."""
        with self._lock:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
            workers: List[_PoolWorker] = []
            while self._idle and len(workers) < count:
                worker = self._idle.pop()
                if worker.is_alive():
                    workers.append(worker)
                else:
                    worker.kill()
            while len(workers) < count:
                workers.append(_PoolWorker(self.ctx, next(self._seq)))
                self.spawned += 1
            return workers

    def release(self, worker: _PoolWorker, *, healthy: bool = True) -> None:
        """Return a worker; unhealthy (or post-close) workers are killed.

        A worker that died (or misbehaved) mid-job must not poison its
        pool slot: unless the pool is closed, a replacement is spawned
        into the idle set so capacity stays constant across failures.
        """
        with self._lock:
            if not self._closed:
                if healthy and worker.is_alive():
                    self._idle.append(worker)
                    return
                self._idle.append(_PoolWorker(self.ctx, next(self._seq)))
                self.spawned += 1
        worker.kill()

    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    def close(self) -> None:
        """Shut down idle workers; in-flight workers die on release."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
        for worker in idle:
            try:
                worker.conn.send(("exit",))
            except OSError:
                pass
        for worker in idle:
            try:
                worker.proc.join(timeout=1.0)
            except Exception:
                pass
            worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MultiprocessCoSimulation:
    """Run each Pia node in its own OS process (conservative channels).

    The construction API parallels :class:`CoSimulation` but takes *specs*
    instead of live objects: subsystems are named factories resolved in
    the worker process, channels are declared by subsystem and net names.
    Batching and grant piggybacking are on by default — synchronous
    safe-time traffic is what process-parallel deployments can least
    afford.

    With a ``fault_plan``, each worker runs the plan's per-node
    derivation (:meth:`~repro.faults.FaultPlan.for_node` — same seed, own
    crashes): message-fault decisions stay pure functions of the seed and
    per-link ordinals, so seeded chaos counters match the single-process
    executors.  A scheduled crash (fired by the coordinator once global
    virtual time reaches it) or a worker process dying raises a typed
    :class:`~repro.core.errors.NodeFailure` — this executor, like the
    threaded one, cannot roll back.
    """

    def __init__(self, *, telemetry: Optional[Telemetry] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 batching: bool = True,
                 start_method: str = "spawn",
                 trace_capacity: int = 4096,
                 transport: str = "tcp",
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 pool: Optional[WorkerPool] = None,
                 failure_policy: str = "raise",
                 heartbeat_timeout: float = 5.0,
                 series_interval: Optional[float] = None,
                 series_wall_interval: Optional[float] = None,
                 health: bool = False,
                 stream_telemetry: bool = False) -> None:
        if start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available on this "
                f"platform: {multiprocessing.get_all_start_methods()}")
        if transport not in ("tcp", "shm"):
            raise ConfigurationError(
                f"unknown transport {transport!r}: expected 'tcp' (works "
                "across machines) or 'shm' (same-host shared-memory rings)")
        if failure_policy not in MP_FAILURE_POLICIES:
            raise ConfigurationError(
                f"unknown failure policy {failure_policy!r}: expected one "
                f"of {MP_FAILURE_POLICIES}")
        if heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat timeout must be positive: {heartbeat_timeout}")
        for label, interval in (("series_interval", series_interval),
                                ("series_wall_interval",
                                 series_wall_interval)):
            if interval is not None and interval <= 0:
                raise ConfigurationError(
                    f"{label} must be positive: {interval}")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.batching = batching
        self.start_method = start_method
        self.trace_capacity = trace_capacity
        self.transport = transport
        self.ring_capacity = ring_capacity
        self._pool = pool
        self._own_pool: Optional[WorkerPool] = None
        self._pool_finalizer = None
        self._nodes: Dict[str, List[SubsystemSpec]] = {}
        self._subsystem_node: Dict[str, str] = {}
        self._channels: List[ChannelSpec] = []
        self._channel_seq = 0
        #: Per-worker report bundles from the last completed run.
        self._bundles: Optional[Dict[str, dict]] = None
        self.dispatched = 0
        self.cpu_seconds = 0.0
        self._status_path: Optional[str] = None
        self._status_interval = 0.5
        self._status_listener: Optional[Callable[[dict], None]] = None
        self._status_published = 0.0
        self._last_statuses: Dict[str, dict] = {}
        # --- continuous telemetry plane ---------------------------------
        #: Per-worker time-series cadences and link-health switch,
        #: forwarded verbatim in every :meth:`worker_spec`.
        self.series_interval = series_interval
        self.series_wall_interval = series_wall_interval
        self.health = health
        #: When on, workers attach streaming deltas to ``status?``
        #: replies and the coordinator folds them into its live status
        #: snapshots (the data :mod:`repro.observability.serve` exposes).
        self.stream_telemetry = stream_telemetry
        #: Folded streaming state: cumulative counters, latest gauges,
        #: bounded per-series point tails, latest health row per link.
        self._stream: Dict[str, dict] = {}
        # --- supervised failover / live migration state -----------------
        self.failure_policy = failure_policy
        self.heartbeat_timeout = heartbeat_timeout
        #: Heartbeat detector for the last/current supervised run.
        self.detector: Optional[FailureDetector] = None
        #: Completed migrations/failovers of the last/current run.
        self.migrations: List[MigrationRecord] = []
        #: Placement timeline: (wall, node, worker process name, event).
        self.placement_log: List[dict] = []
        self._migrate_lock = threading.Lock()
        self._migrate_requests: List[Tuple[str, float]] = []
        self._archives: Dict[str, NodeArchive] = {}
        self._restore_point: Optional[str] = None
        self._run_epoch = 0
        self._carryover: List[Tuple[str, dict]] = []
        #: Tokens for coordination acks (see ``_expect``'s ``match``).
        self._ctl_seq = itertools.count(1)
        # Live per-run control-plane context (set by run(), mutated by
        # failover/migration while the run is in flight).
        self._ports: Dict[str, int] = {}
        self._segments: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> str:
        if name in self._nodes:
            raise ConfigurationError(f"duplicate node {name!r}")
        self._nodes[name] = []
        return name

    def add_subsystem(self, node: str, name: str, factory: str,
                      *args, **kwargs) -> SubsystemSpec:
        """Declare subsystem ``name`` on ``node``, built in the worker by
        ``factory(name, *args, **kwargs)`` (see :func:`resolve_factory`).
        Positional and keyword arguments must be picklable."""
        if node not in self._nodes:
            raise ConfigurationError(f"no node named {node!r}")
        if name in self._subsystem_node:
            raise ConfigurationError(f"duplicate subsystem {name!r}")
        spec = SubsystemSpec(name, factory, tuple(args), dict(kwargs))
        self._nodes[node].append(spec)
        self._subsystem_node[name] = node
        return spec

    def connect(self, a: str, b: str, *, delay: float = 0.0,
                nets: Tuple[str, ...] = ()) -> ChannelSpec:
        """Declare a conservative channel between subsystems ``a`` and
        ``b`` carrying the named split nets."""
        for name in (a, b):
            if name not in self._subsystem_node:
                raise ConfigurationError(f"no subsystem named {name!r}")
        self._channel_seq += 1
        spec = ChannelSpec(
            channel_id=f"mch{self._channel_seq}-{a}-{b}",
            subsystem_a=a, node_a=self._subsystem_node[a],
            subsystem_b=b, node_b=self._subsystem_node[b],
            delay=delay, nets=tuple(nets))
        self._channels.append(spec)
        return spec

    def worker_spec(self, node: str) -> _WorkerSpec:
        """The picklable bootstrap spec worker ``node`` receives."""
        if node not in self._nodes:
            raise ConfigurationError(f"no node named {node!r}")
        plan = self.fault_plan.for_node(node) \
            if self.fault_plan is not None else None
        return _WorkerSpec(
            node=node,
            subsystems=tuple(self._nodes[node]),
            channels=tuple(cs for cs in self._channels if cs.touches(node)),
            batching=self.batching,
            fault_plan=plan,
            retry_policy=self.retry_policy,
            trace_capacity=self.trace_capacity,
            transport=self.transport,
            ring_capacity=self.ring_capacity,
            supervised=self.failure_policy == "migrate",
            series_interval=self.series_interval,
            series_wall_interval=self.series_wall_interval,
            health=self.health,
            stream=self.stream_telemetry,
        )

    def _ring_links(self) -> List[Tuple[str, str]]:
        """Every directed node pair a channel crosses — one shm ring each."""
        links = set()
        for cs in self._channels:
            if cs.node_a != cs.node_b:
                links.add((cs.node_a, cs.node_b))
                links.add((cs.node_b, cs.node_a))
        return sorted(links)

    def _acquire_pool(self) -> WorkerPool:
        if self._pool is not None:
            return self._pool
        if self._own_pool is None:
            self._own_pool = WorkerPool(start_method=self.start_method)
            # Tie the private pool's lifetime to this executor so dropped
            # instances do not strand warm processes.
            self._pool_finalizer = weakref.finalize(
                self, WorkerPool.close, self._own_pool)
        return self._own_pool

    def close(self) -> None:
        """Shut down the executor's private warm pool (shared pools passed
        via ``pool=`` are the caller's to close)."""
        if self._own_pool is not None:
            self._own_pool.close()
            self._own_pool = None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None

    def __enter__(self) -> "MultiprocessCoSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_topology(self) -> None:
        """Specs cannot see port directions, so the check is the safe
        over-approximation of the paper's simple-cycle rule: treating
        every channel as bidirectional, the subsystem graph must be a
        forest (any undirected cycle of length >= 3 *could* be a
        non-simple directed cycle)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._subsystem_node)
        for cs in self._channels:
            graph.add_edge(cs.subsystem_a, cs.subsystem_b)
        cycles = nx.cycle_basis(graph)
        if cycles:
            rendered = "; ".join(" - ".join(cycle) for cycle in cycles)
            raise TopologyError(
                f"multiprocess channel graph contains cycles: {rendered}. "
                "The process-per-node deployment requires an acyclic "
                "(tree-shaped) channel graph.")

    # ------------------------------------------------------------------
    # live migration requests
    # ------------------------------------------------------------------
    def migrate(self, node: str) -> None:
        """Request a live migration of ``node`` to a fresh pool worker.

        Thread-safe: callable from a ``status_listener`` (or any other
        thread) while :meth:`run` is in flight.  The supervision loop
        picks the request up on its next sweep — requires
        ``failure_policy="migrate"``.
        """
        self.migrate_at(node, float("-inf"))

    def migrate_at(self, node: str, at_time: float) -> None:
        """Request a migration of ``node`` once global virtual time
        reaches ``at_time`` (deterministic trigger point)."""
        if node not in self._nodes:
            raise ConfigurationError(f"no node named {node!r}")
        if self.failure_policy != "migrate":
            raise ConfigurationError(
                "live migration requires failure_policy='migrate'")
        with self._migrate_lock:
            self._migrate_requests.append((node, at_time))

    def _due_migrations(self, global_now: float) -> List[str]:
        due: List[str] = []
        with self._migrate_lock:
            keep = []
            for node, at_time in self._migrate_requests:
                if at_time <= global_now:
                    if node not in due:
                        due.append(node)
                else:
                    keep.append((node, at_time))
            self._migrate_requests = keep
        return due

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = float("inf"), *,
            timeout: float = 60.0,
            status_path: Optional[str] = None,
            status_interval: float = 0.5,
            status_listener: Optional[Callable[[dict], None]] = None) -> int:
        """Run all nodes in parallel processes until global quiescence
        (or every event queue passes ``until``); returns total events.

        ``status_path`` enables live introspection: the coordinator's
        supervision loop writes a JSON :func:`status_snapshot` there
        (atomically, every ``status_interval`` seconds, plus a final
        ``phase: "done"`` snapshot) which ``python -m
        repro.observability.live <path>`` tails as a console view.
        ``status_listener`` receives the same snapshots in-process.
        """
        if not self._nodes:
            return 0
        self._check_topology()
        self._status_path = status_path
        self._status_interval = status_interval
        self._status_listener = status_listener
        self._status_published = 0.0
        self._last_statuses: Dict[str, dict] = {}
        self._stream = {}
        self.migrations = []
        self.placement_log = []
        self._archives = {}
        self._restore_point = None
        self._run_epoch = 0
        self._carryover = []
        self.detector = FailureDetector(timeout=self.heartbeat_timeout) \
            if self.failure_policy == "migrate" else None
        started_at = _time.perf_counter()
        pool = self._acquire_pool()
        names = sorted(self._nodes)
        workers = pool.acquire(len(names))
        assigned: Dict[str, _PoolWorker] = dict(zip(names, workers))
        procs: Dict[str, _PoolWorker] = assigned
        pipes: Dict[str, object] = {name: worker.conn
                                    for name, worker in assigned.items()}
        self._segments = {}
        deadline = _time.monotonic() + timeout
        for name in names:
            self._log_placement(name, assigned[name], "assigned")
        try:
            for name in names:
                pipes[name].send(("job", self.worker_spec(name)))
            self._ports = {name: self._hello_port(pipes, procs, name,
                                                  deadline)
                           for name in names}
            if self.transport == "shm":
                # One SPSC ring per directed link, created here so the
                # coordinator owns (and can always unlink) the segments.
                for link in self._ring_links():
                    self._segments[link] = \
                        create_ring_segment(self.ring_capacity)
                ring_names = {link: seg.name
                              for link, seg in self._segments.items()}
                for name in names:
                    mine = {link: ring for link, ring in ring_names.items()
                            if name in link}
                    pipes[name].send(("rings", mine))
            for name in names:
                peers = {peer: ("127.0.0.1", port)
                         for peer, port in self._ports.items()
                         if peer != name}
                pipes[name].send(("peers", peers))
            if self.failure_policy == "migrate":
                # Baseline restore point: a pre-start Chandy-Lamport cut,
                # archived coordinator-side before any event dispatches.
                self._take_snapshot(pipes, procs, deadline)
            for name in names:
                pipes[name].send(("start", until))
            self._supervise(pipes, procs, until, deadline)
            bundles: Dict[str, dict] = {}
            for name in names:
                pipes[name].send(("report?",))
                bundles[name] = self._expect(pipes, procs, name, "report",
                                             deadline)
            self._bundles = bundles
            self.dispatched = sum(b["dispatched"] for b in bundles.values())
            if self._last_statuses:
                self._publish_status(self._last_statuses, until,
                                     phase="done", force=True)
        finally:
            for name in names:
                try:
                    pipes[name].send(("stop",))
                except OSError:
                    pass
            for name in names:
                worker = assigned[name]
                clean = self._drain_job_done(worker, timeout=2.5)
                pool.release(worker, healthy=clean)
            # Workers have detached from their ring segments (job-done
            # comes after transport close), so unlink retires them.
            for segment in self._segments.values():
                try:
                    segment.close()
                    segment.unlink()
                except OSError:
                    pass
            self._segments = {}
        elapsed = _time.perf_counter() - started_at
        self.cpu_seconds += elapsed
        if self.telemetry.enabled:
            self.telemetry.registry.timer("executor.run").add(elapsed)
            self.telemetry.gauge("mp.workers", len(procs))
            self.telemetry.gauge("mp.pool_spawned", pool.spawned)
        return self.dispatched

    @staticmethod
    def _drain_job_done(worker: _PoolWorker, *, timeout: float) -> bool:
        """Wait for the worker's ``job-done`` teardown ack, swallowing
        whatever the aborted job left queued (stale statuses, idle notes,
        parting errors).  Returns False — do not reuse — on silence or a
        dead pipe."""
        deadline = _time.monotonic() + timeout
        while True:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                return False
            try:
                if not worker.conn.poll(remaining):
                    return False
                message = worker.conn.recv()
            except (EOFError, OSError):
                return False
            if message[0] == "job-done":
                return True

    #: Reply tags a cascading failure can leave queued from an aborted
    #: coordination round (plus status replies that outlive their sweep).
    #: They are dropped when a different tag is expected; token-bearing
    #: acks are additionally vetted by ``match``.
    _STALE_OK = frozenset(("halted", "restored", "cut-data", "status"))

    def _hello_port(self, pipes, procs, name: str, deadline: float) -> int:
        """Receive a worker's ``port`` hello and vet its codec version.

        The wire format is only compatible between processes importing
        the same codec layout; a stale worker must fail the deployment
        loudly here instead of poisoning peers with undecodable frames.
        """
        payload = self._expect(pipes, procs, name, "port", deadline)
        port, version = payload
        if version != CODEC_VERSION:
            raise ConfigurationError(
                f"worker {name!r} speaks wire codec v{version}, "
                f"coordinator speaks v{CODEC_VERSION} — all processes "
                "must run the same build")
        return port

    def _expect(self, pipes, procs, name: str, tag: str, deadline: float,
                *, match=None):
        """Wait for one ``tag`` message from worker ``name``.

        ``note`` messages (idle-edge wakeups) are advisory and skipped,
        as are stale acks from aborted coordination rounds (see
        ``_STALE_OK``); ``match`` vets the payload of a matching tag and
        skips it when it returns False (an ack for an older token).
        A worker that died with a parting ``error`` still queued gets
        that error surfaced — its pipe reads succeed until drained —
        rather than a generic death message.
        """
        conn = pipes[name]
        while True:
            remaining = max(0.0, deadline - _time.monotonic())
            if not conn.poll(remaining):
                if not procs[name].is_alive():
                    raise NodeFailure(
                        f"node {name!r}: worker process died without a "
                        f"{tag!r} reply", node=name)
                raise SimulationError(
                    f"node {name!r}: worker unresponsive (no {tag!r} within "
                    "the run timeout)")
            try:
                message = conn.recv()
            except EOFError:
                raise NodeFailure(
                    f"node {name!r}: worker process died mid-run",
                    node=name) from None
            if message[0] == "note":
                continue
            if message[0] == "error":
                raise NodeFailure(
                    f"node {name!r} worker failed: {message[1]}", node=name)
            if message[0] != tag:
                if message[0] in self._STALE_OK:
                    continue
                raise SimulationError(
                    f"node {name!r}: expected {tag!r} from worker, got "
                    f"{message[0]!r}")
            if match is not None and not match(message[1]):
                continue
            return message[1]

    def _fold_stream(self, statuses: Dict[str, dict]) -> None:
        """Fold workers' streaming telemetry deltas into the live view:
        counters accumulate, gauges and health rows replace, series grow
        bounded tails keyed ``node/metric``."""
        for name in sorted(statuses):
            delta = statuses[name].get("telemetry")
            if not delta:
                continue
            counters = self._stream.setdefault("counters", {})
            for key, value in delta.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            self._stream.setdefault("gauges", {}).update(
                delta.get("gauges", {}))
            series = self._stream.setdefault("series", {})
            for sname, fresh in delta.get("series", {}).items():
                points = series.setdefault(f"{name}/{sname}",
                                           {"points": []})["points"]
                points.extend(fresh)
                del points[:-SERIES_CAPACITY]
            health = self._stream.setdefault("health", {})
            for row in delta.get("health", []):
                health[(row["src"], row["dst"])] = row

    def _stream_sections(self, snapshot: dict) -> None:
        """Attach the folded streaming state to a status snapshot (the
        sections :mod:`repro.observability.serve` renders)."""
        if not self._stream:
            return
        snapshot["telemetry"] = {
            "counters": dict(sorted(
                self._stream.get("counters", {}).items())),
            "gauges": {key: _json_safe(value) for key, value
                       in sorted(self._stream.get("gauges", {}).items())},
        }
        series = self._stream.get("series")
        if series:
            snapshot["series"] = {
                sname: {"points": [[t, _json_safe(v)]
                                   for t, v in row["points"]]}
                for sname, row in sorted(series.items())}
        health = self._stream.get("health")
        if health:
            # Live advisory scoring: no stall attribution mid-run (that
            # needs the merged trace), so stall fractions read 0 and the
            # score reflects queue depth and delay only.  The final
            # report re-scores against the real attribution.
            snapshot["health"] = finalize_health(
                [dict(health[key]) for key in sorted(health)])

    def _publish_status(self, statuses: Dict[str, dict], until: float, *,
                        phase: str = "running", force: bool = False) -> None:
        """Surface the latest worker statuses for live introspection."""
        self._last_statuses = statuses
        if self.stream_telemetry:
            self._fold_stream(statuses)
        if self._status_path is None and self._status_listener is None:
            return
        now = _time.monotonic()
        if not force and now - self._status_published < self._status_interval:
            return
        self._status_published = now
        snapshot = status_snapshot(statuses, until=until, phase=phase)
        if self.failure_policy == "migrate":
            snapshot["epoch"] = self._run_epoch
            snapshot["placement"] = [dict(entry)
                                     for entry in self.placement_log]
            snapshot["migrations"] = [record.to_dict()
                                      for record in self.migrations]
        self._stream_sections(snapshot)
        if self._status_listener is not None:
            self._status_listener(snapshot)
        if self._status_path is not None:
            # Atomic replace after an fsync: a concurrent reader always
            # sees a complete JSON document, and a crash straddling the
            # replace cannot leave a zero-length file where a monitor
            # expected the last good snapshot.
            tmp = f"{self._status_path}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._status_path)

    # ------------------------------------------------------------------
    # supervised failover / live migration
    # ------------------------------------------------------------------
    def _log_placement(self, node: str, worker: _PoolWorker,
                       event: str) -> None:
        self.placement_log.append({
            "wall": _time.time(), "node": node, "event": event,
            "worker": getattr(worker.proc, "name", "?"),
            "pid": getattr(worker.proc, "pid", None),
            "epoch": self._run_epoch,
        })

    def _take_snapshot(self, pipes, procs, deadline: float) -> str:
        """Coordinate a Chandy-Lamport cut and archive it here.

        Every worker cuts its local subsystems, lets the marks cross,
        and pushes a :class:`NodeArchive` back — the coordinator is the
        run's stable storage, so the restore point survives any worker.
        """
        names = sorted(self._nodes)
        snapshot_id = new_snapshot_id()
        for name in names:
            pipes[name].send(("cut", snapshot_id))
        archives: Dict[str, NodeArchive] = {}
        for name in names:
            archives[name] = self._expect(
                pipes, procs, name, "cut-data", deadline,
                match=lambda a: a.snapshot_id == snapshot_id)
        self._archives = archives
        self._restore_point = snapshot_id
        if self.telemetry.enabled:
            self.telemetry.count("migration.snapshots")
        return snapshot_id

    def _drain_wire(self, pipes, procs, deadline: float) -> None:
        """Wait until nothing is in flight anywhere: all queued batches
        flushed, inboxes pumped dry, fault-held deliveries released, and
        the global wire counters balanced across two consecutive probes.
        Workers must already be halted (their drain rounds keep pumping)."""
        previous = None
        while True:
            if _time.monotonic() > deadline:
                raise SimulationError(
                    "migration drain did not reach wire quiescence "
                    "within the timeout")
            for name in sorted(procs):
                pipes[name].send(("status?",))
            statuses = {name: self._expect(pipes, procs, name, "status",
                                           deadline)
                        for name in sorted(procs)}
            if self.stream_telemetry:
                # Workers already consumed these deltas replying; fold
                # them or the drain window goes dark in the live view.
                self._fold_stream(statuses)
            wire_out = sum(st["wire_out"] for st in statuses.values())
            wire_in = sum(st["wire_in"] for st in statuses.values())
            pending = sum(st["pending"] for st in statuses.values())
            balanced = pending == 0 and wire_out == wire_in
            signature = (wire_out, wire_in)
            if balanced and signature == previous:
                return
            previous = signature if balanced else None
            _time.sleep(0.01)

    def _resplice(self, moved, pipes, procs) -> None:
        """Re-splice every channel endpoint that touches a moved node:
        shm rings are recreated (a killed producer can leave a torn
        frame), survivors drop cached connections and stale peer
        addresses, and the moved nodes learn the full peer map."""
        names = sorted(self._nodes)
        moved_set = set(moved)
        fresh: Dict[Tuple[str, str], str] = {}
        if self.transport == "shm":
            for link in self._ring_links():
                if not (set(link) & moved_set):
                    continue
                old = self._segments.pop(link, None)
                if old is not None:
                    try:
                        old.close()
                        old.unlink()
                    except OSError:
                        pass
                segment = create_ring_segment(self.ring_capacity)
                self._segments[link] = segment
                fresh[link] = segment.name
        repeer = {name: ("127.0.0.1", self._ports[name])
                  for name in sorted(moved_set)}
        for name in names:
            if name in moved_set:
                continue
            # ``repeer`` first: it retires the survivor's rings to the
            # moved nodes (shm) and closes cached connections, so the
            # fresh ring attach below cannot be clobbered.
            pipes[name].send(("repeer", repeer))
            touched = {link: ring for link, ring in fresh.items()
                       if name in link}
            if touched:
                pipes[name].send(("rings", touched))
        for name in sorted(moved_set):
            if self.transport == "shm":
                mine = {link: seg.name
                        for link, seg in self._segments.items()
                        if name in link}
                pipes[name].send(("rings", mine))
            peers = {peer: ("127.0.0.1", port)
                     for peer, port in self._ports.items() if peer != name}
            pipes[name].send(("peers", peers))

    def _restore_all(self, pipes, procs, until: float,
                     deadline: float) -> Tuple[int, int]:
        """Roll every worker back to the current restore point under a
        new migration epoch.  Returns (archived bytes, replayed count)."""
        names = sorted(self._nodes)
        self._run_epoch += 1
        resent = resent_counts(self._archives.values())
        snapshot_bytes = 0
        for name in names:
            archive = self._archives[name]
            snapshot_bytes += archive.storage_bytes()
            pipes[name].send(("restore", {
                "epoch": self._run_epoch,
                "until": until,
                "images": archive.images,
                "resent": resent,
                "minter_ordinals": archive.minter_ordinals,
            }))
        epoch = self._run_epoch
        for name in names:
            self._expect(pipes, procs, name, "restored", deadline,
                         match=lambda e: e == epoch)
        return snapshot_bytes, sum(resent.values())

    def _failover(self, dead_nodes, pipes, procs, until: float,
                  deadline: float, global_now: float, *,
                  reason: str) -> None:
        """Replace dead workers and roll the run back to the last
        completed global snapshot (tolerating cascading deaths)."""
        if self._restore_point is None:
            raise NodeFailure(
                f"node {dead_nodes[0]!r} failed before a restore point "
                "existed — cannot fail over", node=dead_nodes[0])
        names = sorted(self._nodes)
        wall_started = _time.perf_counter()
        flight = self.telemetry.flight
        if flight.enabled:
            flight.note("failover", ",".join(sorted(dead_nodes)),
                        time=global_now, reason=reason,
                        epoch=self._run_epoch + 1)
            flight.dump(tag="coordinator", reason=f"failover: {reason}")
        if self.telemetry.enabled:
            for name in dead_nodes:
                self.telemetry.count("migration.failovers")
                self.telemetry.trace(TraceKind.MIGRATION, time=global_now,
                                     subject=name, reason=reason,
                                     epoch=self._run_epoch + 1)
        pool = self._acquire_pool()
        dead = sorted(set(dead_nodes))
        token = f"halt-{next(self._ctl_seq)}"
        halt_sent: set = set()
        halt_acked: set = set()
        job_sent: set = set()
        ported: set = set()
        adopted: Dict[str, _PoolWorker] = {}
        attempts = 0
        while True:
            fresh = sorted(name for name in dead if name not in adopted)
            for name in fresh:
                old = procs[name]
                old.kill()
                pool.release(old, healthy=False)   # respawns the slot
                self._log_placement(name, old, "lost")
                if self.detector is not None:
                    self.detector.forget(name)
            replacements = pool.acquire(len(fresh))
            for name, worker in zip(fresh, replacements):
                procs[name] = worker
                pipes[name] = worker.conn
                adopted[name] = worker
                self._log_placement(name, worker, "adopted")
            try:
                for name in names:
                    if name not in dead and name not in halt_sent:
                        pipes[name].send(("halt", token))
                        halt_sent.add(name)
                for name in names:
                    if name not in dead and name not in halt_acked:
                        self._expect(pipes, procs, name, "halted", deadline,
                                     match=lambda t: t == token)
                        halt_acked.add(name)
                for name in sorted(dead):
                    if name not in job_sent:
                        pipes[name].send(("job", self.worker_spec(name)))
                        job_sent.add(name)
                for name in sorted(dead):
                    if name not in ported:
                        self._ports[name] = self._hello_port(
                            pipes, procs, name, deadline)
                        ported.add(name)
                self._resplice(dead, pipes, procs)
                snapshot_bytes, replayed = self._restore_all(
                    pipes, procs, until, deadline)
                for name in names:
                    pipes[name].send(("start", until))
            except NodeFailure as exc:
                # Another worker (survivor or replacement) died during
                # the splice: fold it in and restart the round.  Stale
                # acks the aborted round left queued are token-vetted,
                # so the retry cannot misread them.
                attempts += 1
                if exc.node is None or attempts > 2 * len(names) + 4:
                    raise
                dead = sorted(set(dead) | {exc.node})
                for tracker in (adopted, ):
                    tracker.pop(exc.node, None)
                for tracker in (halt_sent, halt_acked, job_sent, ported):
                    tracker.discard(exc.node)
                continue
            break
        if self.detector is not None:
            now = _time.monotonic()
            for name in names:
                self.detector.beat(name, now)
        wall_pause = _time.perf_counter() - wall_started
        for name in dead:
            self.migrations.append(MigrationRecord(
                kind="failover", node=name, reason=reason,
                epoch=self._run_epoch, snapshot_id=self._restore_point,
                at_global_time=global_now, wall_pause=wall_pause,
                snapshot_bytes=snapshot_bytes,
                replayed_messages=replayed))

    def _do_migrate(self, nodes, pipes, procs, until: float,
                    deadline: float, global_now: float) -> None:
        """Move live nodes to fresh workers: halt, drain the wire, cut,
        re-splice, restore under a new epoch, resume."""
        names = sorted(self._nodes)
        moved = sorted(set(name for name in nodes if name in procs))
        if not moved:
            return
        wall_started = _time.perf_counter()
        flight = self.telemetry.flight
        if flight.enabled:
            flight.note("migrate", ",".join(moved), time=global_now,
                        epoch=self._run_epoch + 1)
            flight.dump(tag="coordinator", reason="migrate")
        if self.telemetry.enabled:
            for name in moved:
                self.telemetry.count("migration.migrations")
                self.telemetry.trace(TraceKind.MIGRATION, time=global_now,
                                     subject=name, reason="requested",
                                     epoch=self._run_epoch + 1)
        # 1. Stop the world; halted workers keep pumping the wire dry.
        token = f"halt-{next(self._ctl_seq)}"
        for name in names:
            pipes[name].send(("halt", token))
        for name in names:
            self._expect(pipes, procs, name, "halted", deadline,
                         match=lambda t: t == token)
        # 2. Nothing in flight may be dropped (or duplicated) by the
        #    re-splice, so the cut happens on a provably empty wire.
        self._drain_wire(pipes, procs, deadline)
        # 3. Cut at the drained state: this *advances* the restore point
        #    (a later failover resumes from here, not from t=0).
        snapshot_id = self._take_snapshot(pipes, procs, deadline)
        pool = self._acquire_pool()
        # Acquire every replacement *before* releasing the old workers:
        # a released worker goes straight back into the idle set, and a
        # "migration" that re-adopts the process it just left would move
        # nothing.
        replacements = dict(zip(moved, pool.acquire(len(moved))))
        for name in moved:
            # 4. Carry the old worker's telemetry home before releasing
            #    it: pre-migrate spans must stay in the merged trace so
            #    post-migrate receives still chain to their sends.
            pipes[name].send(("report?",))
            self._carryover.append(
                (name, self._expect(pipes, procs, name, "report", deadline)))
            old = procs[name]
            try:
                pipes[name].send(("stop",))
            except OSError:
                pass
            clean = self._drain_job_done(old, timeout=2.5)
            pool.release(old, healthy=clean)
            self._log_placement(name, old, "released")
            replacement = replacements[name]
            procs[name] = replacement
            pipes[name] = replacement.conn
            self._log_placement(name, replacement, "adopted")
            pipes[name].send(("job", self.worker_spec(name)))
            self._ports[name] = self._hello_port(pipes, procs, name,
                                                 deadline)
        # 5. Re-splice every affected endpoint, restore, resume.
        self._resplice(moved, pipes, procs)
        snapshot_bytes, replayed = self._restore_all(pipes, procs, until,
                                                     deadline)
        for name in names:
            pipes[name].send(("start", until))
        if self.detector is not None:
            now = _time.monotonic()
            for name in names:
                self.detector.beat(name, now)
        wall_pause = _time.perf_counter() - wall_started
        for name in moved:
            self.migrations.append(MigrationRecord(
                kind="migrate", node=name, reason="requested",
                epoch=self._run_epoch, snapshot_id=snapshot_id,
                at_global_time=global_now, wall_pause=wall_pause,
                snapshot_bytes=snapshot_bytes,
                replayed_messages=replayed))

    def _supervise(self, pipes, procs, until: float,
                   deadline: float) -> None:
        """Probe workers until distributed quiescence (double probe over
        idle flags, event horizons and wire-counter sums), firing
        scheduled crashes when global virtual time reaches them.

        Under ``failure_policy="migrate"`` this is the supervisor: every
        status reply feeds the heartbeat detector, and a dead, silent or
        crashed worker triggers :meth:`_failover` instead of a raised
        :class:`NodeFailure`."""
        pending_crashes = sorted(
            self.fault_plan.crashes, key=lambda c: (c.at_time, c.node)) \
            if self.fault_plan is not None else []
        for crash in pending_crashes:
            if crash.node not in procs:
                raise ConfigurationError(
                    f"scheduled crash for unknown node {crash.node!r}")
        supervised = self.failure_policy == "migrate"
        detector = self.detector
        if detector is not None:
            now = _time.monotonic()
            for name in sorted(procs):
                detector.beat(name, now)
        previous = None
        while True:
            if _time.monotonic() > deadline:
                self.telemetry.flight.note("timeout", "supervise")
                self.telemetry.flight.dump(tag="coordinator",
                                           reason="quiesce-timeout")
                raise SimulationError(
                    "multiprocess run did not quiesce within the timeout")
            dead: List[str] = []
            for name in sorted(procs):
                if not procs[name].is_alive():
                    if supervised:
                        dead.append(name)
                        continue
                    # Give a parting "error" message precedence over the
                    # bare death, if one is queued.  A dead worker's pipe
                    # never blocks (EOF is readable), so the real run
                    # deadline is safe — and unlike a zero deadline it
                    # cannot race past a queued error into the generic
                    # "unresponsive" path.
                    self._expect(pipes, procs, name, "status", deadline)
                try:
                    pipes[name].send(("status?",))
                except OSError:
                    if not supervised:
                        raise NodeFailure(
                            f"node {name!r}: control pipe closed mid-run",
                            node=name)
                    dead.append(name)
            statuses: Dict[str, dict] = {}
            for name in sorted(procs):
                if name in dead:
                    continue
                probe_deadline = deadline if not supervised else min(
                    deadline, _time.monotonic() + self.heartbeat_timeout)
                try:
                    statuses[name] = self._expect(pipes, procs, name,
                                                  "status", probe_deadline)
                except NodeFailure:
                    if not supervised:
                        raise
                    dead.append(name)
                    continue
                except SimulationError:
                    if not supervised:
                        raise
                    # Silent within the heartbeat window: no beat this
                    # sweep — the detector decides when silence becomes
                    # a confirmed failure.
                    continue
                if detector is not None:
                    detector.beat(name, _time.monotonic())
            if detector is not None:
                for name in detector.suspects(_time.monotonic()):
                    if name not in dead:
                        dead.append(name)
            times = [row["time"] for st in statuses.values()
                     for row in st["subsystems"]]
            global_now = min(times, default=0.0)
            if dead:
                self._failover(sorted(set(dead)), pipes, procs, until,
                               deadline, global_now, reason="worker-death")
                previous = None
                continue
            self._publish_status(statuses, until, phase="running")
            fired = False
            while pending_crashes and pending_crashes[0].at_time <= global_now:
                crash = pending_crashes.pop(0)
                if self.telemetry.enabled:
                    self.telemetry.count("fault.node_crashes")
                    self.telemetry.trace(TraceKind.NODE_CRASH,
                                         time=global_now, subject=crash.node)
                if not supervised:
                    pipes[crash.node].send(("crash",))
                    raise NodeFailure(
                        f"node {crash.node!r} crashed at global time "
                        f"{global_now:g} — the multiprocess executor cannot "
                        "roll back; rerun under CoSimulation with "
                        "failure_policy='recover' for crash recovery, or "
                        "use failure_policy='migrate' here for supervised "
                        "failover",
                        node=crash.node)
                # Supervised: a scheduled NodeCrash models the whole
                # machine dying — kill the worker process and fail over.
                procs[crash.node].kill()
                self._failover([crash.node], pipes, procs, until, deadline,
                               global_now, reason="scheduled-crash")
                fired = True
            if fired:
                previous = None
                continue
            if supervised:
                requested = self._due_migrations(global_now)
                if requested:
                    try:
                        self._do_migrate(requested, pipes, procs, until,
                                         deadline, global_now)
                    except NodeFailure as exc:
                        # A worker died mid-migration.  The migration is
                        # abandoned; every node it had in flight (plus
                        # the dead one) fails over to a fresh worker so
                        # none is left half-adopted.
                        if exc.node is None:
                            raise
                        self._failover(sorted(set(requested) | {exc.node}),
                                       pipes, procs, until, deadline,
                                       global_now, reason="worker-death")
                    previous = None
                    continue
            quiet = len(statuses) == len(procs)
            signature = []
            wire_out = wire_in = 0
            for name in sorted(statuses):
                st = statuses[name]
                if not st["idle"] or st["pending"]:
                    quiet = False
                for row in st["subsystems"]:
                    next_time = row["next_event"]
                    if next_time != float("inf") and next_time <= until:
                        quiet = False
                    signature.append((row["name"], row["time"],
                                      row["dispatched"]))
                wire_out += st["wire_out"]
                wire_in += st["wire_in"]
                signature.append((name, st["wire_out"], st["wire_in"]))
            if wire_out != wire_in:
                quiet = False
            signature = tuple(signature)
            if quiet and signature == previous:
                return
            if quiet:
                # First quiet sweep: confirm immediately.  The double
                # probe only needs two observations with no progress in
                # between; waiting would just delay the finish line.
                previous = signature
                continue
            previous = None
            # Busy sweep: park until a worker speaks (an idle note, a
            # queued error) instead of polling on a fixed 5 ms cadence.
            # The backstop keeps scheduled crashes and status publishing
            # on time even if every pipe stays silent.
            if pending_crashes:
                backstop = 0.05
            elif self._status_path is not None \
                    or self._status_listener is not None:
                backstop = min(0.25, max(0.05, self._status_interval / 2))
            else:
                backstop = 0.25
            _mpconn.wait([pipes[name] for name in sorted(procs)],
                         timeout=min(backstop,
                                     max(0.0,
                                         deadline - _time.monotonic())))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def global_time(self) -> float:
        """The slowest subsystem's final time (after a completed run)."""
        if not self._bundles:
            return 0.0
        return min((row["time"] for bundle in self._bundles.values()
                    for row in bundle["subsystems"]), default=0.0)

    def report(self, *, title: Optional[str] = None) -> RunReport:
        """Merge every worker's telemetry into one
        :class:`~repro.observability.RunReport` (single-process shape)."""
        if self._bundles is None:
            raise SimulationError(
                "no completed multiprocess run to report on — call run() "
                "first")
        report = RunReport(title or "multiprocess co-simulation")
        snap = self.telemetry.registry.snapshot()
        counters = dict(snap["counters"])
        gauges = dict(snap["gauges"])
        histograms = {name: dict(row, buckets=dict(row["buckets"]))
                      for name, row in snap["histograms"].items()}
        faults: Dict[str, int] = {}
        trace_counts: Dict[str, int] = {}
        timings = {name: dict(row)
                   for name, row in self.telemetry.registry.timings().items()}
        link_rows: List[dict] = []
        subsystem_rows: List[dict] = []
        trace_dropped = 0
        dropped_by_node: Dict[str, int] = {}
        trace_by_node: Dict[str, List[dict]] = {}
        for name in sorted(self._bundles):
            bundle = self._bundles[name]
            subsystem_rows.extend(bundle["subsystems"])
            link_rows.extend(bundle["links"])
            merge_counters(counters, bundle["counters"])
            merge_gauges(gauges, bundle["gauges"])
            merge_histograms(histograms, bundle["histograms"])
            merge_counters(faults, bundle["faults"])
            merge_counters(trace_counts, bundle["trace_counts"])
            merge_timings(timings, bundle["timings"])
            trace_dropped += bundle["trace_dropped"]
            dropped_by_node[name] = bundle["trace_dropped"]
            trace_by_node[name] = bundle.get("trace", [])
        for name, bundle in self._carryover:
            # A migrated-away worker's parting telemetry: the activity it
            # hosted before the move.  Its placement rows (subsystems,
            # links, gauges, dispatched) are superseded by the adopting
            # worker's final bundle, but its counters and — critically —
            # its trace records are not: post-migrate receives chain to
            # spans only this bundle recorded.
            merge_counters(counters, bundle["counters"])
            merge_histograms(histograms, bundle["histograms"])
            merge_counters(faults, bundle["faults"])
            merge_counters(trace_counts, bundle["trace_counts"])
            merge_timings(timings, bundle["timings"])
            trace_dropped += bundle["trace_dropped"]
            dropped_by_node[name] = dropped_by_node.get(name, 0) \
                + bundle["trace_dropped"]
            trace_by_node[name] = bundle.get("trace", []) \
                + trace_by_node.get(name, [])
        if self.detector is not None:
            gauges["mp.suspicions"] = self.detector.suspicions
        report.subsystems = sorted(subsystem_rows, key=lambda r: r["name"])
        report.links = merge_link_rows(link_rows)
        report.counters = dict(sorted(counters.items()))
        report.gauges = dict(sorted(gauges.items()))
        report.histograms = dict(sorted(histograms.items()))
        report.faults = dict(sorted(faults.items()))
        report.trace_counts = dict(sorted(trace_counts.items()))
        report.trace_dropped = trace_dropped
        report.trace_dropped_by_node = dropped_by_node
        report.trace_records = merge_trace_records(trace_by_node)
        report.stall_attribution = stall_attribution(
            report.trace_records, nodes=subject_nodes(report))
        # Telemetry plane: per-node series keep their identity under a
        # ``node/metric`` key (points at unaligned times cannot sum);
        # health rows merge per directed link, then the finalize pass
        # derives stall fractions and advisory scores from the merged
        # stall attribution — same shape as a single-process report.
        per_node_series = {name: self._bundles[name].get("series") or {}
                           for name in sorted(self._bundles)}
        if any(per_node_series.values()):
            report.timeseries = merge_series(per_node_series)
        health_rows: List[dict] = []
        for name in sorted(self._bundles):
            health_rows.extend(self._bundles[name].get("health") or [])
        if health_rows:
            report.link_health = finalize_health(
                merge_health_rows(health_rows),
                stall_attribution=report.stall_attribution,
                subsystems=report.subsystems)
        report.timings = dict(sorted(timings.items()))
        report.migrations = [record.to_dict() for record in self.migrations]
        return report
