"""Pia nodes and their sockets (paper section 2).

"The Pia simulation system is a set of Pia nodes that can be interconnected
through a network.  Each node contains a number of sockets and each socket
can facilitate a connection to a design tool such as a simulator or a
compiler, or a device such as a processor, an ASIC or an FPGA."

A :class:`PiaNode` hosts one or more subsystems, routes channel traffic,
answers safe-time calls on behalf of its subsystems, and forwards hardware
calls to attached hardware servers.  Each node serves as both a client and
a server, and inter-node communication is hidden from the user
(section 2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..core.errors import ConfigurationError, TransportError
from ..core.subsystem import Subsystem
from ..transport.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from .channel import ChannelEndpoint
    from .snapshot import SnapshotManager


@dataclass
class Socket:
    """A named attachment point on a node.

    ``kind`` is free-form but three values are conventional: ``subsystem``
    (a simulator fragment), ``hardware`` (a remote hardware server, paper
    section 2.3) and ``tool`` (an external design tool behind a wrapper).
    """

    name: str
    kind: str
    target: Any


class PiaNode:
    """One host in the distributed Pia system."""

    def __init__(self, name: str, transport) -> None:
        self.name = name
        self.transport = transport
        self.subsystems: Dict[str, Subsystem] = {}
        self.sockets: Dict[str, Socket] = {}
        #: hooks by message kind for extension layers (snapshots, recovery).
        self.handlers: Dict[MessageKind, Callable[[Message], None]] = {}
        #: synchronous call services by kind (safe time, hardware).
        self.call_services: Dict[MessageKind, Callable[[Message], Message]] = {}
        #: observers of incoming SIGNAL traffic (Chandy-Lamport recording).
        self.signal_observers: List[Callable[[Message], None]] = []
        transport.register(name, call_handler=self.handle_call)

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------
    def add_socket(self, name: str, kind: str, target: Any) -> Socket:
        if name in self.sockets:
            raise ConfigurationError(f"{self.name}: duplicate socket {name!r}")
        socket = Socket(name, kind, target)
        self.sockets[name] = socket
        return socket

    def socket(self, name: str) -> Socket:
        try:
            return self.sockets[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no socket named {name!r}") from None

    # ------------------------------------------------------------------
    # subsystems
    # ------------------------------------------------------------------
    def add_subsystem(self, subsystem: Subsystem) -> Subsystem:
        if subsystem.name in self.subsystems:
            raise ConfigurationError(
                f"{self.name}: duplicate subsystem {subsystem.name}")
        if subsystem.node is not None:
            raise ConfigurationError(
                f"subsystem {subsystem.name} already lives on "
                f"{subsystem.node.name}")
        subsystem.node = self
        self.subsystems[subsystem.name] = subsystem
        self.add_socket(f"subsystem:{subsystem.name}", "subsystem", subsystem)
        return subsystem

    def subsystem(self, name: str) -> Subsystem:
        try:
            return self.subsystems[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no subsystem named {name!r}") from None

    def endpoints(self) -> List["ChannelEndpoint"]:
        found = []
        for subsystem in self.subsystems.values():
            found.extend(subsystem.channels.values())
        return found

    def _endpoint_for(self, channel_id: str) -> "ChannelEndpoint":
        for subsystem in self.subsystems.values():
            endpoint = subsystem.channels.get(channel_id)
            if endpoint is not None:
                return endpoint
        raise ConfigurationError(
            f"{self.name}: no endpoint for channel {channel_id!r}")

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send_channel_message(self, message: Message) -> None:
        self.transport.send(message)

    def pump(self, *, limit: Optional[int] = None) -> int:
        """Drain and dispatch incoming messages; returns how many."""
        messages = self.transport.poll(self.name, limit=limit)
        for message in messages:
            self.dispatch(message)
        return len(messages)

    def dispatch(self, message: Message) -> None:
        kind = message.kind
        handlers = self.handlers
        # Extension hooks are rare (a snapshot layer registering MARK);
        # skip the enum-keyed lookup entirely when none are installed so
        # the signal fast path below stays identity checks only.
        if handlers:
            hook = handlers.get(kind)
            if hook is not None:
                hook(message)
                return
        if kind is MessageKind.SAFE_TIME_GRANT:
            peer_injected, peer_forwarded = message.payload
            self._endpoint_for(message.channel).apply_grant(
                message.time, peer_injected, peer_forwarded)
            return
        if kind is MessageKind.SIGNAL:
            endpoint = self._endpoint_for(message.channel)
            telemetry = endpoint.subsystem.scheduler.telemetry
            traced = telemetry.enabled and message.trace is not None
            if traced:
                # Events this signal injects inherit its trace context,
                # linking the local dispatch chain to the remote send.
                telemetry.cause = message.trace
            try:
                for observer in self.signal_observers:
                    observer(message)
                endpoint.receive_signal(message)
            finally:
                if traced:
                    telemetry.cause = None
            return
        raise TransportError(
            f"{self.name}: no handler for {message.kind} message")

    def handle_call(self, message: Message) -> Message:
        """Synchronous service entry point (safe time, hardware calls)."""
        service = self.call_services.get(message.kind)
        if service is None:
            raise TransportError(
                f"{self.name}: no call service for {message.kind}")
        return service(message)

    # ------------------------------------------------------------------
    def start(self) -> None:
        for subsystem in self.subsystems.values():
            subsystem.start()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PiaNode {self.name} subsystems={sorted(self.subsystems)} "
                f"sockets={len(self.sockets)}>")
