"""Optimistic channels: run ahead, recover from stragglers (paper 2.2.2.2).

"Subsystems linked by optimistic channels are not restricted from updating
their virtual time beyond the safe time of the subsystem on the opposite
side of the channel. ... This requires each subsystem to occasionally save
state so that it can fully recover if a consistency error occurs."

Recovery restores a *completed* Chandy-Lamport snapshot (never anti-
messages — the paper recovers through its checkpoint machinery):

1. every in-flight message is dropped — a snapshot being complete implies,
   by channel FIFO, that everything in flight was sent *after* its
   sender's cut, so re-execution will regenerate it;
2. every subsystem restores its local checkpoint for the snapshot;
3. the messages recorded as channel state are re-injected;
4. the system runs *conservatively* until it passes the straggler's time,
   which guarantees the same straggler cannot recur, then optimism
   resumes.

A snapshot is eligible only if the straggler's receiver had not yet passed
the straggler time at its cut, and no recorded message would itself be a
straggler after the restore; otherwise recovery escalates to an earlier
snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.errors import CheckpointError, SimulationError
from ..observability import NULL_TELEMETRY, TraceKind
from .channel import StragglerError
from .snapshot import GlobalSnapshot, SnapshotRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..core.subsystem import Subsystem


class RecoveryManager:
    """Coordinated rollback across every subsystem of a co-simulation."""

    def __init__(self, subsystems: Dict[str, "Subsystem"], transport,
                 registry: SnapshotRegistry) -> None:
        self.subsystems = subsystems
        self.transport = transport
        self.registry = registry
        #: Completed rollbacks, as (straggler_time, snapshot_id, restored_time).
        self.rollbacks: List[tuple] = []
        #: Called with the restored snapshot after every rollback (the
        #: executor uses it to rewind switchpoint state).
        self.on_rollback = None
        #: Virtual time until which every channel must act conservatively.
        self.conservative_until = float("-inf")
        #: Telemetry sink (the owning CoSimulation attaches a live one).
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    def eligible(self, snap: GlobalSnapshot, straggler: StragglerError,
                 receiver: str) -> bool:
        """Can restoring ``snap`` recover from ``straggler``?"""
        if not snap.complete:
            return False
        cut = snap.cuts.get(receiver)
        if cut is None or cut.time > straggler.straggler_time:
            return False
        for message in snap.recorded_messages():
            target = self._receiver_of(message)
            if target is None:
                return False
            if message.time < snap.time_of(target):
                return False
        return True

    def _receiver_of(self, message) -> Optional[str]:
        for name, subsystem in self.subsystems.items():
            endpoint = subsystem.channels.get(message.channel)
            if endpoint is not None and endpoint.node.name == message.dst:
                return name
        return None

    def choose_snapshot(self, straggler: StragglerError,
                        receiver: str) -> GlobalSnapshot:
        candidates = [snap for snap in self.registry.completed()
                      if self.eligible(snap, straggler, receiver)]
        if not candidates:
            raise CheckpointError(
                f"no completed snapshot can recover the straggler at "
                f"{straggler.straggler_time:g} received by {receiver!r} — "
                "take snapshots more often (snapshot_interval)")
        return candidates[-1]       # the latest eligible one

    # ------------------------------------------------------------------
    def recover(self, straggler: StragglerError, receiver: str) -> GlobalSnapshot:
        """Pick a snapshot, roll the whole system back to it, re-arm."""
        snap = self.choose_snapshot(straggler, receiver)
        self.rollback_to(snap)
        self.conservative_until = max(self.conservative_until,
                                      straggler.straggler_time)
        self.rollbacks.append((straggler.straggler_time, snap.snapshot_id,
                               snap.max_time()))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("rollback.count")
            cause = getattr(straggler, "cause", None)
            extra = {"cause": cause[1], "hop": cause[3]} \
                if cause is not None else {}
            telemetry.trace(TraceKind.ROLLBACK,
                            time=straggler.straggler_time, subject=receiver,
                            snapshot_id=snap.snapshot_id,
                            restored_time=snap.max_time(), **extra)
        return snap

    def rollback_to(self, snap: GlobalSnapshot) -> None:
        if not snap.complete:
            raise CheckpointError(
                f"snapshot {snap.snapshot_id} is incomplete; cannot restore")
        # 1. Everything in flight postdates the cut: drop it.
        dropped = self.transport.flush()
        self.telemetry.count("rollback.messages_dropped", dropped)
        # 2. Restore every subsystem's local image.
        for name, cut in snap.cuts.items():
            subsystem = self.subsystems.get(name)
            if subsystem is None:
                raise CheckpointError(
                    f"snapshot references unknown subsystem {name!r}")
            subsystem.restore_checkpoint(cut.checkpoint_id)
        # All safe-time state is void after a global rewind.  The message
        # counters restart aligned with the re-injected channel states:
        # the sender's count covers exactly the re-injected messages, the
        # receiver's count returns to zero and climbs as they re-arrive.
        recorded = snap.recorded_messages()
        resent: Dict[tuple, int] = {}
        for message in recorded:
            resent[(message.channel, message.dst)] = \
                resent.get((message.channel, message.dst), 0) + 1
        for subsystem in self.subsystems.values():
            for channel_id, endpoint in subsystem.channels.items():
                # This endpoint's sends being re-injected at the peer count
                # as already forwarded; its own receive counter climbs back
                # up as the peer's recorded messages re-arrive.
                outgoing = resent.get((channel_id, endpoint.peer_node), 0)
                endpoint.reset_sync_state(forwarded=outgoing, injected=0)
        # 3. Re-inject the recorded channel states.
        for message in recorded:
            self.transport.send(message)
        # 4. Later snapshots now describe abandoned futures.
        for other_id in list(self.registry.snapshots):
            other = self.registry.snapshots[other_id]
            if other is not snap and other.max_time() > snap.max_time():
                self.registry.drop(other_id)
        if self.on_rollback is not None:
            self.on_rollback(snap)

    # ------------------------------------------------------------------
    def in_conservative_window(self, global_time: float) -> bool:
        return global_time <= self.conservative_until
