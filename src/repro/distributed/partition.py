"""Net splitting by a cut of the component graph (paper section 2.2.1).

"When moving a set of components from one subsystem to another, the split
in the relevant nets can be determined by a cut of the component graph.
Essentially, a boundary is drawn around all components that are moved, and
any net that crosses this boundary is split.  If performed repeatedly and
locally, this could force some nets to pass through subsystems which
contain no components relevant to the net, so a global view of the system
must be consulted when performing each split."

This module *is* that global view: a :class:`Design` holds the whole
component/net graph independent of any placement, and :func:`deploy`
realises a placement from scratch — every split is computed from the
global graph, so no net ever passes through an unrelated subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..core.component import Component
from ..core.errors import ConfigurationError
from ..core.net import Net
from ..core.subsystem import Subsystem
from .channel import Channel, ChannelMode

if TYPE_CHECKING:  # pragma: no cover
    from .executor import CoSimulation


@dataclass
class NetSpec:
    """One net of the global design, placement-independent."""

    name: str
    #: (component name, port name) endpoints.
    endpoints: List[Tuple[str, str]]
    delay: float = 0.0


class Design:
    """The global view of the system under test: components plus nets."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self.components: Dict[str, Component] = {}
        self.nets: Dict[str, NetSpec] = {}

    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise ConfigurationError(
                f"{self.name}: duplicate component {component.name}")
        self.components[component.name] = component
        return component

    def connect(self, net_name: str, *endpoints: Tuple[str, str],
                delay: float = 0.0) -> NetSpec:
        """Declare a net joining ``(component, port)`` endpoints."""
        if net_name in self.nets:
            raise ConfigurationError(f"{self.name}: duplicate net {net_name}")
        for comp_name, port_name in endpoints:
            component = self.components.get(comp_name)
            if component is None:
                raise ConfigurationError(
                    f"net {net_name}: unknown component {comp_name!r}")
            component.port(port_name)   # raises if missing
        spec = NetSpec(net_name, list(endpoints), delay)
        self.nets[net_name] = spec
        return spec

    # ------------------------------------------------------------------
    def component_graph(self, *, weights: Optional[Dict[str, float]] = None
                        ) -> "nx.Graph":
        """Undirected component graph; edge weight approximates traffic.

        ``weights`` optionally maps net names to expected traffic; the
        default weight is 1 per net between each endpoint pair.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.components)
        for spec in self.nets.values():
            weight = (weights or {}).get(spec.name, 1.0)
            members = [name for name, __ in spec.endpoints]
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if a == b:
                        continue
                    if graph.has_edge(a, b):
                        graph[a][b]["weight"] += weight
                    else:
                        graph.add_edge(a, b, weight=weight)
        return graph

    def cut_nets(self, assignment: Dict[str, str]) -> List[str]:
        """Names of nets crossed by the boundary ``assignment`` draws."""
        crossed = []
        for spec in self.nets.values():
            homes = {self._home(assignment, name)
                     for name, __ in spec.endpoints}
            if len(homes) > 1:
                crossed.append(spec.name)
        return crossed

    def _home(self, assignment: Dict[str, str], component: str) -> str:
        try:
            return assignment[component]
        except KeyError:
            raise ConfigurationError(
                f"component {component!r} has no subsystem assignment"
            ) from None


def suggest_partition(design: Design, *,
                      weights: Optional[Dict[str, float]] = None,
                      seed: int = 0) -> Dict[str, str]:
    """A balanced two-way cut minimising crossing traffic (Kernighan-Lin).

    This automates what the paper leaves to the designer: choosing which
    components to move to the second host.
    """
    graph = design.component_graph(weights=weights)
    if graph.number_of_nodes() < 2:
        return {name: "ss0" for name in design.components}
    left, right = nx.algorithms.community.kernighan_lin_bisection(
        graph, weight="weight", seed=seed)
    assignment = {name: "ss0" for name in left}
    assignment.update({name: "ss1" for name in right})
    return assignment


@dataclass
class Deployment:
    """The realised placement: subsystems, split nets and channels."""

    subsystems: Dict[str, Subsystem] = field(default_factory=dict)
    channels: Dict[Tuple[str, str], Channel] = field(default_factory=dict)
    #: net name -> subsystem names it was split across (empty if local).
    splits: Dict[str, List[str]] = field(default_factory=dict)


def deploy(design: Design, assignment: Dict[str, str],
           cosim: "CoSimulation", *,
           placement: Optional[Dict[str, str]] = None,
           mode: ChannelMode = ChannelMode.CONSERVATIVE,
           channel_delay: float = 0.0) -> Deployment:
    """Realise ``design`` under ``assignment`` inside ``cosim``.

    ``assignment`` maps component name -> subsystem name; ``placement``
    maps subsystem name -> node name (default: one node per subsystem).
    Channels are created per communicating subsystem pair; a net spanning
    three or more subsystems is relayed along a star rooted at the
    subsystem holding most of its endpoints, as channel components forward
    injected values onwards.
    """
    placement = placement or {}
    deployment = Deployment()

    # 1. Subsystems and their components.
    for comp_name, ss_name in sorted(assignment.items()):
        if comp_name not in design.components:
            raise ConfigurationError(
                f"assignment references unknown component {comp_name!r}")
        subsystem = deployment.subsystems.get(ss_name)
        if subsystem is None:
            node_name = placement.get(ss_name, f"node-{ss_name}")
            node = cosim.node(node_name) if node_name in cosim.nodes \
                else cosim.add_node(node_name)
            subsystem = cosim.add_subsystem(node, ss_name)
            deployment.subsystems[ss_name] = subsystem
        subsystem.add(design.components[comp_name])
    missing = set(design.components) - set(assignment)
    if missing:
        raise ConfigurationError(
            f"components without assignment: {sorted(missing)}")

    # 2. Nets: local where possible, split along the cut otherwise.
    for spec in sorted(design.nets.values(), key=lambda s: s.name):
        by_subsystem: Dict[str, List] = {}
        for comp_name, port_name in spec.endpoints:
            ss_name = assignment[comp_name]
            port = design.components[comp_name].port(port_name)
            by_subsystem.setdefault(ss_name, []).append(port)
        homes = sorted(by_subsystem)
        if len(homes) == 1:
            net = Net(spec.name, delay=spec.delay)
            deployment.subsystems[homes[0]].add_net(net)
            net.connect(*by_subsystem[homes[0]])
            continue

        # Split: one half-net per participating subsystem.
        deployment.splits[spec.name] = homes
        halves: Dict[str, Net] = {}
        for ss_name in homes:
            half = Net(spec.name, delay=spec.delay)
            deployment.subsystems[ss_name].add_net(half)
            half.connect(*by_subsystem[ss_name])
            halves[ss_name] = half
        # Star rooted at the subsystem with the most endpoints (global
        # view: no pass-through subsystems are ever introduced).
        root = max(homes, key=lambda name: (len(by_subsystem[name]), name))
        for ss_name in homes:
            if ss_name == root:
                continue
            channel = _channel_for(cosim, deployment, root, ss_name,
                                   mode=mode, delay=channel_delay)
            channel.split_net(halves[root], halves[ss_name])
    return deployment


def _channel_for(cosim: "CoSimulation", deployment: Deployment,
                 a: str, b: str, *, mode: ChannelMode,
                 delay: float) -> Channel:
    key = (min(a, b), max(a, b))
    channel = deployment.channels.get(key)
    if channel is None:
        channel = cosim.connect(deployment.subsystems[a],
                                deployment.subsystems[b],
                                mode=mode, delay=delay)
        deployment.channels[key] = channel
    return channel
