"""Distributed checkpoints via the Chandy-Lamport algorithm (paper 2.2.3).

"Since all channels between subsystems are FIFO channels, we can solve this
problem with the Chandy-Lamport algorithm.  After a subsystem receives (or
generates) a checkpoint request, it performs a local checkpoint and
transmits a mark on all of its outgoing channels.  Upon receipt of a mark,
a subsystem immediately performs a local checkpoint, before receiving
anything else on that same channel. ... each mark contains an identifier
... such that a subsystem can ignore marks that have the same identifier
as checkpoints already performed."

Channels here are bidirectional, so each direction is treated as its own
FIFO channel: a cut sends a mark to every peer and expects one back from
every peer; signals arriving on a channel between the local cut and that
channel's mark are recorded as the channel's state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.errors import CheckpointError
from ..observability import NULL_TELEMETRY, TraceKind
from ..transport.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from ..core.subsystem import Subsystem
    from .node import PiaNode

_snapshot_ids = itertools.count(1)


def new_snapshot_id() -> str:
    return f"snap-{next(_snapshot_ids)}"


@dataclass
class SubsystemCut:
    """One subsystem's contribution to a global snapshot."""

    snapshot_id: str
    subsystem: str
    checkpoint_id: int
    time: float
    #: channel id -> messages recorded as in-flight channel state.
    recorded: Dict[str, List[Message]] = field(default_factory=dict)
    #: channels whose closing mark has not arrived yet.
    pending: set = field(default_factory=set)

    @property
    def complete(self) -> bool:
        return not self.pending


@dataclass
class GlobalSnapshot:
    """The assembled consistent cut across every subsystem."""

    snapshot_id: str
    cuts: Dict[str, SubsystemCut] = field(default_factory=dict)
    expected: set = field(default_factory=set)

    @property
    def complete(self) -> bool:
        return (set(self.cuts) == self.expected
                and all(cut.complete for cut in self.cuts.values()))

    def time_of(self, subsystem: str) -> float:
        return self.cuts[subsystem].time

    def max_time(self) -> float:
        return max((cut.time for cut in self.cuts.values()), default=0.0)

    def recorded_messages(self) -> List[Message]:
        messages: List[Message] = []
        for cut in self.cuts.values():
            for recorded in cut.recorded.values():
                messages.extend(recorded)
        return messages


class SnapshotRegistry:
    """Shared, executor-owned registry of in-progress and completed cuts."""

    def __init__(self) -> None:
        self.snapshots: Dict[str, GlobalSnapshot] = {}

    def ensure(self, snapshot_id: str, expected) -> GlobalSnapshot:
        snap = self.snapshots.get(snapshot_id)
        if snap is None:
            snap = GlobalSnapshot(snapshot_id, expected=set(expected))
            self.snapshots[snapshot_id] = snap
        return snap

    def completed(self) -> List[GlobalSnapshot]:
        done = [s for s in self.snapshots.values() if s.complete]
        done.sort(key=lambda s: s.max_time())
        return done

    def drop(self, snapshot_id: str) -> None:
        self.snapshots.pop(snapshot_id, None)


class SnapshotManager:
    """Per-node participant in the marker algorithm."""

    def __init__(self, node: "PiaNode", registry: SnapshotRegistry,
                 expected_subsystems) -> None:
        self.node = node
        self.registry = registry
        #: Names of every subsystem in the whole system (for completion).
        self.expected_subsystems = expected_subsystems
        self.marks_sent = 0
        self.marks_received = 0
        #: Telemetry sink (the owning CoSimulation attaches a live one).
        self.telemetry = NULL_TELEMETRY
        node.handlers[MessageKind.MARK] = self.on_mark
        node.signal_observers.append(self.observe_signal)

    # ------------------------------------------------------------------
    def initiate(self, subsystem: "Subsystem",
                 snapshot_id: Optional[str] = None) -> str:
        """Generate a checkpoint request at ``subsystem`` (paper: a
        subsystem "receives (or generates) a checkpoint request")."""
        if snapshot_id is None:
            snapshot_id = new_snapshot_id()
        self._local_cut(subsystem, snapshot_id)
        return snapshot_id

    def _local_cut(self, subsystem: "Subsystem", snapshot_id: str) -> None:
        snap = self.registry.ensure(snapshot_id, self.expected_subsystems())
        if subsystem.name in snap.cuts:
            return    # already performed for this identifier: ignore
        checkpoint_id = subsystem.request_checkpoint(
            label=f"{snapshot_id}@{subsystem.name}")
        cut = SubsystemCut(snapshot_id, subsystem.name, checkpoint_id,
                           subsystem.scheduler.now)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("snapshot.cuts")
            telemetry.trace(TraceKind.SNAPSHOT_CUT,
                            time=subsystem.scheduler.now,
                            subject=subsystem.name,
                            snapshot_id=snapshot_id,
                            checkpoint_id=checkpoint_id)
        for channel_id, endpoint in subsystem.channels.items():
            if endpoint.severed:
                continue    # the peer is gone; no marks can cross
            cut.recorded[channel_id] = []
            cut.pending.add(channel_id)
            self.marks_sent += 1
            telemetry.count("snapshot.marks_sent")
            self.node.transport.send(Message(
                kind=MessageKind.MARK,
                src=self.node.name,
                dst=endpoint.peer_node,
                channel=channel_id,
                payload=snapshot_id,
            ))
        snap.cuts[subsystem.name] = cut

    # ------------------------------------------------------------------
    def on_mark(self, message: Message) -> None:
        snapshot_id = message.payload
        self.marks_received += 1
        self.telemetry.count("snapshot.marks_received")
        endpoint = self.node._endpoint_for(message.channel)
        subsystem = endpoint.subsystem
        # First mark (or request) for this identifier: checkpoint now,
        # before receiving anything else on this channel.
        self._local_cut(subsystem, snapshot_id)
        snap = self.registry.ensure(snapshot_id, self.expected_subsystems())
        cut = snap.cuts[subsystem.name]
        # The mark closes this channel's recording window.
        cut.pending.discard(message.channel)

    def observe_signal(self, message: Message) -> None:
        """Record signals that are part of some open channel state."""
        endpoint = self.node._endpoint_for(message.channel)
        subsystem_name = endpoint.subsystem.name
        for snap in self.registry.snapshots.values():
            cut = snap.cuts.get(subsystem_name)
            if cut is not None and message.channel in cut.pending:
                cut.recorded[message.channel].append(message)
