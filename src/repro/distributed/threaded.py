"""Thread-per-node execution: the paper's actual deployment shape.

The DAC'98 experiments ran two Pia nodes as separate JVM processes on two
workstations.  This executor mirrors that: every node runs its own pump/
refresh/run loop on its own thread, safe-time requests are served
concurrently (guarded by a per-node lock, the moral equivalent of the
paper's suspend-all-but-one JVM scheduler trick), and the transport may be
real TCP sockets.

Only conservative channels are supported here: optimistic recovery needs
the globally coordinated rollback of
:class:`~repro.distributed.executor.CoSimulation`.  Use the cooperative
executor for optimism and for anything that must be deterministic.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Dict, Optional, Union

from ..core.errors import (
    ConfigurationError,
    LinkDown,
    NodeFailure,
    SimulationError,
)
from ..core.subsystem import Subsystem
from ..faults import FailureDetector, FaultInjector, FaultPlan, RetryPolicy
from ..observability import RunReport, Telemetry, TraceKind, run_report
from ..transport.inmemory import InMemoryTransport
from ..transport.latency import SAME_HOST, LatencyModel
from ..transport.message import Message, MessageKind
from .channel import Channel, ChannelMode
from .conservative import SafeTimeClient, compute_grant
from .node import PiaNode
from . import topology

import itertools


class LockedSafeTimeService:
    """Safe-time server that serialises against the node's own loop.

    The transitive refresh (see
    :class:`~repro.distributed.conservative.SafeTimeService`) performs
    blocking network calls, so it runs *outside* the node lock; holding it
    there would deadlock two nodes refreshing towards each other.  Shared
    with the multiprocess deployment, whose workers likewise serve
    safe-time calls from transport receiver threads concurrently with
    their own run loop.
    """

    def __init__(self, node: PiaNode, lock: threading.RLock,
                 client_for) -> None:
        self.node = node
        self.lock = lock
        self.client_for = client_for
        self.requests_served = 0
        node.call_services[MessageKind.SAFE_TIME_REQUEST] = self.serve

    def serve(self, message: Message) -> Message:
        requester, target, path = message.payload
        client = self.client_for(target)
        if client is not None:
            client.refresh(message.time, exclude=requester,
                           path=tuple(path) + (target,))
        with self.lock:
            subsystem = self.node.subsystem(target)
            self.requests_served += 1
            grant = compute_grant(subsystem, requester)
            endpoint = next(ep for ep in subsystem.channels.values()
                            if ep.peer_subsystem == requester)
            counts = (endpoint.injected, endpoint.forwarded)
        return message.reply(MessageKind.SAFE_TIME_REPLY, time=grant,
                             payload=counts)


class _NodeWorker(threading.Thread):
    def __init__(self, runner: "ThreadedCoSimulation", node: PiaNode,
                 until: float) -> None:
        super().__init__(name=f"pia-node-{node.name}", daemon=True)
        self.runner = runner
        self.node = node
        self.until = until
        self.lock = runner.locks[node.name]
        self.dispatched = 0
        self.error: Optional[BaseException] = None
        self.idle = threading.Event()
        #: Set by the coordinator when this node's scheduled crash fires.
        self.down = threading.Event()

    def run(self) -> None:
        detector = self.runner.detector
        try:
            while not self.runner.stop_flag.is_set() \
                    and not self.down.is_set():
                if detector is not None:
                    detector.beat(self.node.name, _time.monotonic())
                # Cleared *before* the round, not after: while an event is
                # mid-dispatch it is already popped from the queue, so a
                # worker crunching a long event shows next_event_time inf
                # and nothing in flight — a stale idle flag from the last
                # empty round would let the quiescence sweep pass mid-run.
                self.idle.clear()
                progress = self._one_round()
                if not progress:
                    self.idle.set()
                    _time.sleep(0.001)
        except BaseException as exc:   # surface into the coordinator
            self.error = exc
            self.runner.stop_flag.set()
        finally:
            self.idle.set()

    def _one_round(self) -> bool:
        progress = False
        with self.lock:
            progress |= self.node.pump() > 0
            subsystems = [self.node.subsystems[name]
                          for name in sorted(self.node.subsystems)]
        for subsystem in subsystems:
            client = self.runner.clients[subsystem.name]
            with self.lock:
                self.node.pump()
                next_time = subsystem.next_event_time()
            if next_time == float("inf") or next_time > self.until:
                continue
            # The refresh performs a blocking network call; it must happen
            # outside the lock or two nodes refreshing each other deadlock.
            if client.horizon() < next_time:
                client.refresh(min(next_time, self.until))
            with self.lock:
                if subsystem.next_event_time() <= client.horizon():
                    count = subsystem.run(self.until, horizon=client.horizon)
                    self.dispatched += count
                    progress = progress or count > 0
        # Round boundary: ship everything this node queued (no-op unless
        # the transport batches).  Outside the lock — the piggyback
        # provider try-acquires it.
        flush = getattr(self.runner.transport, "flush_batches", None)
        if flush is not None:
            flush(src=self.node.name)
        return progress


class ThreadedCoSimulation:
    """Run each Pia node on its own thread (conservative channels only).

    With a ``fault_plan`` attached, message chaos is injected at the
    transport boundary exactly as in :class:`CoSimulation`, and scheduled
    node crashes stop that node's worker mid-run.  A heartbeat failure
    detector (wall-clock seconds here) confirms the loss; the threaded
    executor cannot roll back, so a confirmed loss always surfaces as a
    typed :class:`~repro.core.errors.NodeFailure`.
    """

    def __init__(self, *, transport=None,
                 default_model: LatencyModel = SAME_HOST,
                 telemetry: Optional[Telemetry] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 heartbeat_timeout: float = 1.0,
                 batching: bool = False) -> None:
        self.transport = transport if transport is not None \
            else InMemoryTransport(default_model=default_model,
                                   batching=batching)
        if batching:
            self.transport.batching = True
        set_provider = getattr(self.transport, "set_piggyback_provider", None)
        if set_provider is not None:
            set_provider(self._piggyback_grants)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        attach = getattr(self.transport, "attach_telemetry", None)
        if attach is not None:
            attach(self.telemetry)
        self.nodes: Dict[str, PiaNode] = {}
        self.subsystems: Dict[str, Subsystem] = {}
        self.channels: Dict[str, Channel] = {}
        self.locks: Dict[str, threading.RLock] = {}
        self.clients: Dict[str, SafeTimeClient] = {}
        self.stop_flag = threading.Event()
        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        self.detector: Optional[FailureDetector] = None
        if fault_plan is not None:
            self.fault_injector = FaultInjector(
                fault_plan, retry_policy=retry_policy,
                telemetry=self.telemetry)
            attach_faults = getattr(self.transport, "attach_faults", None)
            if attach_faults is None:
                raise ConfigurationError(
                    f"transport {type(self.transport).__name__} does not "
                    "support fault injection (no attach_faults)")
            attach_faults(self.fault_injector)
            self.detector = FailureDetector(timeout=heartbeat_timeout)
        # Instance-local for run-to-run bit identity: channel ids travel
        # on the wire (see CoSimulation).
        self._channel_ids = itertools.count(1)

    # ------------------------------------------------------------------
    def add_node(self, name: str) -> PiaNode:
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node {name!r}")
        node = PiaNode(name, self.transport)
        self.nodes[name] = node
        self.locks[name] = threading.RLock()
        LockedSafeTimeService(node, self.locks[name], self.clients.get)
        return node

    def add_subsystem(self, node: Union[str, PiaNode],
                      subsystem: Union[str, Subsystem]) -> Subsystem:
        if isinstance(node, str):
            node = self.nodes[node]
        if isinstance(subsystem, str):
            subsystem = Subsystem(subsystem)
        if subsystem.name in self.subsystems:
            raise ConfigurationError(f"duplicate subsystem {subsystem.name!r}")
        node.add_subsystem(subsystem)
        # Same wiring as CoSimulation: subsystem schedulers share the
        # executor telemetry (cause propagation is thread-local, so node
        # threads never cross-contaminate), which is what gives threaded
        # runs dispatch records and causal spans at all.
        subsystem.attach_telemetry(self.telemetry)
        self.subsystems[subsystem.name] = subsystem
        self.clients[subsystem.name] = SafeTimeClient(subsystem)
        return subsystem

    def connect(self, a: Subsystem, b: Subsystem, *,
                mode: ChannelMode = ChannelMode.CONSERVATIVE,
                delay: float = 0.0) -> Channel:
        if mode is not ChannelMode.CONSERVATIVE:
            raise SimulationError(
                "the threaded executor supports conservative channels only; "
                "use CoSimulation for optimistic channels")
        channel_id = f"tch{next(self._channel_ids)}-{a.name}-{b.name}"
        channel = Channel(channel_id, mode, delay=delay)
        assert a.node is not None and b.node is not None
        channel.attach(a, peer_subsystem=b.name, peer_node=b.node.name)
        channel.attach(b, peer_subsystem=a.name, peer_node=a.node.name)
        self.channels[channel_id] = channel
        return channel

    # ------------------------------------------------------------------
    def run(self, until: float = float("inf"), *,
            timeout: float = 60.0) -> int:
        """Run all nodes concurrently until quiescence; returns events."""
        topology.validate(self.channels.values())
        for name in sorted(self.nodes):
            with self.locks[name]:
                self.nodes[name].start()
        self.stop_flag.clear()
        workers = [_NodeWorker(self, self.nodes[name], until)
                   for name in sorted(self.nodes)]
        by_name = {worker.node.name: worker for worker in workers}
        pending_crashes = sorted(
            self.fault_plan.crashes, key=lambda c: (c.at_time, c.node)) \
            if self.fault_plan is not None else []
        for crash in pending_crashes:
            if crash.node not in by_name:
                raise ConfigurationError(
                    f"scheduled crash for unknown node {crash.node!r}")
        if self.detector is not None:
            now = _time.monotonic()
            for name in by_name:
                self.detector.beat(name, now)
        for worker in workers:
            worker.start()
        deadline = _time.monotonic() + timeout
        failed: Optional[str] = None
        try:
            while _time.monotonic() < deadline:
                if self.stop_flag.is_set():
                    break
                now = self.global_time()
                series = self.telemetry.series
                if series is not None:
                    # Sampled from the coordinator sweep: node threads
                    # advance concurrently, so the points are a
                    # measurement, not part of the deterministic report.
                    series.tick(now, self.telemetry.registry)
                while pending_crashes and pending_crashes[0].at_time <= now:
                    crash = pending_crashes.pop(0)
                    self._crash_node(by_name[crash.node])
                if self.detector is not None:
                    suspects = self.detector.suspects(_time.monotonic())
                    if suspects:
                        failed = suspects[0]
                        self.stop_flag.set()
                        break
                if self._quiescent(workers, until):
                    break
                _time.sleep(0.002)
            else:
                self.stop_flag.set()
                raise SimulationError(
                    f"threaded run did not quiesce within {timeout}s")
        finally:
            self.stop_flag.set()
            for worker in workers:
                worker.join(timeout=5.0)
        if failed is not None:
            raise NodeFailure(
                f"node {failed!r} stopped heartbeating — the threaded "
                "executor cannot roll back; rerun under CoSimulation with "
                "failure_policy='recover' for crash recovery", node=failed)
        for worker in workers:
            if worker.error is not None:
                if isinstance(worker.error, LinkDown):
                    raise NodeFailure(
                        f"node {worker.node.name!r} lost its link towards "
                        f"{worker.error.dst!r}: {worker.error}",
                        node=worker.error.dst) from worker.error
                raise worker.error
        return sum(worker.dispatched for worker in workers)

    def _crash_node(self, worker: _NodeWorker) -> None:
        """Fire a scheduled crash: stop the worker, lose its traffic."""
        worker.down.set()
        if self.fault_injector is not None:
            self.fault_injector.mark_down(worker.node.name)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("fault.node_crashes")
            telemetry.trace(TraceKind.NODE_CRASH, time=self.global_time(),
                            subject=worker.node.name)

    def _quiescent(self, workers, until: float) -> bool:
        """All workers idle with nothing in flight, twice in a row.

        Three conditions, each closing a distinct hiding place: the idle
        flags (cleared for the whole duration of a round, so a worker
        mid-event can never look done), ``pending()`` (inboxes, batcher,
        injector parking), and the wire counter balance (frames that left
        a sender's socket but have not been filed by a receiver thread
        yet).  Two sweeps guard against a worker waking between checks.
        """
        for __ in range(2):
            if not all(worker.idle.is_set() for worker in workers):
                return False
            if self.transport.pending() != 0:
                return False
            balanced = getattr(self.transport, "wire_balanced", None)
            if balanced is not None and not balanced():
                return False
            for name in sorted(self.subsystems):
                subsystem = self.subsystems[name]
                assert subsystem.node is not None
                with self.locks[subsystem.node.name]:
                    next_time = subsystem.next_event_time()
                    if next_time != float("inf") and next_time <= until:
                        return False
            _time.sleep(0.002)
        return True

    def _piggyback_grants(self, src: str, dst: str) -> list:
        """Safe-time grants for a ``src``→``dst`` batch frame.

        Flush points may sit inside or outside the source node's lock
        depending on who triggers them, so the lock is *try*-acquired:
        failing just means this frame carries no grants (the explicit
        safe-time call path still guarantees progress), whereas blocking
        here could deadlock two nodes flushing towards each other.
        """
        lock = self.locks.get(src)
        if lock is None or not lock.acquire(blocking=False):
            return []
        try:
            node = self.nodes[src]
            grants = []
            for ss_name in sorted(node.subsystems):
                subsystem = node.subsystems[ss_name]
                for channel_id in sorted(subsystem.channels):
                    endpoint = subsystem.channels[channel_id]
                    if endpoint.severed or endpoint.peer_node != dst:
                        continue
                    grants.append(Message(
                        kind=MessageKind.SAFE_TIME_GRANT,
                        src=src, dst=dst, channel=channel_id,
                        time=compute_grant(subsystem,
                                           endpoint.peer_subsystem),
                        payload=(endpoint.injected, endpoint.forwarded),
                    ))
            return grants
        finally:
            lock.release()

    def global_time(self) -> float:
        return min((ss.now for ss in self.subsystems.values()), default=0.0)

    def report(self, *, title: Optional[str] = None) -> RunReport:
        """Assemble the :class:`~repro.observability.RunReport` so far."""
        return run_report(self, title=title)
