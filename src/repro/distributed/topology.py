"""Validation of the subsystem interconnection graph (paper 2.2.2.1).

"A set of interconnected subsystems must make a directed graph with only
simple cycles.  A simple cycle is simply a bidirectional edge.  The reason
for this is that it is computationally hard to eliminate self-restriction
on the fly for general graphs."

The safe-time protocol removes only the *requester's* restriction when
granting; a longer directed cycle would let a subsystem restrict itself
through intermediaries and deadlock.  We therefore require that, after
collapsing every mutual pair of edges, the remaining directed graph is
acyclic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from ..core.errors import TopologyError
from ..core.port import PortDirection
from .channel import Channel


def communication_digraph(channels: Iterable[Channel]) -> "nx.DiGraph":
    """Directed subsystem graph: an edge A->B when A can drive a value
    that B listens to over some channel between them."""
    graph = nx.DiGraph()
    for channel in channels:
        endpoints = list(channel.endpoints.values())
        if len(endpoints) != 2:
            continue
        a, b = endpoints
        graph.add_node(a.subsystem.name)
        graph.add_node(b.subsystem.name)
        for src, dst in ((a, b), (b, a)):
            if _can_drive(src) and _can_listen(dst):
                graph.add_edge(src.subsystem.name, dst.subsystem.name)
    return graph


def _can_drive(endpoint) -> bool:
    """Does any non-hidden port on a tapped net drive it from this side?"""
    for net_name in endpoint.taps():
        net = endpoint._nets[net_name]
        for port in net.visible_ports():
            if port.direction.can_drive:
                return True
    return False


def _can_listen(endpoint) -> bool:
    for net_name in endpoint.taps():
        net = endpoint._nets[net_name]
        for port in net.visible_ports():
            if port.direction.can_receive:
                return True
    return False


def offending_cycles(graph: "nx.DiGraph") -> List[List[str]]:
    """Directed cycles longer than a bidirectional pair.

    Subsystem graphs are small (a handful of hosts), so enumerating the
    elementary cycles directly is fine.
    """
    return [cycle for cycle in nx.simple_cycles(graph) if len(cycle) > 2]


def validate(channels: Iterable[Channel]) -> "nx.DiGraph":
    """Raise :class:`TopologyError` if the interconnection is illegal."""
    graph = communication_digraph(channels)
    bad = offending_cycles(graph)
    if bad:
        rendered = "; ".join(" -> ".join(cycle + [cycle[0]]) for cycle in bad)
        raise TopologyError(
            f"subsystem graph contains non-simple cycles: {rendered}. "
            "Pia requires a directed graph with only simple (bidirectional) "
            "cycles — repartition the design or merge subsystems.")
    return graph
