"""Deterministic fault injection and fault tolerance for the backplane.

Three layers (see each module's docstring):

* :mod:`repro.faults.plan` — the **injection plane**: a seeded
  :class:`FaultPlan` of message drop/duplicate/delay/reorder rates, link
  partition windows and scheduled node crashes, decided as a pure
  function of the seed so chaos experiments replay bit for bit;
* :mod:`repro.faults.retry` / :mod:`repro.faults.injector` — the
  **resilience layer**: a :class:`RetryPolicy` (exponential backoff,
  plan-seeded jitter) driven by the :class:`FaultInjector` that both
  transports consult at their send/poll boundary;
* :mod:`repro.faults.detector` — heartbeat **failure detection**, which
  the executors combine with the Chandy-Lamport snapshot registry to
  recover a crashed node from the last consistent global snapshot.
"""

from .detector import FailureDetector
from .injector import FaultInjector
from .plan import (
    DEFAULT_KINDS,
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    FaultPlan,
    LinkFaults,
    LOST,
    NO_FAULTS,
    NodeCrash,
    PARTITION,
    Partition,
    REORDER,
)
from .retry import NO_RETRY, RetryPolicy

__all__ = [
    "DEFAULT_KINDS", "DELAY", "DELIVER", "DROP", "DUPLICATE",
    "FailureDetector", "FaultInjector", "FaultPlan", "LOST", "LinkFaults",
    "NO_FAULTS", "NO_RETRY", "NodeCrash", "PARTITION", "Partition",
    "REORDER", "RetryPolicy",
]
