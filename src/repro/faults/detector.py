"""Heartbeat-based failure detection.

A node is *suspected* once its most recent heartbeat is older than the
timeout.  The clock is whatever the caller supplies: the cooperative
executor beats once per run-loop round (deterministic), the threaded
executor beats in wall-clock seconds from each node's worker thread.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import ConfigurationError


class FailureDetector:
    """Tracks per-node heartbeats against a staleness timeout."""

    def __init__(self, *, timeout: float) -> None:
        if timeout <= 0:
            raise ConfigurationError(
                f"heartbeat timeout must be positive: {timeout}")
        self.timeout = timeout
        self.last_beat: Dict[str, float] = {}
        #: Total suspicions ever raised (a node can be suspected once,
        #: recover, and be suspected again).
        self.suspicions = 0
        self._suspected: set = set()

    def beat(self, node: str, now: float) -> None:
        """Record a heartbeat from ``node`` at clock value ``now``."""
        self.last_beat[node] = now
        self._suspected.discard(node)

    def forget(self, node: str) -> None:
        """Stop watching ``node`` (it left the system for good)."""
        self.last_beat.pop(node, None)
        self._suspected.discard(node)

    def suspects(self, now: float) -> List[str]:
        """Nodes whose last beat is older than the timeout, sorted."""
        found = []
        for node in sorted(self.last_beat):
            if now - self.last_beat[node] > self.timeout:
                if node not in self._suspected:
                    self._suspected.add(node)
                    self.suspicions += 1
                found.append(node)
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FailureDetector timeout={self.timeout:g} "
                f"watching={len(self.last_beat)}>")
