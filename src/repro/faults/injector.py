"""The fault injection plane shared by both transports.

A :class:`FaultInjector` sits at the send/poll boundary of
:class:`~repro.transport.inmemory.InMemoryTransport` and
:class:`~repro.transport.tcp.TcpTransport`:

* at **send**, it rolls the plan's decision for the message's per-link
  ordinal; injected drops are retried against the
  :class:`~repro.faults.RetryPolicy` attempt budget (the resilience layer
  the chaos is there to exercise) until delivery or a typed
  :class:`~repro.core.errors.LinkDown`;
* **delayed** and **reordered** messages are held here and released at
  the destination's poll boundary;
* **duplicated** messages are delivered twice and deduplicated at poll by
  message id — exactly-once delivery on top of at-least-once chaos;
* sends touching a **crashed** node are swallowed and counted (the
  executors' failure detector and recovery deal with the node itself).

The injector keeps its own exact counters under a lock — unlike the
advisory telemetry counters, these must be bit-identical across two runs
of the same seed — and mirrors every event into telemetry for the
:class:`~repro.observability.RunReport`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import LinkDown
from ..observability import NULL_TELEMETRY, TraceKind
from .plan import (
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    FaultPlan,
    LOST,
    PARTITION,
    REORDER,
)
from .retry import RetryPolicy


class FaultInjector:
    """Deterministic fault decisions plus the queues they require."""

    def __init__(self, plan: FaultPlan, *,
                 retry_policy: Optional[RetryPolicy] = None,
                 telemetry=NULL_TELEMETRY) -> None:
        self.plan = plan
        self.retry_policy = retry_policy or RetryPolicy()
        #: Telemetry mirror (attached by the owning executor/transport).
        self.telemetry = telemetry
        self._lock = threading.Lock()
        #: Exact event counters (deterministic; see module docstring).
        self.counts: Dict[str, int] = {}
        self._seq: Dict[Tuple[str, str], int] = {}
        #: dst -> [(release_tick, item)] delayed deliveries.
        self._held: Dict[str, List[Tuple[int, Any]]] = {}
        #: dst -> poll tick counter.
        self._ticks: Dict[str, int] = {}
        #: (src, dst) -> item awaiting a swap with the link's next send.
        self._swaps: Dict[Tuple[str, str], Any] = {}
        #: dst -> {(src, msg_id): extra copies in flight} (dedup at poll).
        #: Keyed by sender because each process numbers its messages
        #: independently — two nodes can emit the same msg_id — and kept
        #: as a multiset because distinct links may duplicate colliding
        #: ids concurrently.
        self._dup_ids: Dict[str, Dict[Tuple[str, int], int]] = {}
        self._down: set = set()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        # Callers hold self._lock.
        self.counts[name] = self.counts.get(name, 0) + n
        self.telemetry.count(name, n)

    def summary(self) -> Dict[str, int]:
        """The exact fault/retry counters, sorted by name."""
        with self._lock:
            return dict(sorted(self.counts.items()))

    def backoff_uniform(self, src: str, dst: str, retry_index: int) -> float:
        """Plan-seeded jitter draw for a real-error retry sleep."""
        return self.plan.uniform("backoff", src, dst, retry_index)

    # ------------------------------------------------------------------
    # crashed nodes
    # ------------------------------------------------------------------
    def mark_down(self, node: str) -> None:
        with self._lock:
            self._down.add(node)

    def mark_up(self, node: str) -> None:
        with self._lock:
            self._down.discard(node)

    def node_down(self, node: str) -> bool:
        return node in self._down

    # ------------------------------------------------------------------
    # send boundary
    # ------------------------------------------------------------------
    def on_send(self, message) -> Tuple[str, int]:
        """Decide the fate of ``message``; returns ``(action, ticks)``.

        Injected drops consume retry attempts internally, so the caller
        only ever sees a terminal action — or :class:`LinkDown` once the
        attempt budget is spent.
        """
        src, dst = message.src, message.dst
        with self._lock:
            if src in self._down or dst in self._down:
                self._count("fault.messages_lost")
                if self.telemetry.enabled:
                    self.telemetry.trace(
                        TraceKind.FAULT_INJECT, time=message.time,
                        subject=f"{src}->{dst}", action=LOST,
                        message_kind=message.kind.value)
                return LOST, 0
            if not self.plan.applies(message):
                return DELIVER, 0
            key = (src, dst)
            seq = self._seq.get(key, 0) + 1
            self._seq[key] = seq
            attempt = 0
            while True:
                action, ticks = self.plan.decide(src, dst, seq, attempt,
                                                 message.time)
                if action not in (DROP, PARTITION):
                    break
                self._count("fault.partition_drops" if action is PARTITION
                            else "fault.drops")
                attempt += 1
                if attempt >= self.retry_policy.max_attempts:
                    self._count("retry.giveups")
                    raise LinkDown(
                        f"link {src}->{dst}: message #{seq} dropped on all "
                        f"{attempt} attempts", src=src, dst=dst,
                        attempts=attempt)
                self._count("retry.attempts")
                if self.telemetry.enabled:
                    self.telemetry.trace(
                        TraceKind.RETRY, time=message.time,
                        subject=f"{src}->{dst}", attempt=attempt, seq=seq)
            if action is not DELIVER:
                self._count(f"fault.{action}s")
                if self.telemetry.enabled:
                    self.telemetry.trace(
                        TraceKind.FAULT_INJECT, time=message.time,
                        subject=f"{src}->{dst}", action=action, seq=seq)
            return action, ticks

    def check_call(self, message) -> None:
        """Gate a synchronous call: calls cannot reach a crashed node."""
        with self._lock:
            if message.src in self._down or message.dst in self._down:
                self._count("fault.calls_failed")
                raise LinkDown(
                    f"call {message.src}->{message.dst}: node down",
                    src=message.src, dst=message.dst)

    # ------------------------------------------------------------------
    # held traffic (delay / reorder), released at the poll boundary
    # ------------------------------------------------------------------
    def hold(self, dst: str, item: Any, ticks: int) -> None:
        """Park a delayed delivery for ``ticks`` polls of ``dst``."""
        with self._lock:
            due = self._ticks.get(dst, 0) + ticks
            self._held.setdefault(dst, []).append((due, item))

    def hold_swap(self, src: str, dst: str, item: Any) -> None:
        """Park a delivery until the link's next send (a true reorder).

        At most one item is parked per link; a second reorder decision
        before the first is released just queues behind it as a delay.
        """
        with self._lock:
            if (src, dst) in self._swaps:
                due = self._ticks.get(dst, 0) + 1
                self._held.setdefault(dst, []).append((due, item))
            else:
                self._swaps[(src, dst)] = item

    def take_swaps(self, src: str, dst: str) -> List[Any]:
        """Items parked on this link, now due behind the current send."""
        with self._lock:
            item = self._swaps.pop((src, dst), None)
            return [] if item is None else [item]

    def release_due(self, dst: str) -> List[Any]:
        """Advance ``dst``'s poll tick; return deliveries now due.

        Swap-parked items whose follow-up send never came are flushed
        here too, so no message is held beyond its destination's next
        poll plus its delay budget.
        """
        with self._lock:
            tick = self._ticks.get(dst, 0) + 1
            self._ticks[dst] = tick
            held = self._held.get(dst)
            due: List[Any] = []
            if held:
                keep = []
                for release_tick, item in held:
                    if release_tick <= tick:
                        due.append(item)
                    else:
                        keep.append((release_tick, item))
                if keep:
                    self._held[dst] = keep
                else:
                    del self._held[dst]
            for key in [k for k in self._swaps if k[1] == dst]:
                due.append(self._swaps.pop(key))
            return due

    # ------------------------------------------------------------------
    # duplicate suppression (exactly-once on top of at-least-once)
    # ------------------------------------------------------------------
    def expect_duplicate(self, dst: str, msg_id: int, *, src: str) -> None:
        key = (src, msg_id)
        with self._lock:
            ids = self._dup_ids.setdefault(dst, {})
            ids[key] = ids.get(key, 0) + 1

    def suppress_duplicate(self, dst: str, message) -> bool:
        """True if this drained copy is the redundant one: drop it."""
        ids = self._dup_ids.get(dst)
        key = (message.src, message.msg_id)
        if not ids or key not in ids:
            return False
        with self._lock:
            remaining = ids.get(key, 0)
            if not remaining:
                return False
            if remaining == 1:
                del ids[key]
            else:
                ids[key] = remaining - 1
            if not ids:
                self._dup_ids.pop(dst, None)
            self._count("fault.duplicates_suppressed")
        if self.telemetry.enabled:
            # The redundant copy carries the original send's trace
            # context; recording it here is what lets the causal layer
            # prove every duplicate shared the send's span.
            trace = getattr(message, "trace", None)
            extra = {} if trace is None else \
                {"trace_id": trace[0], "span": trace[1]}
            self.telemetry.trace(
                TraceKind.FAULT_INJECT, time=message.time,
                subject=f"{message.src}->{message.dst}",
                action="duplicate-suppressed",
                message_kind=message.kind.value, **extra)
        return True

    # ------------------------------------------------------------------
    # transport integration
    # ------------------------------------------------------------------
    def held_pending(self, name: Optional[str] = None) -> int:
        """Deliveries parked here (counted into ``transport.pending``)."""
        with self._lock:
            if name is not None:
                return (len(self._held.get(name, ()))
                        + sum(1 for k in self._swaps if k[1] == name))
            return (sum(len(v) for v in self._held.values())
                    + len(self._swaps))

    def purge_node(self, node: str) -> int:
        """Discard everything parked for (or swapped towards) ``node`` —
        it left the system for good."""
        with self._lock:
            purged = len(self._held.pop(node, ()))
            for key in [k for k in self._swaps if node in k]:
                del self._swaps[key]
                purged += 1
            self._dup_ids.pop(node, None)
            return purged

    def flush(self) -> int:
        """Drop everything parked (global rollback support)."""
        with self._lock:
            dropped = (sum(len(v) for v in self._held.values())
                       + len(self._swaps))
            self._held.clear()
            self._swaps.clear()
            self._dup_ids.clear()
            return dropped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultInjector plan={self.plan!r} "
                f"held={self.held_pending()}>")
