"""Deterministic fault plans: seeded chaos that replays bit for bit.

The paper's premise is *geographic* distribution — Pia nodes joined over
the Internet — where links drop, delay, duplicate and reorder traffic and
whole nodes disappear.  A :class:`FaultPlan` describes such an environment
as data: per-link fault rates, link partition windows and scheduled node
crashes.  Every decision is a **pure function** of the plan's seed and the
message's coordinates (link, per-link ordinal, attempt number), never of
wall-clock time or shared RNG state, so the same plan produces the same
faults on every run — chaos experiments are reproducible experiments.

Decisions are plain strings (``"deliver"``, ``"drop"`` …) rather than an
enum so the transports can consume them without importing this module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..core.errors import ConfigurationError

#: The possible outcomes of one send attempt.
DELIVER = "deliver"
DROP = "drop"
#: A drop caused by an active partition window (counted separately).
PARTITION = "partition"
DUPLICATE = "duplicate"
DELAY = "delay"
REORDER = "reorder"
#: Sent to (or from) a crashed node: swallowed, counted, never retried.
LOST = "lost"

#: Message kinds the plan perturbs by default: asynchronous channel
#: traffic.  Synchronous calls (safe time, hardware) are excluded — their
#: request counts depend on executor interleaving under the threaded
#: deployment, and faulting them would make fault counters nondeterministic.
DEFAULT_KINDS = ("signal", "mark", "restore")


def _normalise_kind(kind) -> str:
    return getattr(kind, "value", kind)


@dataclass(frozen=True)
class LinkFaults:
    """Per-attempt fault rates for one directed (or symmetric) link.

    Rates are probabilities over the plan's hash stream; their sum must
    not exceed 1.  ``delay_ticks`` is measured in destination *poll*
    calls — keep it small (a few ticks) so the cooperative executor's
    idle-round bound never mistakes a held message for a deadlock.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_ticks: int = 2
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {name}={rate} outside [0, 1]")
        if self.drop + self.duplicate + self.delay + self.reorder > 1.0:
            raise ConfigurationError("fault rates sum to more than 1")
        if self.delay_ticks < 1:
            raise ConfigurationError(
                f"delay_ticks must be >= 1: {self.delay_ticks}")


#: A link with no injected faults (the default).
NO_FAULTS = LinkFaults()


@dataclass(frozen=True)
class Partition:
    """A window of virtual time during which a link carries nothing.

    Active for messages stamped ``start <= message.time < stop``, in both
    directions.  Virtual time (not wall time) keeps the window
    deterministic across deployments.
    """

    a: str
    b: str
    start: float = 0.0
    stop: float = float("inf")

    def covers(self, src: str, dst: str, time: float) -> bool:
        return {src, dst} == {self.a, self.b} and self.start <= time < self.stop


@dataclass(frozen=True)
class NodeCrash:
    """A scheduled node failure: the node dies when global virtual time
    first reaches ``at_time``.  Each crash fires at most once per run —
    a recovery that rewinds time does not re-trigger it."""

    node: str
    at_time: float


class FaultPlan:
    """A seeded, replayable description of everything that goes wrong.

    ``links`` maps ``(src, dst)`` pairs to :class:`LinkFaults`; lookups
    fall back to the reversed pair and then to ``default``, so a single
    entry describes a symmetric link.
    """

    def __init__(self, seed: int = 0, *,
                 default: LinkFaults = NO_FAULTS,
                 links: Optional[Dict[Tuple[str, str], LinkFaults]] = None,
                 partitions: Iterable[Partition] = (),
                 crashes: Iterable[NodeCrash] = (),
                 kinds: Iterable = DEFAULT_KINDS) -> None:
        if seed < 0:
            raise ConfigurationError(f"fault plan seed must be >= 0: {seed}")
        self.seed = seed
        self.default = default
        self.links = dict(links or {})
        self.partitions = tuple(partitions)
        self.crashes = tuple(crashes)
        self.kinds = frozenset(_normalise_kind(k) for k in kinds)
        self._key = seed.to_bytes(8, "little")

    # ------------------------------------------------------------------
    def applies(self, message) -> bool:
        """Does this plan perturb messages of this kind?"""
        return _normalise_kind(message.kind) in self.kinds

    def faults_for(self, src: str, dst: str) -> LinkFaults:
        found = self.links.get((src, dst))
        if found is None:
            found = self.links.get((dst, src), self.default)
        return found

    def partitioned(self, src: str, dst: str, time: float) -> bool:
        return any(p.covers(src, dst, time) for p in self.partitions)

    def max_delay_ticks(self) -> int:
        """The worst-case poll-ticks any message can be held for (the
        executors widen their settle budgets by this)."""
        ticks = self.default.delay_ticks if self.default.delay else 0
        for faults in self.links.values():
            if faults.delay:
                ticks = max(ticks, faults.delay_ticks)
        return ticks

    # ------------------------------------------------------------------
    def for_node(self, node: str) -> "FaultPlan":
        """The plan as seen from one node's process.

        Message-fault decisions are pure functions of the *base* seed and
        the message's coordinates, so every process must keep that seed —
        deriving a different per-node seed would give each process a
        different hash stream and break same-seed equivalence with the
        single-process run.  Link rates, partitions and perturbed kinds
        are global facts and carry over unchanged; only scheduled crashes
        are filtered to the ones this node itself suffers (the coordinator
        owns crash *detection* for every node).
        """
        return FaultPlan(self.seed, default=self.default, links=self.links,
                         partitions=self.partitions,
                         crashes=[c for c in self.crashes if c.node == node],
                         kinds=self.kinds)

    # ------------------------------------------------------------------
    def uniform(self, *parts) -> float:
        """A deterministic uniform draw in [0, 1) keyed by ``parts``."""
        blob = "|".join(str(p) for p in parts).encode()
        digest = hashlib.blake2b(blob, key=self._key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def decide(self, src: str, dst: str, seq: int, attempt: int,
               time: float) -> Tuple[str, int]:
        """The fate of attempt ``attempt`` of the ``seq``-th message on
        the link; returns ``(action, delay_ticks)``."""
        if self.partitioned(src, dst, time):
            return PARTITION, 0
        faults = self.faults_for(src, dst)
        if faults is NO_FAULTS:
            return DELIVER, 0
        u = self.uniform("msg", src, dst, seq, attempt)
        edge = faults.drop
        if u < edge:
            return DROP, 0
        edge += faults.duplicate
        if u < edge:
            return DUPLICATE, 0
        edge += faults.delay
        if u < edge:
            return DELAY, faults.delay_ticks
        edge += faults.reorder
        if u < edge:
            return REORDER, 0
        return DELIVER, 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultPlan seed={self.seed} links={len(self.links)} "
                f"partitions={len(self.partitions)} "
                f"crashes={len(self.crashes)}>")
