"""Retry policy: exponential backoff with deterministic jitter.

One policy object governs both flavours of send failure — faults injected
by a :class:`~repro.faults.FaultPlan` and real socket errors on the TCP
transport.  Jitter is *supplied by the caller* as a uniform draw (derived
from the plan's seed when one is attached), so backoff sequences replay
exactly; without a plan, the midpoint draw 0.5 yields plain exponential
backoff.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a transport tries before declaring a link down."""

    #: Total attempts per message (first try included).
    max_attempts: int = 8
    #: Wall-clock sleep before the first retry (seconds).
    base_delay: float = 0.02
    #: Backoff multiplier per further retry.
    multiplier: float = 2.0
    #: Ceiling for a single backoff sleep.
    max_delay: float = 1.0
    #: Jitter as a fraction of the computed delay (0 = none).
    jitter: float = 0.1
    #: Overall wall-clock budget across all attempts of one send.
    deadline: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.deadline <= 0:
            raise ConfigurationError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be within [0, 1]: {self.jitter}")

    def backoff(self, retry_index: int, u: float = 0.5) -> float:
        """Sleep before the ``retry_index``-th retry (0-based).

        ``u`` is a uniform draw in [0, 1) spreading the sleep across
        ``delay * (1 ± jitter)``; pass a plan-derived draw for
        reproducible jitter.
        """
        delay = min(self.base_delay * self.multiplier ** retry_index,
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return max(0.0, delay)


#: Retry effectively disabled: one attempt, fail fast.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
