"""Hardware in the loop: stubs, the simulated Pamette, remote servers."""

from .circuits import (
    LFSR_TAPS,
    adder_bitstream,
    lfsr_bitstream,
    lfsr_reference,
    shift_register_bitstream,
)
from .component import HardwareComponent, HwCall, HwCallExecutor
from .devices import (
    REG_CONTROL,
    REG_DATA,
    REG_PERIOD,
    REG_STATUS,
    TimerDevice,
    UartDevice,
)
from .pamette import (
    LUT_WIDTH,
    Bitstream,
    Dff,
    Lut,
    SimulatedPamette,
    counter_bitstream,
)
from .server import RemoteHardwareClient, RemoteHardwareServer
from .stub import HardwareStub, InterruptRecord

__all__ = [
    "Bitstream", "Dff", "HardwareComponent", "HardwareStub", "HwCall",
    "HwCallExecutor", "InterruptRecord", "LUT_WIDTH", "Lut", "REG_CONTROL", "REG_DATA",
    "REG_PERIOD", "REG_STATUS", "RemoteHardwareClient",
    "RemoteHardwareServer", "SimulatedPamette", "TimerDevice", "UartDevice",
    "LFSR_TAPS", "adder_bitstream", "counter_bitstream",
    "lfsr_bitstream", "lfsr_reference", "shift_register_bitstream",
]
