"""A small library of synthesisable bitstreams for the simulated Pamette.

The counter of :func:`~repro.hw.pamette.counter_bitstream` is the "hello
world"; these are the next designs a board bring-up actually uses: shift
registers (serial links), LFSRs (test-pattern generation, the classic BIST
primitive) and ripple-carry adders (the first datapath block).  All are
plain LUT4/DFF netlists evaluated cycle-accurately by
:class:`~repro.hw.pamette.SimulatedPamette`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.errors import ConfigurationError
from .pamette import Bitstream

#: Canonical maximal-length LFSR taps (Fibonacci form, 1-indexed from MSB).
LFSR_TAPS: Dict[int, Tuple[int, ...]] = {
    3: (3, 2), 4: (4, 3), 5: (5, 3), 6: (6, 5), 7: (7, 6),
    8: (8, 6, 5, 4), 16: (16, 15, 13, 4),
}


def shift_register_bitstream(bits: int, *, tap_irq: bool = False) -> Bitstream:
    """A serial-in shift register.

    Input register ``din`` (1 bit) at ``0x10`` feeds the chain each clock;
    the parallel value is readable at ``0x0``.  With ``tap_irq`` the MSB
    raises the ``msb`` interrupt on its rising edge — a sync-word detector
    in two lines.
    """
    if bits < 1:
        raise ConfigurationError("shift register needs at least 1 bit")
    bs = Bitstream(f"shift{bits}")
    din = bs.add_input_register(0x10, "din", 1)[0]
    previous = din
    stages: List[str] = []
    for index in range(bits):
        q = f"s{index}"
        bs.buf(f"d{index}", previous)
        bs.add_dff(q, f"d{index}")
        stages.append(q)
        previous = q
    bs.add_output_register(0x0, stages)
    if tap_irq:
        bs.add_irq("msb", stages[-1])
    return bs


def lfsr_bitstream(bits: int, *, init: int = 1) -> Bitstream:
    """A Fibonacci LFSR with maximal-length taps.

    The state is readable at ``0x0``.  ``init`` must be non-zero (the
    all-zero state is the LFSR's absorbing dead state).
    """
    taps = LFSR_TAPS.get(bits)
    if taps is None:
        raise ConfigurationError(
            f"no canonical taps for a {bits}-bit LFSR "
            f"(available: {sorted(LFSR_TAPS)})")
    if init == 0 or init >= (1 << bits):
        raise ConfigurationError(
            f"LFSR init must be in [1, {(1 << bits) - 1}], got {init}")
    bs = Bitstream(f"lfsr{bits}")
    state = [f"q{index}" for index in range(bits)]     # q0 = LSB
    # feedback = xor of tapped bits; tap t (1-indexed) reads bit t-1, the
    # convention that realises the maximal-length polynomials above.
    tap_signals = [state[t - 1] for t in taps]
    feedback = tap_signals[0]
    for index, signal in enumerate(tap_signals[1:], start=1):
        out = f"fb{index}"
        bs.xor_gate(out, feedback, signal)
        feedback = out
    # shift towards the MSB: q0 <= feedback, q[i] <= q[i-1]
    bs.add_dff(state[0], feedback, init=(init >> 0) & 1)
    for index in range(1, bits):
        bs.buf(f"d{index}", state[index - 1])
        bs.add_dff(state[index], f"d{index}", init=(init >> index) & 1)
    bs.add_output_register(0x0, state)
    return bs


def lfsr_reference(bits: int, init: int, steps: int) -> List[int]:
    """Software model of :func:`lfsr_bitstream`, for verification."""
    taps = LFSR_TAPS[bits]
    state = init
    sequence = []
    for __ in range(steps):
        feedback = 0
        for t in taps:
            feedback ^= (state >> (t - 1)) & 1
        state = ((state << 1) | feedback) & ((1 << bits) - 1)
        sequence.append(state)
    return sequence


def adder_bitstream(bits: int) -> Bitstream:
    """A registered ripple-carry adder: ``sum <= a + b`` each clock.

    ``a`` and ``b`` are input registers at ``0x10``/``0x14``; the
    registered sum (with carry-out as the top bit) reads at ``0x0``.
    """
    if bits < 1:
        raise ConfigurationError("adder needs at least 1 bit")
    bs = Bitstream(f"adder{bits}")
    a = bs.add_input_register(0x10, "a", bits)
    b = bs.add_input_register(0x14, "b", bits)
    carry = None
    outs: List[str] = []
    for index in range(bits):
        s = f"sum{index}"
        if carry is None:
            bs.xor_gate(s, a[index], b[index])
            carry_next = f"c{index}"
            bs.and_gate(carry_next, a[index], b[index])
        else:
            # full adder from two LUTs (sum and carry truth tables)
            bs.add_lut(s, [a[index], b[index], carry], 0b10010110)
            carry_next = f"c{index}"
            bs.add_lut(carry_next, [a[index], b[index], carry], 0b11101000)
        bs.buf(f"ds{index}", s)
        bs.add_dff(f"r{index}", f"ds{index}")
        outs.append(f"r{index}")
        carry = carry_next
    assert carry is not None
    bs.buf("dcarry", carry)
    bs.add_dff("rcarry", "dcarry")
    outs.append("rcarry")
    bs.add_output_register(0x0, outs)
    return bs
