"""Wrapping real hardware into a Pia component (paper section 2.3).

A :class:`HardwareComponent` drives a :class:`~repro.hw.stub.HardwareStub`
(local or remote) in lockstep with virtual time: every ``window`` seconds
of virtual time it clocks the hardware the corresponding number of ticks,
injects buffered interrupts into the simulation at their exact virtual
times, and applies values received on its ``mmio`` port as register pokes.

The window is the hardware/simulator synchronisation quantum: pokes are
applied at window boundaries, so a smaller window buys input-timing
fidelity at the cost of more stub calls — which matters when the stub is a
:class:`~repro.hw.server.RemoteHardwareClient` at the end of an Internet
link.  This is the same detail/bandwidth trade the run-level machinery
makes for component communication.

Checkpoint/restore note: real hardware cannot be rewound, so every stub
interaction is a logged command — a restore replays the *recorded*
hardware responses.  This is sound as long as re-execution follows the
same path up to the restore point (the framework's usual determinism
requirement); hardware designed for Pia would add true state save, which
the paper also leaves as the ideal case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..core.component import ProcessComponent
from ..core.errors import ConfigurationError, HardwareStubError
from ..core.port import PortDirection
from ..core.process import Command, Send, TryReceive, WaitUntil
from .stub import HardwareStub


@dataclass(frozen=True)
class HwCall(Command):
    """Perform one stub operation; the result is replay-logged."""

    op: str
    args: Tuple = ()


class HwCallExecutor(ProcessComponent):
    """A process component whose behaviour may yield :class:`HwCall`.

    The stub lives in ``self.stub`` and is infrastructure: never part of a
    checkpoint image, never deep-copied; every interaction is replay-logged
    so restores replay recorded hardware responses (see the module
    docstring).  Subclasses whose stub supports state save get true
    hardware rewind via the inherited snapshot/restore.
    """

    def __init__(self, name: str, stub: HardwareStub) -> None:
        super().__init__(name)
        self.stub = stub
        self._infra_keys.add("stub")

    def _execute_extra(self, cmd: Command) -> Any:
        if isinstance(cmd, HwCall):
            if self.replaying:
                return self.replay_take("hwcall")[1]
            result = getattr(self.stub, cmd.op)(*cmd.args)
            self.log_append("hwcall", result)
            return result
        return super()._execute_extra(cmd)

    def snapshot(self):
        snap = super().snapshot()
        if self.stub.supports_state_save:
            snap.extra["hw_state"] = self.stub.save_state()
        return snap

    def restore(self, snap) -> None:
        super().restore(snap)
        if "hw_state" in snap.extra:
            # Pia-aware hardware really rewinds; anything else keeps its
            # state and relies on the replayed call log (module docstring).
            self.stub.restore_state(snap.extra["hw_state"])


class HardwareComponent(HwCallExecutor):
    """A piece of (simulated or remote) real hardware in the simulation."""

    def __init__(self, name: str, stub: HardwareStub, *,
                 window: float = 1e-3,
                 lifetime: float = 1.0,
                 irq_lines: Sequence[str] = ()) -> None:
        super().__init__(name, stub)
        if window <= 0:
            raise ConfigurationError(f"{name}: window must be > 0")
        if lifetime <= 0:
            raise ConfigurationError(f"{name}: lifetime must be > 0")
        self.window = window
        self.lifetime = lifetime
        self.irq_lines = list(irq_lines)
        #: Interrupts injected, pokes applied (stats).
        self.interrupts_raised = 0
        self.pokes_applied = 0
        self.add_port("mmio", PortDirection.IN)
        for line in self.irq_lines:
            self.add_port(line, PortDirection.OUT)

    # ------------------------------------------------------------------
    def run(self) -> Iterator[Command]:
        yield HwCall("set_time", (0,))
        while self.local_time < self.lifetime:
            # Apply register writes that arrived during the last window.
            while True:
                got = yield TryReceive("mmio")
                if got is None:
                    break
                __, payload = got
                addr, value = payload
                yield HwCall("poke", (addr, value))
                self.pokes_applied += 1
            target = min(self.local_time + self.window, self.lifetime)
            expected_tick = int(round(target * self.stub.clock_hz))
            current = yield HwCall("read_time", ())
            ticks = max(0, expected_tick - current)
            records = yield HwCall("run_for", (ticks,))
            for record in records:
                virtual = record.tick / self.stub.clock_hz
                if record.line not in self.ports:
                    raise HardwareStubError(
                        f"{self.name}: hardware raised unknown line "
                        f"{record.line!r} (wired: {self.irq_lines})")
                # Wait up to the interrupt's instant so the send carries
                # its true virtual time, then raise it.
                yield WaitUntil(virtual)
                yield Send(record.line, record.payload)
                self.interrupts_raised += 1
            yield WaitUntil(target)
