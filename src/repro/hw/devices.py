"""Ready-made hardware devices behind the stub contract.

These are plain-Python behavioural models — the kind of device a designer
would patch into a simulated circuit for evaluation, like the web-hosted
i960 of the paper's Intel example.  For gate-level hardware see
:mod:`repro.hw.pamette`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..core.errors import HardwareStubError
from .stub import HardwareStub, InterruptRecord

#: Register map shared by the simple devices.
REG_CONTROL = 0x0
REG_STATUS = 0x4
REG_DATA = 0x8
REG_PERIOD = 0xC


class TimerDevice(HardwareStub):
    """A programmable interval timer: raises ``timer`` every PERIOD ticks."""

    supports_state_save = True

    def __init__(self, *, clock_hz: float = 1e6, period: int = 1000) -> None:
        if period < 1:
            raise HardwareStubError(f"period must be >= 1, got {period}")
        self.clock_hz = clock_hz
        self._tick = 0
        self._stalled = False
        self._enabled = False
        self._period = period
        self._countdown = period
        self._fired = 0

    def read_time(self) -> int:
        return self._tick

    def set_time(self, ticks: int) -> None:
        self._tick = int(ticks)

    def run_for(self, ticks: int) -> List[InterruptRecord]:
        records: List[InterruptRecord] = []
        for __ in range(ticks):
            self._tick += 1
            if self._stalled or not self._enabled:
                continue
            self._countdown -= 1
            if self._countdown == 0:
                self._fired += 1
                records.append(InterruptRecord(self._tick, "timer",
                                               self._fired))
                self._countdown = self._period
        return records

    def stall(self) -> None:
        self._stalled = True

    def resume(self) -> None:
        self._stalled = False

    def save_state(self):
        return (self._tick, self._stalled, self._enabled, self._period,
                self._countdown, self._fired)

    def restore_state(self, state) -> None:
        (self._tick, self._stalled, self._enabled, self._period,
         self._countdown, self._fired) = state

    def peek(self, addr: int) -> int:
        if addr == REG_CONTROL:
            return int(self._enabled)
        if addr == REG_STATUS:
            return self._fired
        if addr == REG_PERIOD:
            return self._period
        raise HardwareStubError(f"timer: no register at {addr:#x}")

    def poke(self, addr: int, value: int) -> None:
        if addr == REG_CONTROL:
            self._enabled = bool(value & 1)
        elif addr == REG_PERIOD:
            if value < 1:
                raise HardwareStubError(f"bad period {value}")
            self._period = value
            self._countdown = value
        else:
            raise HardwareStubError(f"timer: no writable register {addr:#x}")


class UartDevice(HardwareStub):
    """A byte pipe with transmission delay: poke DATA to send, interrupt
    ``rx`` signals a received byte ready in DATA.

    ``loopback`` wires TX to RX after ``latency_ticks`` — enough to model
    the far end for protocol bring-up.
    """

    BITS_PER_BYTE = 10       # start + 8 data + stop

    supports_state_save = True

    def __init__(self, *, clock_hz: float = 1e6, divisor: int = 8,
                 loopback: bool = True) -> None:
        if divisor < 1:
            raise HardwareStubError(f"divisor must be >= 1, got {divisor}")
        self.clock_hz = clock_hz
        self.divisor = divisor
        self.loopback = loopback
        self._tick = 0
        self._stalled = False
        #: (due_tick, byte) in flight.
        self._in_flight: Deque = deque()
        self._rx_fifo: Deque[int] = deque()
        self.tx_count = 0
        self.rx_count = 0

    @property
    def byte_ticks(self) -> int:
        return self.BITS_PER_BYTE * self.divisor

    def read_time(self) -> int:
        return self._tick

    def set_time(self, ticks: int) -> None:
        self._tick = int(ticks)

    def run_for(self, ticks: int) -> List[InterruptRecord]:
        records: List[InterruptRecord] = []
        end = self._tick + ticks
        while self._tick < end:
            self._tick += 1
            if self._stalled:
                continue
            while self._in_flight and self._in_flight[0][0] <= self._tick:
                __, byte = self._in_flight.popleft()
                if self.loopback:
                    self._rx_fifo.append(byte)
                    self.rx_count += 1
                    records.append(InterruptRecord(self._tick, "rx", byte))
        return records

    def stall(self) -> None:
        self._stalled = True

    def resume(self) -> None:
        self._stalled = False

    def save_state(self):
        return (self._tick, self._stalled, tuple(self._in_flight),
                tuple(self._rx_fifo), self.tx_count, self.rx_count)

    def restore_state(self, state) -> None:
        (self._tick, self._stalled, in_flight, rx, self.tx_count,
         self.rx_count) = state
        self._in_flight = deque(in_flight)
        self._rx_fifo = deque(rx)

    def peek(self, addr: int) -> int:
        if addr == REG_STATUS:
            return len(self._rx_fifo)
        if addr == REG_DATA:
            if not self._rx_fifo:
                raise HardwareStubError("uart: RX fifo empty")
            return self._rx_fifo.popleft()
        raise HardwareStubError(f"uart: no register at {addr:#x}")

    def poke(self, addr: int, value: int) -> None:
        if addr != REG_DATA:
            raise HardwareStubError(f"uart: no writable register {addr:#x}")
        self.tx_count += 1
        self._in_flight.append((self._tick + self.byte_ticks, value & 0xFF))
