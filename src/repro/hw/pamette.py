"""A simulated DEC Pamette: a LUT/flip-flop FPGA board behind the stub.

The paper's hardware-in-the-loop path uses "a DEC Pamette board [4] to
provide the hardware side" with "the software side ... written using the
Pamette control library".  We cannot ship a PCI FPGA board, so this module
implements the closest synthetic equivalent that exercises the same code
path: a cycle-accurate synchronous netlist simulator (4-input LUTs plus
D flip-flops), configured by a :class:`Bitstream`, exposing memory-mapped
input/output registers and buffered interrupt lines through the
:class:`~repro.hw.stub.HardwareStub` contract.

The netlist model is deliberately real EDA machinery: combinational nodes
are levelised topologically (cycles are rejected), flip-flops latch on the
simulated clock edge, and interrupts are rising-edge detections on
designated signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.errors import ConfigurationError, HardwareStubError
from .stub import HardwareStub, InterruptRecord

#: Number of LUT inputs (classic 4-LUT fabric).
LUT_WIDTH = 4


@dataclass(frozen=True)
class Lut:
    """A combinational lookup table: ``out = truth[inputs as bits]``."""

    out: str
    inputs: Tuple[str, ...]
    truth: int            # 2**len(inputs) bits

    def evaluate(self, values: Dict[str, int]) -> int:
        index = 0
        for bit, name in enumerate(self.inputs):
            index |= (values[name] & 1) << bit
        return (self.truth >> index) & 1


@dataclass(frozen=True)
class Dff:
    """A D flip-flop: ``q`` latches ``d`` on each clock edge."""

    q: str
    d: str
    init: int = 0


class Bitstream:
    """A synthesisable configuration for the simulated Pamette fabric."""

    def __init__(self, name: str = "bitstream") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.luts: List[Lut] = []
        self.dffs: List[Dff] = []
        #: addr -> list of signal names forming a readable register (LSB first)
        self.out_regs: Dict[int, List[str]] = {}
        #: addr -> (register name, width): writable input registers.
        self.in_regs: Dict[int, Tuple[str, int]] = {}
        #: signals whose rising edge raises an interrupt line of that name.
        self.irqs: Dict[str, str] = {}

    # -- construction ----------------------------------------------------
    def add_input(self, name: str) -> str:
        self._fresh(name)
        self.inputs.append(name)
        return name

    def add_input_register(self, addr: int, name: str, width: int) -> List[str]:
        """A pokeable register whose bits appear as signals ``name[i]``."""
        if addr in self.in_regs or addr in self.out_regs:
            raise ConfigurationError(f"{self.name}: register at {addr:#x} exists")
        bits = []
        for i in range(width):
            bit = f"{name}[{i}]"
            self.add_input(bit)
            bits.append(bit)
        self.in_regs[addr] = (name, width)
        return bits

    def add_lut(self, out: str, inputs: Sequence[str], truth: int) -> Lut:
        if len(inputs) > LUT_WIDTH:
            raise ConfigurationError(
                f"{self.name}: LUT {out} has {len(inputs)} inputs "
                f"(max {LUT_WIDTH})")
        self._fresh(out)
        lut = Lut(out, tuple(inputs), truth)
        self.luts.append(lut)
        return lut

    def add_dff(self, q: str, d: str, init: int = 0) -> Dff:
        self._fresh(q)
        dff = Dff(q, d, init & 1)
        self.dffs.append(dff)
        return dff

    def add_output_register(self, addr: int, bits: Sequence[str]) -> None:
        if addr in self.out_regs or addr in self.in_regs:
            raise ConfigurationError(f"{self.name}: register at {addr:#x} exists")
        self.out_regs[addr] = list(bits)

    def add_irq(self, line: str, signal: str) -> None:
        if line in self.irqs:
            raise ConfigurationError(f"{self.name}: duplicate irq {line!r}")
        self.irqs[line] = signal

    def _fresh(self, name: str) -> None:
        if name in self.inputs or any(l.out == name for l in self.luts) \
                or any(f.q == name for f in self.dffs):
            raise ConfigurationError(
                f"{self.name}: signal {name!r} already driven")

    # -- gate-level helpers -----------------------------------------------
    def not_gate(self, out: str, a: str) -> None:
        self.add_lut(out, [a], 0b01)

    def and_gate(self, out: str, a: str, b: str) -> None:
        self.add_lut(out, [a, b], 0b1000)

    def or_gate(self, out: str, a: str, b: str) -> None:
        self.add_lut(out, [a, b], 0b1110)

    def xor_gate(self, out: str, a: str, b: str) -> None:
        self.add_lut(out, [a, b], 0b0110)

    def buf(self, out: str, a: str) -> None:
        self.add_lut(out, [a], 0b10)


class SimulatedPamette(HardwareStub):
    """The board: fabric + clock + registers + interrupt buffering."""

    supports_state_save = True

    def __init__(self, bitstream: Bitstream, *, clock_hz: float = 1e6) -> None:
        if clock_hz <= 0:
            raise ConfigurationError("clock must be > 0")
        self.clock_hz = clock_hz
        self.bitstream = bitstream
        self._tick = 0
        self._stalled = False
        self._pending: List[InterruptRecord] = []
        self._values: Dict[str, int] = {}
        self._irq_last: Dict[str, int] = {}
        self._in_reg_values: Dict[int, int] = {
            addr: 0 for addr in bitstream.in_regs}
        self._order = self._levelise()
        self._reset_state()

    # ------------------------------------------------------------------
    def _levelise(self) -> List[Lut]:
        """Topologically order the combinational network (no comb loops)."""
        graph = nx.DiGraph()
        by_out = {lut.out: lut for lut in self.bitstream.luts}
        graph.add_nodes_from(by_out)
        sequential = {dff.q for dff in self.bitstream.dffs}
        known = set(self.bitstream.inputs) | sequential
        for lut in self.bitstream.luts:
            for name in lut.inputs:
                if name in by_out:
                    graph.add_edge(name, lut.out)
                elif name not in known:
                    raise ConfigurationError(
                        f"{self.bitstream.name}: LUT {lut.out} reads "
                        f"undriven signal {name!r}")
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            raise ConfigurationError(
                f"{self.bitstream.name}: combinational loop detected"
            ) from None
        return [by_out[name] for name in order]

    def _reset_state(self) -> None:
        self._values = {name: 0 for name in self.bitstream.inputs}
        for dff in self.bitstream.dffs:
            self._values[dff.q] = dff.init
        self._settle()
        for line, signal in self.bitstream.irqs.items():
            self._irq_last[line] = self._values[signal]

    def _settle(self) -> None:
        for lut in self._order:
            self._values[lut.out] = lut.evaluate(self._values)

    def _clock_edge(self) -> None:
        latched = {dff.q: self._values[dff.d] & 1
                   for dff in self.bitstream.dffs}
        self._values.update(latched)
        self._settle()
        for line, signal in self.bitstream.irqs.items():
            current = self._values[signal]
            if current and not self._irq_last[line]:
                self._pending.append(InterruptRecord(self._tick, line))
            self._irq_last[line] = current

    # ------------------------------------------------------------------
    # HardwareStub contract
    # ------------------------------------------------------------------
    def save_state(self):
        return (self._tick, self._stalled, tuple(self._pending),
                dict(self._values), dict(self._irq_last),
                dict(self._in_reg_values))

    def restore_state(self, state) -> None:
        (self._tick, self._stalled, pending, values, irq_last,
         in_regs) = state
        self._pending = list(pending)
        self._values = dict(values)
        self._irq_last = dict(irq_last)
        self._in_reg_values = dict(in_regs)

    def read_time(self) -> int:
        return self._tick

    def set_time(self, ticks: int) -> None:
        self._tick = int(ticks)

    def run_for(self, ticks: int) -> List[InterruptRecord]:
        if ticks < 0:
            raise HardwareStubError(f"negative tick count {ticks}")
        for __ in range(ticks):
            self._tick += 1
            if not self._stalled:
                self._clock_edge()
        pending, self._pending = self._pending, []
        return pending

    def stall(self) -> None:
        self._stalled = True

    def resume(self) -> None:
        self._stalled = False

    def peek(self, addr: int) -> int:
        bits = self.bitstream.out_regs.get(addr)
        if bits is None:
            if addr in self._in_reg_values:
                return self._in_reg_values[addr]
            raise HardwareStubError(f"no register at {addr:#x}")
        value = 0
        for index, name in enumerate(bits):
            value |= (self._values[name] & 1) << index
        return value

    def poke(self, addr: int, value: int) -> None:
        reg = self.bitstream.in_regs.get(addr)
        if reg is None:
            raise HardwareStubError(f"no writable register at {addr:#x}")
        name, width = reg
        self._in_reg_values[addr] = value & ((1 << width) - 1)
        for i in range(width):
            self._values[f"{name}[{i}]"] = (value >> i) & 1
        self._settle()

    # ------------------------------------------------------------------
    def signal(self, name: str) -> int:
        """Inspect any internal signal (test/debug convenience)."""
        return self._values[name]


def counter_bitstream(bits: int, *, irq_on_wrap: bool = False) -> Bitstream:
    """A ripple-carry counter: the classic first Pamette design.

    Output register at 0x0 holds the count; with ``irq_on_wrap`` the
    carry out of the top bit raises the ``wrap`` interrupt line.
    """
    if bits < 1:
        raise ConfigurationError("counter needs at least 1 bit")
    bs = Bitstream(f"counter{bits}")
    carry = None
    outs = []
    for i in range(bits):
        q = f"q{i}"
        d = f"d{i}"
        if i == 0:
            bs.not_gate(d, q)                       # toggles every cycle
            carry_next = q                          # carry = old bit value
        else:
            assert carry is not None
            bs.xor_gate(d, q, carry)
            carry_next = f"c{i}"
            bs.and_gate(carry_next, q, carry)
        bs.add_dff(q, d)
        outs.append(q)
        carry = carry_next
    bs.add_output_register(0x0, outs)
    if irq_on_wrap:
        assert carry is not None
        bs.add_irq("wrap", carry)
    return bs
