"""Remote hardware servers (paper sections 2.3 and 5).

"Additional current and future work involves setting up Pia socket
versions of hardware servers" — a Pia node exposes a piece of hardware
(behind the stub contract) to the rest of the distributed simulation, the
way Intel's remote evaluation facility exposed i960 processors over the
web.  Calls travel over the ordinary transport as ``HW_CALL`` messages, so
the hardware can sit on any node, across any link model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..core.errors import HardwareStubError, TransportError
from ..transport.message import Message, MessageKind
from .stub import HardwareStub, InterruptRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..distributed.node import PiaNode

#: Operations the hardware-call protocol understands.
_OPS = ("read_time", "set_time", "run_for", "stall", "resume",
        "peek", "poke", "info", "save_state", "restore_state")


class RemoteHardwareServer:
    """Serves one or more hardware stubs on a Pia node."""

    def __init__(self, node: "PiaNode") -> None:
        self.node = node
        self.stubs: dict = {}
        self.calls_served = 0
        node.call_services[MessageKind.HW_CALL] = self.serve

    def attach(self, name: str, stub: HardwareStub) -> None:
        """Expose ``stub`` under ``name`` (creates a node socket)."""
        if name in self.stubs:
            raise HardwareStubError(f"hardware {name!r} already attached")
        self.stubs[name] = stub
        self.node.add_socket(f"hardware:{name}", "hardware", stub)

    def serve(self, message: Message) -> Message:
        name, op, args = message.payload
        stub = self.stubs.get(name)
        if stub is None:
            raise HardwareStubError(
                f"{self.node.name}: no hardware named {name!r} "
                f"(attached: {sorted(self.stubs)})")
        if op not in _OPS:
            raise HardwareStubError(f"unknown hardware op {op!r}")
        self.calls_served += 1
        result = getattr(stub, op)(*args)
        if op == "run_for":
            # Interrupt records cross the wire as plain tuples.
            result = [(r.tick, r.line, r.payload) for r in result]
        return message.reply(MessageKind.HW_REPLY, payload=result)


class RemoteHardwareClient(HardwareStub):
    """A stub proxy: the local side of a remote hardware connection.

    Implements the full :class:`HardwareStub` contract by forwarding every
    call over the transport, so a
    :class:`~repro.hw.component.HardwareComponent` cannot tell whether its
    hardware is local or on another continent — exactly the transparency
    the paper is after.
    """

    def __init__(self, node: "PiaNode", server_node: str, name: str) -> None:
        self.node = node
        self.server_node = server_node
        self.hw_name = name
        self.calls_made = 0
        info = self._call("info")
        self.clock_hz = info["clock_hz"]
        self.remote_type = info["type"]
        self.supports_state_save = info.get("supports_state_save", False)

    def _call(self, op: str, *args):
        self.calls_made += 1
        reply = self.node.transport.call(Message(
            kind=MessageKind.HW_CALL,
            src=self.node.name,
            dst=self.server_node,
            payload=(self.hw_name, op, args),
        ))
        if reply.kind is not MessageKind.HW_REPLY:
            raise TransportError(f"unexpected reply kind {reply.kind}")
        return reply.payload

    # -- contract ----------------------------------------------------------
    def read_time(self) -> int:
        return self._call("read_time")

    def set_time(self, ticks: int) -> None:
        self._call("set_time", ticks)

    def run_for(self, ticks: int) -> List[InterruptRecord]:
        return [InterruptRecord(tick, line, payload)
                for tick, line, payload in self._call("run_for", ticks)]

    def stall(self) -> None:
        self._call("stall")

    def resume(self) -> None:
        self._call("resume")

    def peek(self, addr: int) -> int:
        return self._call("peek", addr)

    def poke(self, addr: int, value: int) -> None:
        self._call("poke", addr, value)

    def save_state(self):
        return self._call("save_state")

    def restore_state(self, state) -> None:
        self._call("restore_state", state)

    def info(self) -> dict:
        return self._call("info")
