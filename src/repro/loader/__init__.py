"""Dynamic component (re)loading — Pia's class loader (paper section 3.2)."""

from .class_loader import ComponentLoader

__all__ = ["ComponentLoader"]
