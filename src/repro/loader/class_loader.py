"""Dynamic component loading (paper section 3.2).

"The class loader used in Pia is designed to allow a user to recompile and
reload a component without having to restart the simulator.  Pia's class
loader is able to load components on demand from arbitrary URLs on the
Internet.  If a class cannot be found through the custom channels, Pia
uses Java's built in class loader."

This reproduction loads component classes from:

* ``pkg.module:ClassName`` — the ordinary import system (the "built-in
  class loader" fallback);
* ``path/to/file.py:ClassName`` — a source file, executed in isolation;
* ``file:///abs/path.py:ClassName`` — a URL (the offline environment
  supports ``file://``; remote schemes would plug in here).

File-based classes are cached by modification time, so editing the source
and loading again picks up the new definition without restarting anything.
"""

from __future__ import annotations

import importlib
import os
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from ..core.component import Component
from ..core.errors import LoaderError


@dataclass
class _CacheEntry:
    mtime: float
    namespace: dict


class ComponentLoader:
    """Loads and reloads component classes from specs."""

    def __init__(self, *, search_paths: Optional[List[str]] = None,
                 require_component: bool = True) -> None:
        #: Directories tried for relative file specs (the "classpath").
        self.search_paths = list(search_paths or ["."])
        #: Enforce that loaded classes derive from :class:`Component`.
        self.require_component = require_component
        self._cache: Dict[str, _CacheEntry] = {}
        self.loads = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def load(self, spec: str) -> Type:
        """Resolve ``spec`` to a class (see module docstring for forms)."""
        location, class_name = self._split(spec)
        if location.startswith("file://"):
            path = urllib.parse.urlparse(location).path
            cls = self._load_from_file(path, class_name)
        elif location.endswith(".py") or os.sep in location \
                or "/" in location:
            path = self._resolve_path(location)
            cls = self._load_from_file(path, class_name)
        else:
            cls = self._load_from_module(location, class_name)
        if self.require_component and not (isinstance(cls, type)
                                           and issubclass(cls, Component)):
            raise LoaderError(
                f"{spec}: {class_name} is not a Component subclass")
        self.loads += 1
        return cls

    def instantiate(self, spec: str, *args, **kwargs) -> Any:
        """Load the class and construct an instance."""
        cls = self.load(spec)
        try:
            return cls(*args, **kwargs)
        except Exception as exc:
            raise LoaderError(f"{spec}: constructor failed: {exc}") from exc

    def invalidate(self, spec_or_path: Optional[str] = None) -> None:
        """Drop cached file namespaces (all of them when no argument)."""
        if spec_or_path is None:
            self._cache.clear()
            return
        location, __ = self._split(spec_or_path) \
            if ":" in spec_or_path and not spec_or_path.startswith("file://") \
            else (spec_or_path, "")
        for path in list(self._cache):
            if path.endswith(location) or location.endswith(path):
                del self._cache[path]

    # ------------------------------------------------------------------
    @staticmethod
    def _split(spec: str) -> Tuple[str, str]:
        cut = spec.rfind(":")
        if cut <= 0 or cut == len(spec) - 1:
            raise LoaderError(
                f"bad component spec {spec!r}: expected LOCATION:ClassName")
        location, class_name = spec[:cut], spec[cut + 1:]
        if not class_name.isidentifier():
            raise LoaderError(f"bad class name {class_name!r} in {spec!r}")
        return location, class_name

    def _resolve_path(self, location: str) -> str:
        if os.path.isabs(location) and os.path.exists(location):
            return location
        for base in self.search_paths:
            candidate = os.path.join(base, location)
            if os.path.exists(candidate):
                return candidate
        raise LoaderError(
            f"component source {location!r} not found on search paths "
            f"{self.search_paths}")

    def _load_from_file(self, path: str, class_name: str) -> Type:
        try:
            mtime = os.path.getmtime(path)
        except OSError as exc:
            raise LoaderError(f"cannot stat {path!r}: {exc}") from exc
        entry = self._cache.get(path)
        if entry is not None and entry.mtime == mtime:
            self.cache_hits += 1
            namespace = entry.namespace
        else:
            namespace = {"__name__": f"pia_loaded_{os.path.basename(path)}",
                         "__file__": path}
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                code = compile(source, path, "exec")
                exec(code, namespace)    # noqa: S102 - that's the job
            except LoaderError:
                raise
            except Exception as exc:
                raise LoaderError(
                    f"executing {path!r} failed: {exc}") from exc
            self._cache[path] = _CacheEntry(mtime, namespace)
        cls = namespace.get(class_name)
        if cls is None:
            raise LoaderError(f"{path!r} defines no class {class_name!r}")
        return cls

    @staticmethod
    def _load_from_module(module_name: str, class_name: str) -> Type:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise LoaderError(
                f"cannot import module {module_name!r}: {exc}") from exc
        cls = getattr(module, class_name, None)
        if cls is None:
            raise LoaderError(
                f"module {module_name!r} defines no class {class_name!r}")
        return cls
