"""Unified simulation telemetry: metrics, structured tracing, run reports.

The paper's evaluation is built from run statistics — stall counts
(Fig. 3), safe-time traffic (Fig. 4), per-link byte totals (Table 1).
This package gives those numbers one home: a :class:`Telemetry` instance
shared by every layer of a simulation feeds a :class:`MetricsRegistry`
(counters, gauges, wall-clock timers) and a bounded :class:`TraceBuffer`
of typed records; :func:`run_report` assembles both into a
:class:`RunReport` rendered as text or JSON.

Zero dependencies, deterministic under the in-memory transport, and a
one-attribute-read no-op path when disabled — cheap enough to leave on.
"""

from .merge import (
    merge_counters,
    merge_gauges,
    merge_histograms,
    merge_link_rows,
    merge_timings,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Timer,
)
from .report import RunReport, run_report
from .telemetry import NULL_TELEMETRY, Telemetry
from .trace import TraceBuffer, TraceKind, TraceRecord

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsRegistry",
    "Timer",
    "NULL_TELEMETRY", "Telemetry",
    "TraceBuffer", "TraceKind", "TraceRecord",
    "RunReport", "run_report",
    "merge_counters", "merge_gauges", "merge_histograms",
    "merge_link_rows", "merge_timings",
]
