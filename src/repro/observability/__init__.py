"""Unified simulation telemetry: metrics, structured tracing, run reports.

The paper's evaluation is built from run statistics — stall counts
(Fig. 3), safe-time traffic (Fig. 4), per-link byte totals (Table 1).
This package gives those numbers one home: a :class:`Telemetry` instance
shared by every layer of a simulation feeds a :class:`MetricsRegistry`
(counters, gauges, wall-clock timers) and a bounded :class:`TraceBuffer`
of typed records; :func:`run_report` assembles both into a
:class:`RunReport` rendered as text or JSON.

On top of the raw records sits the causal layer: every data-plane
message carries a :mod:`span <repro.observability.spans>` context, so
send/receive/dispatch records across nodes link into chains —
exportable as a Chrome-trace/Perfetto timeline (:mod:`.export`),
profiled into per-peer stall attribution, and observable live for
multiprocess runs (:mod:`.live`).

Zero dependencies, deterministic under the in-memory transport, and a
one-attribute-read no-op path when disabled — cheap enough to leave on.
"""

from .export import (
    chrome_trace,
    stall_attribution,
    validate_chrome_trace,
    write_chrome_trace,
)
from .flight import FlightRecorder, flight_path
from .health import LinkHealthMonitor, attach_health, finalize_health
from .merge import (
    merge_counters,
    merge_gauges,
    merge_health_rows,
    merge_histograms,
    merge_link_rows,
    merge_series,
    merge_timings,
    merge_trace_records,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Timer,
    snapshot_quantile,
)
from .report import RunReport, run_report
from .timeseries import TimeSeries, TimeSeriesRecorder
from .spans import (
    SpanMinter,
    causal_chains,
    ensure_context,
    span_details,
    span_origin,
)
from .telemetry import NULL_TELEMETRY, Telemetry
from .trace import TraceBuffer, TraceKind, TraceRecord

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsRegistry",
    "Timer", "snapshot_quantile",
    "NULL_TELEMETRY", "Telemetry",
    "TraceBuffer", "TraceKind", "TraceRecord",
    "RunReport", "run_report",
    "FlightRecorder", "flight_path",
    "LinkHealthMonitor", "attach_health", "finalize_health",
    "TimeSeries", "TimeSeriesRecorder",
    "SpanMinter", "causal_chains", "ensure_context", "span_details",
    "span_origin",
    "chrome_trace", "stall_attribution", "validate_chrome_trace",
    "write_chrome_trace",
    "merge_counters", "merge_gauges", "merge_health_rows",
    "merge_histograms", "merge_link_rows", "merge_series",
    "merge_timings", "merge_trace_records",
]
