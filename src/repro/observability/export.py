"""Timeline export and trace profiling.

Renders a run's structured trace as a Chrome-trace-event JSON document —
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` —
with nodes mapped to process rows, subsystems and links to thread rows,
and the causal spans of :mod:`repro.observability.spans` drawn as flow
arrows from each ``MSG_SEND`` to its ``MSG_RECV`` deliveries.  Two views
of the same records exist: ``virtual`` places events at the virtual time
they describe (the paper's currency), ``wall`` at the wall clock they
were recorded (which is where the parallel executors' overlap becomes
visible).

The same linked trace also drives :func:`stall_attribution`: a profiler
pass charging every virtual-time interval a subsystem spent parked before
a remote-caused event to the peer node whose message (and the grant that
released it) ended the wait.  The pass aggregates per virtual instant,
so it depends only on *which* remote causes reached each subsystem at
each virtual time — a quantity the conservative protocol makes
deterministic — and the table is bit-identical across the cooperative,
threaded and multiprocess executors at the same seed, a direct
Fig. 3/Fig. 4 instrument.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .spans import span_origin
from .trace import TraceKind

#: Virtual/wall seconds are exported as Chrome-trace microseconds.
_US = 1_000_000.0


def trace_records(source) -> List[dict]:
    """Normalise ``source`` into a list of trace-record dicts.

    Accepts a :class:`~.report.RunReport` (its ``trace_records``), a
    :class:`~.telemetry.Telemetry`, a :class:`~.trace.TraceBuffer`, or an
    iterable of :class:`~.trace.TraceRecord`/dicts.
    """
    report_records = getattr(source, "trace_records", None)
    if report_records is not None:
        return list(report_records)
    buffer = getattr(source, "trace_buffer", None)
    if buffer is not None:
        source = buffer
    records = source.records() if hasattr(source, "records") else source
    out = []
    for record in records:
        if isinstance(record, dict):
            out.append(record)
        else:
            out.append(dict(record.to_dict(), wall=record.wall))
    return out


def subject_nodes(source) -> Dict[str, str]:
    """Best-effort subsystem→node mapping from a report-like source."""
    rows = getattr(source, "subsystems", None)
    if not rows:
        return {}
    return {row["name"]: row["node"] for row in rows
            if isinstance(row, dict) and row.get("node") not in (None, "-")}


# ----------------------------------------------------------------------
# stall attribution
# ----------------------------------------------------------------------
def stall_attribution(records, *, nodes: Optional[Dict[str, str]] = None
                      ) -> List[dict]:
    """Charge each subsystem's idle virtual-time gaps to peer nodes.

    Walks every subsystem's dispatch sequence in trace order; whenever a
    dispatched event *delivers* a message from another node, the
    virtual-time gap since the subsystem's previous dispatch is time it
    spent parked at a channel horizon waiting for that peer's traffic
    (the message itself, or the grant that made it safe to pass).  Gaps
    ending in purely local events (``WaitUntil`` delays, local wiring)
    are never charged — including events that merely *inherited* a
    remote cause: a dispatch whose cause span was stamped at an earlier
    virtual time is follow-on work the subsystem scheduled for itself,
    not a wait on the network, so the charge requires the cause's
    ``MSG_SEND`` stamp to equal the dispatch instant.

    ``nodes`` maps subsystem name to its node so co-located traffic can
    be recognised; a record whose cause originates from the subsystem's
    own node is not charged.

    All dispatches sharing one virtual instant are treated as a single
    group: the gap since the previous instant is charged to every peer
    node whose delivery ended it — a merge point needs *all* of its
    inputs before the instant is safe, so simultaneous arrivals share
    the blame.  Together with the stamp rule this makes the table a pure
    function of *which* remote messages reach each subsystem at each
    virtual time — a quantity the conservative protocol fixes — rather
    than of the intra-instant delivery order, which is executor-pacing-
    dependent when two peers' messages carry the same stamp.

    Returns one row per (subsystem, peer node), sorted, with the
    subsystem's worst peers (ties included) flagged ``critical``::

        {"subsystem", "node", "peer_node", "waits", "waited", "critical"}
    """
    nodes = nodes or {}
    dicts = [record if isinstance(record, dict) else record.to_dict()
             for record in records]
    #: Virtual stamp of each span's message (first send wins; retried and
    #: duplicated copies share both the span and the stamp).
    stamps: Dict[str, float] = {}
    for rec in dicts:
        if rec.get("kind") == TraceKind.MSG_SEND and "span" in rec:
            stamps.setdefault(rec["span"], rec.get("time", 0.0))
    last_time: Dict[str, float] = {}
    groups: Dict[str, tuple] = {}   # subject -> (instant, remote origins)
    rows: Dict[tuple, dict] = {}

    def charge(subject: str, instant: float, origins: set) -> None:
        gap = instant - last_time.get(subject, 0.0)
        last_time[subject] = max(last_time.get(subject, 0.0), instant)
        if gap <= 0.0:
            return
        for origin in origins:
            key = (subject, origin)
            row = rows.get(key)
            if row is None:
                own = nodes.get(subject)
                rows[key] = row = {"subsystem": subject,
                                   "node": own if own is not None else "-",
                                   "peer_node": origin,
                                   "waits": 0, "waited": 0.0}
            row["waits"] += 1
            row["waited"] += gap

    for rec in dicts:
        if rec.get("kind") != TraceKind.DISPATCH:
            continue
        subject = rec.get("subject", "")
        time = rec.get("time", 0.0)
        group = groups.get(subject)
        if group is not None and time != group[0]:
            charge(subject, group[0], group[1])
            group = None
        if group is None:
            group = groups[subject] = (time, set())
        span = rec.get("cause")
        if span is None:
            continue
        stamp = stamps.get(span)
        if stamp is not None and stamp != time:
            continue        # inherited cause: planned local follow-on work
        origin = span_origin(span)
        own = nodes.get(subject)
        if own is not None and origin == own:
            continue
        group[1].add(origin)
    for subject, (instant, origins) in groups.items():
        charge(subject, instant, origins)
    ordered = [rows[key] for key in sorted(rows)]
    worst: Dict[str, float] = {}
    for row in ordered:
        worst[row["subsystem"]] = max(worst.get(row["subsystem"], 0.0),
                                      row["waited"])
    for row in ordered:
        row["critical"] = row["waited"] == worst[row["subsystem"]]
    return ordered


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def _link_parts(subject: str):
    src, sep, dst = subject.partition("->")
    return (src, dst) if sep else (None, None)


class _Rows:
    """Stable pid/tid assignment: one process row per node, one thread
    row per subsystem or link."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[tuple, int] = {}
        self.events: List[dict] = []

    def pid(self, node: Optional[str]) -> int:
        name = node if node else "sim"
        pid = self._pids.get(name)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[name] = pid
            self.events.append({"ph": "M", "name": "process_name",
                                "pid": pid, "tid": 0,
                                "args": {"name": name}})
        return pid

    def tid(self, pid: int, label: str) -> int:
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for (p, __) in self._tids if p == pid) + 1
            self._tids[key] = tid
            self.events.append({"ph": "M", "name": "thread_name",
                                "pid": pid, "tid": tid,
                                "args": {"name": label}})
        return tid


def chrome_trace(source, *, view: str = "virtual",
                 nodes: Optional[Dict[str, str]] = None,
                 series: Optional[dict] = None) -> dict:
    """Render ``source``'s trace as a Chrome-trace-event document.

    ``view`` selects the timebase: ``"virtual"`` (event virtual times;
    stalls get their true virtual duration) or ``"wall"`` (record wall
    clocks, zero-based; shows real executor overlap).  ``nodes`` maps
    subsystem names to node names for process-row placement (derived
    automatically when ``source`` is a :class:`~.report.RunReport`).

    ``series`` adds counter tracks: a map of series name to
    ``{"points": [[t, value], ...]}`` (the shape of
    :attr:`~.report.RunReport.timeseries`, which is picked up
    automatically when ``source`` carries one).  Points are virtual-time
    stamped, so counter tracks render in the ``virtual`` view only; a
    ``node/metric`` key places the track on that node's process row.
    """
    if view not in ("virtual", "wall"):
        raise ValueError(f"view must be 'virtual' or 'wall': {view!r}")
    records = trace_records(source)
    if series is None:
        series = getattr(source, "timeseries", None) or {}
    nodes = dict(nodes or {})
    nodes.update(subject_nodes(source))
    rows = _Rows()
    events = rows.events
    wall0 = min((r.get("wall", 0.0) for r in records
                 if r.get("wall", 0.0) > 0.0), default=0.0)

    def ts_of(rec: dict) -> float:
        if view == "wall":
            return max(0.0, rec.get("wall", 0.0) - wall0) * _US
        return rec.get("time", 0.0) * _US

    for rec in records:
        kind = rec.get("kind")
        subject = rec.get("subject", "")
        ts = ts_of(rec)
        args = {k: v for k, v in rec.items()
                if k not in ("kind", "subject", "wall") and v is not None
                and v != float("inf")}
        if kind in (TraceKind.MSG_SEND, TraceKind.MSG_RECV):
            src, dst = _link_parts(subject)
            if src is None:
                continue
            node = src if kind == TraceKind.MSG_SEND else dst
            # A link subject names nodes directly; fall through the map
            # in case subjects are subsystem-level in some transport.
            pid = rows.pid(nodes.get(node, node))
            tid = rows.tid(pid, f"net {subject}")
            verb = "send" if kind == TraceKind.MSG_SEND else "recv"
            events.append({"ph": "X", "cat": "msg",
                           "name": f"{verb} {rec.get('message_kind', '?')}",
                           "pid": pid, "tid": tid, "ts": ts, "dur": 1,
                           "args": args})
            span = rec.get("span")
            if span is not None:
                flow = {"ph": "s" if kind == TraceKind.MSG_SEND else "f",
                        "cat": "causal", "name": "msg", "id": span,
                        "pid": pid, "tid": tid, "ts": ts}
                if flow["ph"] == "f":
                    flow["bp"] = "e"
                events.append(flow)
            continue
        src, dst = _link_parts(subject)
        if src is not None:
            pid = rows.pid(nodes.get(src, src))
            tid = rows.tid(pid, f"net {subject}")
        else:
            pid = rows.pid(nodes.get(subject))
            tid = rows.tid(pid, subject or "run")
        if kind == TraceKind.STALL and view == "virtual":
            horizon = rec.get("next_event", rec.get("time", 0.0))
            duration = max(0.0, horizon - rec.get("time", 0.0)) * _US
            events.append({"ph": "X", "cat": "stall", "name": "stall",
                           "pid": pid, "tid": tid, "ts": ts,
                           "dur": duration, "args": args})
        else:
            events.append({"ph": "i", "cat": kind or "trace",
                           "name": kind or "trace", "s": "t",
                           "pid": pid, "tid": tid, "ts": ts,
                           "args": args})
    if view == "virtual" and series:
        for name in sorted(series):
            node, sep, metric = name.partition("/")
            pid = rows.pid(node if sep else None)
            label = metric if sep else name
            for point in series[name].get("points", []):
                t, value = point[0], point[1]
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    continue
                events.append({"ph": "C", "cat": "series", "name": label,
                               "pid": pid, "tid": 0, "ts": t * _US,
                               "args": {label: value}})
    return {"displayTimeUnit": "ms",
            "otherData": {"view": view},
            "traceEvents": events}


def write_chrome_trace(path: str, source, *, view: str = "virtual",
                       nodes: Optional[Dict[str, str]] = None,
                       series: Optional[dict] = None) -> dict:
    """Export ``source`` to ``path`` as Chrome-trace JSON; returns the
    document."""
    document = chrome_trace(source, view=view, nodes=nodes, series=series)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return document


#: Event types of the trace-event format this exporter emits.
_KNOWN_PHASES = frozenset("XBEibnesftMC")


def validate_chrome_trace(data) -> List[str]:
    """Check ``data`` against the Chrome trace-event shape.

    Returns a list of problems (empty when valid): structural issues,
    malformed events, and unmatched flow terminations (an ``f`` whose
    ``id`` has no ``s`` — an orphaned causal link).
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    flow_starts = set()
    flow_ends = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            problems.append(f"{where}: bad ph {phase!r}")
            continue
        if phase == "M":
            if "name" not in event:
                problems.append(f"{where}: metadata event without name")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if phase == "C":
            # Counter tracks: a named event whose args are the numeric
            # sample(s) plotted at ts.
            if not event.get("name"):
                problems.append(f"{where}: counter event without name")
            samples = event.get("args")
            if not isinstance(samples, dict) or not samples:
                problems.append(
                    f"{where}: counter event needs non-empty args")
            elif any(isinstance(v, bool) or not isinstance(v, (int, float))
                     for v in samples.values()):
                problems.append(
                    f"{where}: counter args must be numeric")
        if phase in "sft":
            if "id" not in event:
                problems.append(f"{where}: flow event without id")
            elif phase == "s":
                flow_starts.add(event["id"])
            elif phase == "f":
                flow_ends.append((where, event["id"]))
    for where, flow_id in flow_ends:
        if flow_id not in flow_starts:
            problems.append(
                f"{where}: orphaned causal link — flow finish {flow_id!r} "
                "has no start")
    return problems
