"""The flight recorder: an always-on bounded black box.

Full tracing answers "what happened" only when it was switched on before
the interesting run; production post-mortems rarely get that luxury.  The
flight recorder is the other regime: a small ring of *recent* notable
events — stride-sampled dispatches, horizon stalls, wire frames, control
and migration decisions — cheap enough to leave on for every run, and
dumped automatically (as JSONL, one file per process) when something goes
wrong: a worker crash, a failover, a live migration, or a run that fails
to quiesce before its timeout.

Overhead discipline: the dispatch hot loops (see
:mod:`repro.core.scheduler`) do not call into this module per event.
They hoist ``flight.enabled`` once, tick a *local* counter, and only on
every :data:`STRIDE`-th event pay for a :meth:`FlightRecorder.note` —
a few integer ops per dispatch, amortising the append to noise.  The
shared :data:`~repro.observability.telemetry.NULL_TELEMETRY` carries a
disabled recorder, so code never attached to a real telemetry pays one
attribute read, exactly like every other instrumentation site.

Dump location: ``$PIA_FLIGHT_DIR`` when set, else the system temp dir;
one ``pia-flight-<tag>-<pid>.jsonl`` per dumping process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time as _time
from collections import deque
from typing import List, Optional

#: Environment override for where automatic dumps land.
ENV_DIR = "PIA_FLIGHT_DIR"

#: Ring capacity: enough to cover the seconds before a fault without
#: holding a run's whole history.
DEFAULT_CAPACITY = 512

#: Dispatch sampling stride (power of two): the run loops record every
#: STRIDE-th dispatched event.  ``seq & STRIDE_MASK == 0`` is the test
#: the hot loops inline.
STRIDE = 1024
STRIDE_MASK = STRIDE - 1


class FlightRecorder:
    """A bounded ring of recent notable events, cheap enough to leave on."""

    __slots__ = ("enabled", "capacity", "recorded", "dispatch_seq",
                 "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.capacity = capacity
        #: Events ever noted (the ring may have evicted older ones).
        self.recorded = 0
        #: Dispatches ticked by the run loops (they own this counter in a
        #: local and write it back once per run call).
        self.dispatch_seq = 0
        self._events: deque = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    def note(self, code: str, subject: str = "", *, time: float = 0.0,
             **details) -> None:
        """Append one event (no-op while disabled)."""
        if not self.enabled:
            return
        self.recorded += 1
        self._events.append(
            (_time.time(), code, subject, time, details or None))

    def tick_dispatch(self, subject: str, time: float) -> None:
        """Stride-sampled dispatch tick for non-hot dispatch sites.

        The hot run loops inline this logic with a local counter; single
        :meth:`~repro.core.scheduler.Scheduler.step` calls go through
        here."""
        seq = self.dispatch_seq + 1
        self.dispatch_seq = seq
        if not (seq & STRIDE_MASK):
            self.note("dispatch", subject, time=time, seq=seq)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def records(self) -> List[dict]:
        """The ring's contents, oldest first, as dicts."""
        out = []
        for wall, code, subject, time, details in self._events:
            record = {"wall": wall, "code": code, "subject": subject,
                      "time": time}
            if details:
                record["details"] = details
            out.append(record)
        return out

    def clear(self) -> None:
        self._events.clear()
        self.recorded = 0
        self.dispatch_seq = 0

    # ------------------------------------------------------------------
    def dumps(self, *, tag: str = "run", reason: str = "") -> str:
        """The black box as JSONL: a header line, then one line per event."""
        header = {"flight": tag, "reason": reason, "wall": _time.time(),
                  "pid": os.getpid(), "recorded": self.recorded,
                  "capacity": self.capacity,
                  "dispatches": self.dispatch_seq}
        lines = [json.dumps(header, sort_keys=True, default=str)]
        lines.extend(json.dumps(record, sort_keys=True, default=str)
                     for record in self.records())
        return "\n".join(lines) + "\n"

    def dump(self, path: Optional[str] = None, *, tag: str = "run",
             reason: str = "") -> Optional[str]:
        """Best-effort dump to ``path`` (default :func:`flight_path`).

        Returns the path written, or ``None`` when disabled or the write
        fails — a post-mortem aid must never turn a crash into a second
        crash."""
        if not self.enabled:
            return None
        if path is None:
            path = flight_path(tag)
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(self.dumps(tag=tag, reason=reason))
        except OSError:
            return None
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"<FlightRecorder {state} {len(self._events)}/"
                f"{self.capacity} recorded={self.recorded}>")


def flight_path(tag: str) -> str:
    """Where a dump for ``tag`` lands: ``$PIA_FLIGHT_DIR`` or temp dir."""
    base = os.environ.get(ENV_DIR) or tempfile.gettempdir()
    safe = "".join(c if (c.isalnum() or c in "-._") else "_"
                   for c in str(tag)) or "run"
    return os.path.join(base, f"pia-flight-{safe}-{os.getpid()}.jsonl")
