"""Per-directed-link health estimation at the transport boundary.

The ROADMAP's adaptive-channel item needs *online* per-link condition
measurements before any conservative ↔ optimistic switching can happen.
This module is that measurement substrate: a :class:`LinkHealthMonitor`
keeps incremental estimators per directed link — EWMA of the modelled
per-message latency, wall-clock message rate, bytes and frames on the
wire — plus per-destination inbound queue depth, and at report time the
stall-attribution pass is folded in as a per-link stall fraction.

Pay-for-use discipline: nothing runs unless a monitor is attached via
``transport.attach_health(monitor)``.  The estimators then update at the
two places every byte already crosses:

* the **send boundary** — :meth:`~repro.transport.accounting.
  NetworkAccounting.record` / ``record_frame``, which the in-memory,
  TCP and shared-memory transports *and* the batched fast path all
  funnel through (one hook covers every mode);
* the **poll boundary** — each transport's ``poll()`` reports how many
  messages it drained for a node.

:func:`finalize_health` turns the raw rows into scored rows with an
*advisory* channel-mode recommendation (``"optimistic"`` when a link
keeps its receiver parked at horizons, ``"conservative"`` otherwise).
Nothing switches automatically yet; the rows surface in
:class:`~.report.RunReport` for operators and for the future adaptive
layer.  Scores mix modelled (deterministic) and wall-clock (measured)
inputs, so health rows live outside the report's deterministic
projection, like timers.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional, Tuple

#: Smoothing factor for every EWMA estimator.
EWMA_ALPHA = 0.2

#: Inbound-queue depth treated as "fully congested" by the score.
QUEUE_REF = 64

#: Stall fraction beyond which the advisory recommendation flips to the
#: optimistic channel mode (the receiver spends a quarter of its virtual
#: span parked on this link's traffic).
STALL_OPTIMISTIC_THRESHOLD = 0.25


class LinkHealth:
    """Incremental state for one directed link."""

    __slots__ = ("src", "dst", "messages", "frames", "bytes", "delay_total",
                 "ewma_delay", "ewma_gap", "_first_wall", "_last_wall")

    def __init__(self, src: str, dst: str) -> None:
        self.src = src
        self.dst = dst
        self.messages = 0
        self.frames = 0
        self.bytes = 0
        #: Accumulated modelled wire delay (deterministic).
        self.delay_total = 0.0
        #: EWMA of modelled per-message delay (deterministic).
        self.ewma_delay: Optional[float] = None
        #: EWMA of wall-clock gap between frames (measured).
        self.ewma_gap: Optional[float] = None
        self._first_wall: Optional[float] = None
        self._last_wall: Optional[float] = None


class _Inbound:
    """Inbound queue-depth state for one destination node."""

    __slots__ = ("polls", "drained", "peak", "ewma_depth")

    def __init__(self) -> None:
        self.polls = 0
        self.drained = 0
        self.peak = 0
        self.ewma_depth = 0.0


class LinkHealthMonitor:
    """Per-directed-link estimators fed by the transport boundary."""

    def __init__(self, *, alpha: float = EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
        self.alpha = alpha
        self.links: Dict[Tuple[str, str], LinkHealth] = {}
        self.inbound: Dict[str, _Inbound] = {}

    # ------------------------------------------------------------------
    def _link(self, src: str, dst: str) -> LinkHealth:
        key = (src, dst)
        link = self.links.get(key)
        if link is None:
            link = self.links[key] = LinkHealth(src, dst)
        return link

    def on_send(self, src: str, dst: str, size: int, messages: int,
                delay: float, *, wall: Optional[float] = None) -> None:
        """Send-boundary hook: one wire frame of ``messages`` messages
        charged ``delay`` modelled seconds (``wall`` is injectable for
        deterministic tests)."""
        link = self._link(src, dst)
        link.frames += 1
        link.messages += messages
        link.bytes += size
        link.delay_total += delay
        alpha = self.alpha
        per_message = delay / messages if messages else delay
        if link.ewma_delay is None:
            link.ewma_delay = per_message
        else:
            link.ewma_delay += alpha * (per_message - link.ewma_delay)
        if wall is None:
            wall = _time.monotonic()
        if link._first_wall is None:
            link._first_wall = wall
        elif link._last_wall is not None:
            gap = wall - link._last_wall
            if link.ewma_gap is None:
                link.ewma_gap = gap
            else:
                link.ewma_gap += alpha * (gap - link.ewma_gap)
        link._last_wall = wall

    def on_poll(self, dst: str, drained: int) -> None:
        """Poll-boundary hook: ``dst`` just drained ``drained`` messages."""
        row = self.inbound.get(dst)
        if row is None:
            row = self.inbound[dst] = _Inbound()
        row.polls += 1
        row.drained += drained
        if drained > row.peak:
            row.peak = drained
        row.ewma_depth += self.alpha * (drained - row.ewma_depth)

    # ------------------------------------------------------------------
    def rows(self) -> List[dict]:
        """Raw measurement rows per directed link, sorted by link.

        ``rate`` is wall-clock messages/second over the link's observed
        span; ``queue_depth``/``queue_peak`` are the destination's
        inbound drain statistics.  Scores are *not* here — they need the
        stall-attribution pass, folded in by :func:`finalize_health`.
        """
        out = []
        for key in sorted(self.links):
            link = self.links[key]
            span = 0.0
            if link._first_wall is not None and link._last_wall is not None:
                span = link._last_wall - link._first_wall
            rate = (link.messages / span) if span > 0.0 else 0.0
            inbound = self.inbound.get(link.dst)
            out.append({
                "src": link.src,
                "dst": link.dst,
                "messages": link.messages,
                "frames": link.frames,
                "bytes": link.bytes,
                "delay": link.delay_total,
                "ewma_delay": (0.0 if link.ewma_delay is None
                               else link.ewma_delay),
                "rate": rate,
                "queue_depth": (inbound.ewma_depth if inbound else 0.0),
                "queue_peak": (inbound.peak if inbound else 0),
            })
        return out

    def reset(self) -> None:
        self.links.clear()
        self.inbound.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LinkHealthMonitor links={len(self.links)}>"


# ----------------------------------------------------------------------
# report-time folding
# ----------------------------------------------------------------------
def finalize_health(rows: List[dict], *,
                    stall_attribution: Optional[List[dict]] = None,
                    subsystems: Optional[List[dict]] = None) -> List[dict]:
    """Score raw monitor rows against the run's stall attribution.

    For each directed link ``src -> dst``, the stall fraction is the
    virtual time ``dst``'s subsystems spent parked waiting on ``src``
    (per the report's stall-attribution table) over ``dst``'s virtual
    span.  The health score starts at 1.0 and is docked for stalling
    (weight 0.6), inbound congestion (0.25) and latency dominance
    (0.15); the recommendation flips to ``"optimistic"`` once the stall
    fraction crosses :data:`STALL_OPTIMISTIC_THRESHOLD` — a parked
    receiver is exactly the case optimistic channels unblock.
    """
    stall_attribution = stall_attribution or []
    subsystems = subsystems or []
    waited: Dict[Tuple[str, str], float] = {}
    for row in stall_attribution:
        for target in {row.get("node"), row.get("subsystem")}:
            if target in (None, "-"):
                continue
            key = (row.get("peer_node", "-"), target)
            waited[key] = waited.get(key, 0.0) + row.get("waited", 0.0)
    spans: Dict[str, float] = {}
    for row in subsystems:
        for target in {row.get("node"), row.get("name")}:
            if target in (None, "-"):
                continue
            spans[target] = max(spans.get(target, 0.0),
                                row.get("time", 0.0))
    mean_delay = 0.0
    with_delay = [row for row in rows if row.get("ewma_delay", 0.0) > 0.0]
    if with_delay:
        mean_delay = (sum(row["ewma_delay"] for row in with_delay)
                      / len(with_delay))
    out = []
    for row in rows:
        span = spans.get(row["dst"], 0.0)
        stalled = waited.get((row["src"], row["dst"]), 0.0)
        stall_fraction = min(1.0, stalled / span) if span > 0.0 else 0.0
        queue_term = min(1.0, row.get("queue_depth", 0.0) / QUEUE_REF)
        latency_term = 0.0
        if mean_delay > 0.0:
            latency_term = min(1.0, row.get("ewma_delay", 0.0)
                               / (4.0 * mean_delay))
        score = max(0.0, 1.0 - 0.6 * stall_fraction - 0.25 * queue_term
                    - 0.15 * latency_term)
        advice = ("optimistic"
                  if stall_fraction >= STALL_OPTIMISTIC_THRESHOLD
                  else "conservative")
        out.append(dict(row, stall_fraction=round(stall_fraction, 6),
                        score=round(score, 4), recommendation=advice))
    return out


def attach_health(transport, telemetry=None, *,
                  monitor: Optional[LinkHealthMonitor] = None
                  ) -> LinkHealthMonitor:
    """Attach a monitor to ``transport`` (and optionally ``telemetry``).

    Convenience for the common wiring: the transport's accounting layer
    starts feeding the monitor, and the telemetry (when given) exposes it
    to :func:`~.report.run_report`.  Returns the monitor.
    """
    if monitor is None:
        monitor = LinkHealthMonitor()
    transport.attach_health(monitor)
    if telemetry is not None:
        telemetry.health = monitor
    return monitor
