"""Live run introspection: a console view over status snapshots.

The multiprocess executor's supervision loop can publish a JSON
:func:`~repro.distributed.multiprocess.status_snapshot` to a file
(``run(..., status_path="status.json")``), atomically replaced every
``status_interval`` seconds.  This module is the other half: it tails
that file and renders a periodic per-node / per-subsystem table —
local virtual time, next event, queue depth, safe-time horizon, stall
state, which peer is pinning the horizon, and each worker's heartbeat
age — until the snapshot's phase turns ``done``.

Run it next to a live simulation::

    python -m repro.observability.live status.json
    python -m repro.observability.live --once status.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time as _time
from typing import List, Optional


def _fmt(value, *, unit: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}{unit}"
    return f"{value}{unit}"


def render_status(snapshot: dict) -> str:
    """Render one status snapshot as a console block."""
    out: List[str] = []
    phase = snapshot.get("phase", "?")
    header = (f"phase={phase}  global_time="
              f"{_fmt(snapshot.get('global_time'))}  until="
              f"{_fmt(snapshot.get('until'))}")
    out.append(header)
    nodes = snapshot.get("nodes", {})
    for name in sorted(nodes):
        node = nodes[name]
        out.append("")
        out.append(
            f"node {name}: "
            f"{'idle' if node.get('idle') else 'busy'}  "
            f"rounds={_fmt(node.get('rounds'))}  "
            f"pending={_fmt(node.get('pending'))}  "
            f"wire={_fmt(node.get('wire_out'))}/{_fmt(node.get('wire_in'))}  "
            f"heartbeat={_fmt(node.get('heartbeat_age'), unit='s')}")
        rows = node.get("subsystems", [])
        if not rows:
            continue
        headers = ["subsystem", "time", "next", "events", "queue",
                   "horizon", "stalled", "waiting on"]
        table = [[row.get("name", "?"), _fmt(row.get("time")),
                  _fmt(row.get("next_event")), _fmt(row.get("dispatched")),
                  _fmt(row.get("queue_depth")), _fmt(row.get("horizon")),
                  _fmt(row.get("stalled")), _fmt(row.get("waiting_on"))]
                 for row in rows]
        widths = [len(h) for h in headers]
        for row in table:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        line = lambda cells: "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
        out.append("  " + line(headers))
        out.append("  " + "  ".join("-" * w for w in widths))
        out.extend("  " + line(row) for row in table)
    return "\n".join(out)


def read_snapshot(path: str) -> Optional[dict]:
    """Load the snapshot at ``path``; ``None`` when absent/incomplete.

    The writer replaces the file atomically, so a partial read can only
    mean the run has not published yet — both cases are "no data yet".
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def follow(path: str, *, interval: float = 1.0,
           iterations: Optional[int] = None, out=None) -> Optional[dict]:
    """Tail ``path``, printing a rendered view each ``interval`` seconds
    until the snapshot's phase is ``done`` (or ``iterations`` views have
    been printed).  Returns the last snapshot seen."""
    out = out if out is not None else sys.stdout
    printed = 0
    snapshot = None
    while iterations is None or printed < iterations:
        latest = read_snapshot(path)
        if latest is not None:
            snapshot = latest
            print(render_status(snapshot), file=out)
            print("", file=out)
            printed += 1
            if snapshot.get("phase") == "done":
                break
        if iterations is not None and printed >= iterations:
            break
        _time.sleep(interval)
    return snapshot


def follow_ndjson(path: str, *, interval: float = 1.0,
                  iterations: Optional[int] = None,
                  out=None) -> Optional[dict]:
    """The non-TTY tail: emit each *new* snapshot as one JSON line.

    Meant for piping into ``jq``/log shippers: no tables, no redraws,
    one line per distinct snapshot (deduplicated on the writer's
    ``wall`` stamp), until the phase turns ``done`` (or ``iterations``
    lines have been emitted).  Returns the last snapshot seen.
    """
    out = out if out is not None else sys.stdout
    emitted = 0
    snapshot = None
    last_stamp = None
    while iterations is None or emitted < iterations:
        latest = read_snapshot(path)
        if latest is not None:
            stamp = (latest.get("wall"), latest.get("phase"))
            if stamp != last_stamp:
                last_stamp = stamp
                snapshot = latest
                print(json.dumps(latest, sort_keys=True,
                                 separators=(",", ":")), file=out, flush=True)
                emitted += 1
                if latest.get("phase") == "done":
                    break
        if iterations is not None and emitted >= iterations:
            break
        _time.sleep(interval)
    return snapshot


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.live",
        description="Console view over a multiprocess run's status "
                    "snapshots (see MultiprocessCoSimulation.run's "
                    "status_path).")
    parser.add_argument("path", help="status JSON file the run publishes")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between refreshes (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one view and exit")
    parser.add_argument("--follow", action="store_true",
                        help="non-TTY mode: tail snapshots as "
                             "line-delimited JSON (one line per new "
                             "snapshot) instead of rendered tables")
    args = parser.parse_args(argv)
    try:
        if args.once:
            snapshot = read_snapshot(args.path)
            if snapshot is None:
                print(f"no status snapshot at {args.path}",
                      file=sys.stderr)
                return 1
            print(render_status(snapshot))
            return 0
        if args.follow:
            snapshot = follow_ndjson(args.path, interval=args.interval)
        else:
            snapshot = follow(args.path, interval=args.interval)
    except BrokenPipeError:
        # Downstream (`| head`) closed the pipe; that is a normal way
        # to stop tailing, not an error.  Detach stdout so the
        # interpreter's shutdown flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0 if snapshot is not None else 1


if __name__ == "__main__":    # pragma: no cover - exercised via CLI
    sys.exit(main())
