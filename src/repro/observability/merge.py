"""Merging telemetry from several processes into one report.

The multiprocess deployment runs one :class:`~.telemetry.Telemetry` per
worker process; at quiescence each worker serialises its deterministic
snapshot (counters, gauges, histograms, per-link traffic, fault counters,
trace tallies) back to the coordinator, which folds them into a single
:class:`~.report.RunReport` indistinguishable in shape from a
single-process run's.

Merging rules mirror each metric's semantics: counters, histogram mass,
link traffic, trace tallies and timer totals are *additive* across
processes; gauges are point-in-time values, so the merged gauge keeps the
maximum (the only order-free combination that stays meaningful for the
level-style gauges this repo records, e.g. ``executor.rounds``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List


def merge_counters(into: Dict[str, int], add: Dict[str, int]) -> Dict[str, int]:
    """Fold counter map ``add`` into ``into`` (summing); returns ``into``."""
    for name, value in add.items():
        into[name] = into.get(name, 0) + value
    return into


def merge_gauges(into: Dict[str, float], add: Dict[str, float]) -> Dict[str, float]:
    """Fold gauge map ``add`` into ``into`` (keeping the maximum)."""
    for name, value in add.items():
        if name not in into or value > into[name]:
            into[name] = value
    return into


def merge_histograms(into: Dict[str, dict], add: Dict[str, dict]) -> Dict[str, dict]:
    """Fold histogram snapshots ``add`` into ``into``.

    Count, total and per-bucket tallies sum; min/max combine; the mean is
    recomputed from the merged mass.  Snapshots are the dicts produced by
    :meth:`~.metrics.Histogram.snapshot`.
    """
    for name, snap in add.items():
        have = into.get(name)
        if have is None:
            into[name] = {**snap, "buckets": dict(snap["buckets"])}
            continue
        have["count"] += snap["count"]
        have["total"] += snap["total"]
        for bound in ("min", "max"):
            theirs = snap[bound]
            if theirs is None:
                continue
            ours = have[bound]
            better = (min if bound == "min" else max)
            have[bound] = theirs if ours is None else better(ours, theirs)
        have["mean"] = (have["total"] / have["count"]) if have["count"] \
            else None
        buckets = have["buckets"]
        for label, tally in snap["buckets"].items():
            buckets[label] = buckets.get(label, 0) + tally
    return into


def merge_link_rows(rows: Iterable[dict]) -> List[dict]:
    """Combine per-link accounting rows from several transports.

    Rows (``src``/``dst``/``model``/``messages``/``bytes``/``delay``/
    ``frames``) merge by directed link; every transport only accounts the
    traffic it *sent*, so summing never double-counts.  Output is sorted
    by link for deterministic reports.
    """
    merged: Dict[tuple, dict] = {}
    for row in rows:
        key = (row["src"], row["dst"])
        have = merged.get(key)
        if have is None:
            merged[key] = dict(row)
            continue
        have["messages"] += row["messages"]
        have["bytes"] += row["bytes"]
        have["delay"] += row["delay"]
        have["frames"] = have.get("frames", 0) + row.get(
            "frames", row["messages"])
    return [merged[key] for key in sorted(merged)]


def merge_series(per_node: Dict[str, dict]) -> Dict[str, dict]:
    """Fold per-node time-series dumps into one map keyed ``node/name``.

    ``per_node`` maps node name to that worker's
    :meth:`~.timeseries.TimeSeriesRecorder.to_dict` output.  Series from
    different workers sample the same metric names at *their own* round
    boundaries, so points cannot be summed at aligned times; instead
    each series keeps its identity under a ``node/metric`` key — sorted,
    so the merged map is deterministic given the inputs.
    """
    merged: Dict[str, dict] = {}
    for node in sorted(per_node):
        for name in sorted(per_node[node]):
            series = per_node[node][name]
            merged[f"{node}/{name}"] = {
                "points": [list(point) for point in series["points"]]}
    return merged


def merge_health_rows(rows: Iterable[dict]) -> List[dict]:
    """Combine raw link-health rows from several monitors.

    Like :func:`merge_link_rows`, every worker only measures the traffic
    it *sent*, so a directed link normally appears in exactly one input
    row; on collision the additive fields sum, EWMAs take a
    message-weighted average, and queue peaks take the max.  Output is
    sorted by directed link.
    """
    merged: Dict[tuple, dict] = {}
    for row in rows:
        key = (row["src"], row["dst"])
        have = merged.get(key)
        if have is None:
            merged[key] = dict(row)
            continue
        ours, theirs = have["messages"], row["messages"]
        total = ours + theirs
        for ewma in ("ewma_delay", "queue_depth"):
            if total:
                have[ewma] = (have.get(ewma, 0.0) * ours
                              + row.get(ewma, 0.0) * theirs) / total
        for field in ("messages", "frames", "bytes", "delay", "rate"):
            have[field] = have.get(field, 0) + row.get(field, 0)
        have["queue_peak"] = max(have.get("queue_peak", 0),
                                 row.get("queue_peak", 0))
    return [merged[key] for key in sorted(merged)]


def merge_timings(into: Dict[str, dict], add: Dict[str, dict]) -> Dict[str, dict]:
    """Fold timer maps (``total_seconds``/``count``) by summing."""
    for name, row in add.items():
        have = into.get(name)
        if have is None:
            into[name] = dict(row)
        else:
            have["total_seconds"] += row["total_seconds"]
            have["count"] += row["count"]
    return into


def merge_trace_records(per_node: Dict[str, Iterable[dict]]) -> List[dict]:
    """Interleave per-node trace buffers into one stable stream.

    ``per_node`` maps node name to that worker's trace records (the
    dicts from :meth:`~.trace.TraceRecord.to_dict`).  Every record is
    tagged with its node and the streams are merged in ``(time, node,
    seq)`` order — deterministic across runs, and preserving each node's
    own record order (``seq`` is per-telemetry monotone), so per-subject
    subsequences match what a single-process run would record.
    """
    merged: List[dict] = []
    for node in sorted(per_node):
        for record in per_node[node]:
            if record.get("node") != node:
                record = dict(record, node=node)
            merged.append(record)
    merged.sort(key=lambda r: (r.get("time", 0.0), r["node"],
                               r.get("seq", 0)))
    return merged
