"""The metrics registry: counters, gauges and wall-clock timers.

Counters and gauges are *deterministic* under the in-memory transport:
they only record simulation facts (events dispatched, bytes crossing a
link), so two runs of the same scenario produce identical values.  Timers
measure wall-clock seconds and are therefore kept apart — reports exclude
them from the deterministic snapshot by default.

Everything here is plain stdlib Python.  Thread safety is advisory: the
TCP transport increments counters from receiver threads, where a lost
update costs one tick of a statistic, never a wrong simulation result.
"""

from __future__ import annotations

import math as _math
import time as _time
from bisect import bisect_left
from typing import Dict, Optional


class MetricError(ValueError):
    """An invalid metric operation (e.g. decrementing a counter)."""


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        if n < 0:
            raise MetricError(
                f"counter {self.name!r}: cannot increment by {n}")
        self.value += n
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move both ways (queue depths, horizons, times)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of integer-ish samples (batch sizes, frame bytes).

    Buckets are fixed powers of two, so two runs of the same scenario
    produce identical snapshots — histograms belong to the deterministic
    portion of a report, like counters and gauges.
    """

    #: Upper bounds (inclusive) of the power-of-two buckets.
    BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # bisect_left keeps the documented *inclusive* upper bounds: a
        # sample equal to a bound belongs in that bound's bucket (1 in
        # "<=1", 1024 in "<=1024", not overflow).
        self.buckets[bisect_left(self.BOUNDS, value)] += 1

    def snapshot(self) -> dict:
        buckets = {f"<={bound}": self.buckets[i]
                   for i, bound in enumerate(self.BOUNDS)}
        buckets[f">{self.BOUNDS[-1]}"] = self.buckets[-1]
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
            "buckets": buckets,
        }

    def quantile(self, q: float) -> Optional[float]:
        """Deterministic bucket-rank quantile estimate (see
        :func:`snapshot_quantile`)."""
        return snapshot_quantile(self.snapshot(), q)

    def percentiles(self) -> dict:
        """The report trio: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name} n={self.count} total={self.total:g}>"


def snapshot_quantile(snapshot: dict, q: float) -> Optional[float]:
    """Quantile estimate over a histogram *snapshot* dict.

    Works on live :meth:`Histogram.snapshot` output and on cross-process
    snapshots merged by :func:`~.merge.merge_histograms` alike.  The
    estimate is the upper bound of the bucket holding the ``q``-th
    sample rank, clamped into the observed ``[min, max]`` — coarse
    (bucket-resolution) but a pure function of the deterministic bucket
    tallies, so it belongs in diffable reports.  Returns ``None`` for an
    empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1]: {q!r}")
    count = snapshot.get("count", 0)
    if not count:
        return None
    rank = max(1, _math.ceil(count * q))
    buckets = snapshot.get("buckets", {})
    low, high = snapshot.get("min"), snapshot.get("max")
    seen = 0
    for bound in Histogram.BOUNDS:
        seen += buckets.get(f"<={bound}", 0)
        if seen >= rank:
            estimate = float(bound)
            if low is not None:
                estimate = max(estimate, float(low))
            if high is not None:
                estimate = min(estimate, float(high))
            return estimate
    # Rank lands in the overflow bucket: the max is the best bound.
    return float(high) if high is not None else float(Histogram.BOUNDS[-1])


class Timer:
    """Accumulated wall-clock time over any number of timed blocks."""

    __slots__ = ("name", "total", "count", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._started is not None
        self.total += _time.perf_counter() - self._started
        self.count += 1
        self._started = None

    def add(self, seconds: float, blocks: int = 1) -> None:
        """Fold in a duration measured elsewhere."""
        self.total += seconds
        self.count += blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timer {self.name} total={self.total:.6f}s n={self.count}>"


class MetricsRegistry:
    """Lazily creates and owns every metric, keyed by name."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> Timer:
        metric = self.timers.get(name)
        if metric is None:
            metric = self.timers[name] = Timer(name)
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic state: counters, gauges and histograms, sorted."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].snapshot()
                           for name in sorted(self.histograms)},
        }

    def timings(self) -> dict:
        """Wall-clock timers (nondeterministic; reported separately)."""
        return {name: {"total_seconds": self.timers[name].total,
                       "count": self.timers[name].count}
                for name in sorted(self.timers)}

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.timers.clear()
