"""The metrics registry: counters, gauges and wall-clock timers.

Counters and gauges are *deterministic* under the in-memory transport:
they only record simulation facts (events dispatched, bytes crossing a
link), so two runs of the same scenario produce identical values.  Timers
measure wall-clock seconds and are therefore kept apart — reports exclude
them from the deterministic snapshot by default.

Everything here is plain stdlib Python.  Thread safety is advisory: the
TCP transport increments counters from receiver threads, where a lost
update costs one tick of a statistic, never a wrong simulation result.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Optional


class MetricError(ValueError):
    """An invalid metric operation (e.g. decrementing a counter)."""


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        if n < 0:
            raise MetricError(
                f"counter {self.name!r}: cannot increment by {n}")
        self.value += n
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move both ways (queue depths, horizons, times)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value}>"


class Timer:
    """Accumulated wall-clock time over any number of timed blocks."""

    __slots__ = ("name", "total", "count", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._started is not None
        self.total += _time.perf_counter() - self._started
        self.count += 1
        self._started = None

    def add(self, seconds: float, blocks: int = 1) -> None:
        """Fold in a duration measured elsewhere."""
        self.total += seconds
        self.count += blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timer {self.name} total={self.total:.6f}s n={self.count}>"


class MetricsRegistry:
    """Lazily creates and owns every metric, keyed by name."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def timer(self, name: str) -> Timer:
        metric = self.timers.get(name)
        if metric is None:
            metric = self.timers[name] = Timer(name)
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic state: counters and gauges, sorted by name."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
        }

    def timings(self) -> dict:
        """Wall-clock timers (nondeterministic; reported separately)."""
        return {name: {"total_seconds": self.timers[name].total,
                       "count": self.timers[name].count}
                for name in sorted(self.timers)}

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
