"""The run report: one document describing a finished (or paused) run.

Assembles per-subsystem virtual-time progress, stall/rollback/checkpoint
tallies and per-link traffic totals from the telemetry layer and the
simulation objects, and renders them as text or JSON.  The deterministic
portion (:meth:`RunReport.to_dict` without timings) is bit-identical
across two runs of the same scenario under the in-memory transport —
which is what makes reports diffable regression artefacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from . import export as _export
from . import metrics as _metrics
from .health import finalize_health
from .telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class RunReport:
    """The assembled summary of one run."""

    title: str
    #: name, node, time, dispatched, stalls, checkpoints, safe_time_requests
    subsystems: List[dict] = field(default_factory=list)
    #: src, dst, model, messages, bytes, delay, frames
    links: List[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    #: name -> {count, total, min, max, mean, buckets} distributions
    #: (batch sizes, frame bytes); deterministic like counters.
    histograms: dict = field(default_factory=dict)
    #: (straggler_time, snapshot_id, restored_time) per recovery.
    rollbacks: List[dict] = field(default_factory=list)
    #: One :class:`~repro.distributed.migration.MigrationRecord` dict per
    #: live migration or supervised failover (multiprocess runs under
    #: ``failure_policy="migrate"``; empty otherwise).  ``wall_pause`` and
    #: ``snapshot_bytes`` are measurements, not simulation state.
    migrations: List[dict] = field(default_factory=list)
    #: Exact fault/retry counters from the fault injector, when one is
    #: attached — deterministic for a given plan seed, unlike
    #: :attr:`counters` which may lose ticks under thread contention.
    faults: dict = field(default_factory=dict)
    trace_counts: dict = field(default_factory=dict)
    trace_dropped: int = 0
    #: Per-node trace drops (multiprocess runs; empty otherwise).
    trace_dropped_by_node: dict = field(default_factory=dict)
    #: subsystem, node, peer_node, waits, waited, critical — which peer's
    #: traffic each subsystem spent its virtual time waiting for (the
    #: dispatch-gap profiler pass of :func:`.export.stall_attribution`).
    stall_attribution: List[dict] = field(default_factory=list)
    #: The full merged trace (record dicts incl. wall clocks).  Excluded
    #: from to_dict() unless asked for — it is bulky, and the wall field
    #: is nondeterministic.
    trace_records: List[dict] = field(default_factory=list)
    #: Wall-clock timers — nondeterministic, excluded from to_dict()
    #: unless asked for.
    timings: dict = field(default_factory=dict)
    #: Scored per-directed-link health rows (see
    #: :func:`~.health.finalize_health`), populated when a
    #: :class:`~.health.LinkHealthMonitor` was attached.  Rates and
    #: queue depths are wall-clock measurements, so the rows live
    #: outside the deterministic projection, like :attr:`timings`.
    link_health: List[dict] = field(default_factory=list)
    #: ``{name: {"points": [[t, value], ...]}}`` from an attached
    #: :class:`~.timeseries.TimeSeriesRecorder` (multiprocess runs merge
    #: per-worker dumps under ``node/metric`` keys).  Sampling pace is
    #: executor-dependent, so excluded from to_dict() unless asked for.
    timeseries: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self, *, include_timings: bool = False,
                include_trace: bool = False,
                include_health: bool = False,
                include_series: bool = False) -> dict:
        data = {
            "title": self.title,
            "subsystems": self.subsystems,
            "links": self.links,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "rollbacks": self.rollbacks,
            "migrations": self.migrations,
            "faults": self.faults,
            "trace": {"counts": self.trace_counts,
                      "dropped": self.trace_dropped,
                      "dropped_by_node": self.trace_dropped_by_node},
            "stall_attribution": self.stall_attribution,
        }
        if include_timings:
            data["timings"] = self.timings
        if include_health:
            data["link_health"] = self.link_health
        if include_series:
            data["timeseries"] = self.timeseries
        if include_trace:
            # Bulky and wall-clock-bearing; opt-in only.  The wall field
            # is stripped so the document stays diffable.
            data["trace"]["records"] = [
                {k: v for k, v in record.items() if k != "wall"}
                for record in self.trace_records]
        return data

    def to_json(self, *, include_timings: bool = False,
                indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(include_timings=include_timings),
                          indent=indent, sort_keys=True)

    def save_json(self, path: str, **kwargs) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(**kwargs) + "\n")

    # ------------------------------------------------------------------
    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def link_totals(self) -> dict:
        return {
            "messages": sum(row["messages"] for row in self.links),
            "bytes": sum(row["bytes"] for row in self.links),
            "delay": sum(row["delay"] for row in self.links),
            "frames": sum(row.get("frames", row["messages"])
                          for row in self.links),
        }

    # ------------------------------------------------------------------
    def render(self) -> str:
        out: List[str] = [f"== RunReport: {self.title} =="]
        if self.subsystems:
            out.append("")
            out.append(_table(
                ["subsystem", "node", "time", "events", "stalls",
                 "ckpts", "st-reqs"],
                [[row["name"], row["node"], f"{row['time']:g}",
                  str(row["dispatched"]), str(row["stalls"]),
                  str(row["checkpoints"]), str(row["safe_time_requests"])]
                 for row in self.subsystems]))
        if self.links:
            out.append("")
            out.append(_table(
                ["link", "model", "msgs", "frames", "bytes", "delay"],
                [[f"{row['src']}->{row['dst']}", row["model"],
                  str(row["messages"]),
                  str(row.get("frames", row["messages"])),
                  str(row["bytes"]), f"{row['delay']:.6g}s"]
                 for row in self.links]))
        if self.rollbacks:
            out.append("")
            out.append(_table(
                ["rollback", "straggler t", "snapshot", "restored to"],
                [[str(i + 1), f"{row['straggler_time']:g}",
                  row["snapshot_id"], f"{row['restored_time']:g}"]
                 for i, row in enumerate(self.rollbacks)]))
        if self.migrations:
            out.append("")
            out.append(_table(
                ["move", "node", "reason", "t", "epoch", "pause",
                 "bytes", "replayed"],
                [[row["kind"], row["node"], row["reason"],
                  f"{row['at_global_time']:g}", str(row["epoch"]),
                  f"{row['wall_pause']:.3f}s", str(row["snapshot_bytes"]),
                  str(row["replayed_messages"])]
                 for row in self.migrations]))
        if self.faults:
            out.append("")
            out.append(_table(
                ["fault/retry", "count"],
                [[name, str(value)]
                 for name, value in sorted(self.faults.items())]))
        if self.counters:
            out.append("")
            out.append(_table(
                ["counter", "value"],
                [[name, str(value)]
                 for name, value in sorted(self.counters.items())]))
        if self.histograms:
            def _q(row, q):
                value = _metrics.snapshot_quantile(row, q)
                return "-" if value is None else f"{value:g}"
            out.append("")
            out.append(_table(
                ["histogram", "n", "mean", "p50", "p95", "p99", "min",
                 "max"],
                [[name, str(row["count"]),
                  "-" if row["mean"] is None else f"{row['mean']:.4g}",
                  _q(row, 0.50), _q(row, 0.95), _q(row, 0.99),
                  "-" if row["min"] is None else f"{row['min']:g}",
                  "-" if row["max"] is None else f"{row['max']:g}"]
                 for name, row in sorted(self.histograms.items())]))
        if self.stall_attribution:
            out.append("")
            out.append(_table(
                ["waiting subsystem", "node", "on peer node", "waits",
                 "waited", "critical"],
                [[row["subsystem"], row["node"], row["peer_node"],
                  str(row["waits"]), f"{row['waited']:g}",
                  "*" if row["critical"] else ""]
                 for row in self.stall_attribution]))
        if self.link_health:
            out.append("")
            out.append(_table(
                ["link health", "msgs", "ewma delay", "rate", "queue",
                 "stall%", "score", "advice"],
                [[f"{row['src']}->{row['dst']}", str(row["messages"]),
                  f"{row['ewma_delay']:.3g}s", f"{row['rate']:.4g}/s",
                  f"{row['queue_depth']:.3g}",
                  f"{100.0 * row['stall_fraction']:.1f}",
                  f"{row['score']:.2f}", row["recommendation"]]
                 for row in self.link_health]))
        if self.timeseries:
            points = sum(len(series["points"])
                         for series in self.timeseries.values())
            out.append("")
            out.append(f"time-series: {len(self.timeseries)} series, "
                       f"{points} points")
        if self.trace_counts:
            out.append("")
            dropped = f" (dropped {self.trace_dropped})" \
                if self.trace_dropped else ""
            if self.trace_dropped_by_node and any(
                    self.trace_dropped_by_node.values()):
                per_node = ", ".join(
                    f"{node}={count}" for node, count
                    in sorted(self.trace_dropped_by_node.items()))
                dropped = f" (dropped {self.trace_dropped}: {per_node})"
            out.append("trace records" + dropped + ": " + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.trace_counts.items())))
        if self.timings:
            out.append("")
            out.append(_table(
                ["timer", "total", "blocks"],
                [[name, f"{row['total_seconds']:.4f}s", str(row["count"])]
                 for name, row in sorted(self.timings.items())]))
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(row) for row in rows])


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _subsystem_row(subsystem) -> dict:
    node = subsystem.node.name if subsystem.node is not None else "-"
    return {
        "name": subsystem.name,
        "node": node,
        "time": subsystem.now,
        "dispatched": subsystem.scheduler.dispatched,
        "stalls": subsystem.scheduler.stalls,
        "checkpoints": len(subsystem.checkpoints),
        "safe_time_requests": sum(ep.safe_time_requests
                                  for ep in subsystem.channels.values()),
    }


def _link_rows(transport) -> List[dict]:
    accounting = getattr(transport, "accounting", None)
    if accounting is None:
        return []
    return [{"src": src, "dst": dst, "model": model, "messages": messages,
             "bytes": nbytes, "delay": delay, "frames": frames}
            for src, dst, model, messages, nbytes, delay, frames
            in accounting.report()]


def run_report(target, *, title: Optional[str] = None) -> RunReport:
    """Build a :class:`RunReport` for a Simulator or CoSimulation.

    ``target`` is duck-typed: anything with a ``subsystems`` mapping (and
    optionally ``transport``/``recovery``) reports as a co-simulation;
    anything with a single ``subsystem`` reports as a single-host run.
    """
    telemetry: Telemetry = getattr(target, "telemetry", NULL_TELEMETRY)
    subsystems = getattr(target, "subsystems", None)
    if subsystems is not None:
        report = RunReport(title or "co-simulation")
        for name in sorted(subsystems):
            report.subsystems.append(_subsystem_row(subsystems[name]))
        transport = getattr(target, "transport", None)
        if transport is not None:
            report.links = _link_rows(transport)
        recovery = getattr(target, "recovery", None)
        if recovery is not None:
            report.rollbacks = [
                {"straggler_time": straggler_time, "snapshot_id": snapshot_id,
                 "restored_time": restored_time}
                for straggler_time, snapshot_id, restored_time
                in recovery.rollbacks]
        injector = getattr(target, "fault_injector", None)
        if injector is None and transport is not None:
            injector = getattr(transport, "fault_injector", None)
        if injector is not None:
            report.faults = injector.summary()
    else:
        subsystem = getattr(target, "subsystem", None)
        if subsystem is None:
            raise TypeError(
                f"cannot report on {type(target).__name__}: expected a "
                "Simulator-like or CoSimulation-like object")
        report = RunReport(title or subsystem.name)
        report.subsystems.append(_subsystem_row(subsystem))
    snapshot = telemetry.registry.snapshot()
    report.counters = snapshot["counters"]
    report.gauges = snapshot["gauges"]
    report.histograms = snapshot.get("histograms", {})
    report.trace_counts = telemetry.trace_buffer.counts_by_kind()
    report.trace_dropped = telemetry.trace_buffer.dropped
    report.trace_records = _export.trace_records(telemetry)
    report.stall_attribution = _export.stall_attribution(
        report.trace_records, nodes=_export.subject_nodes(report))
    report.timings = telemetry.registry.timings()
    health = getattr(telemetry, "health", None)
    if health is not None:
        report.link_health = finalize_health(
            health.rows(), stall_attribution=report.stall_attribution,
            subsystems=report.subsystems)
    series = getattr(telemetry, "series", None)
    if series is not None:
        report.timeseries = series.to_dict()
    return report
