"""HTTP exposition of live telemetry: JSON plus Prometheus text format.

The first brick of the session-server dashboard story (ROADMAP): a
stdlib-only HTTP endpoint over the status snapshots a running
:class:`~repro.distributed.multiprocess.MultiprocessCoSimulation`
publishes (``run(..., status_path=...)``), including the streamed
counters, time-series and link-health sections when the run has
``stream_telemetry`` on.  Decoupled by design — the server reads the
snapshot *file*, so it can start before the run, survive it, and watch
any number of sequential runs publishing to the same path.

Routes::

    /            tiny index
    /status.json the full status snapshot as published
    /metrics     Prometheus text exposition (run, node, subsystem,
                 streamed counters/gauges, link-health rows)
    /series.json just the streamed time-series section
    /health.json just the streamed link-health section

Run it next to a live simulation::

    python -m repro.observability.serve status.json --port 8000
"""

from __future__ import annotations

import argparse
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional

from .live import read_snapshot

_LABEL_ESCAPES = str.maketrans({
    "\\": "\\\\", '"': '\\"', "\n": "\\n"})


def _label(value) -> str:
    return f'"{str(value).translate(_LABEL_ESCAPES)}"'


def _name(metric: str) -> str:
    """Sanitise a metric name into the Prometheus grammar."""
    out = [c if (c.isalnum() or c in "_:") else "_" for c in metric]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out) or "_"


def _num(value) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)) and value == value \
            and value not in (float("inf"), float("-inf")):
        return float(value)
    return None


class _Lines:
    """Accumulates exposition lines, emitting TYPE headers lazily."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed = set()

    def add(self, metric: str, value, *, kind: str = "gauge",
            help_text: str = "", **labels) -> None:
        number = _num(value)
        if number is None:
            return
        if metric not in self._typed:
            self._typed.add(metric)
            if help_text:
                self.lines.append(f"# HELP {metric} {help_text}")
            self.lines.append(f"# TYPE {metric} {kind}")
        label_text = ""
        if labels:
            pairs = ",".join(f"{key}={_label(val)}"
                             for key, val in sorted(labels.items()))
            label_text = "{" + pairs + "}"
        if number == int(number) and abs(number) < 1e15:
            rendered = str(int(number))
        else:
            rendered = repr(number)
        self.lines.append(f"{metric}{label_text} {rendered}")


def prometheus_text(snapshot: Optional[dict]) -> str:
    """Render one status snapshot as Prometheus text exposition."""
    out = _Lines()
    snapshot = snapshot or {}
    phase = snapshot.get("phase", "unknown")
    out.add("pia_phase", 1, help_text="Run phase as a one-hot label.",
            phase=phase)
    out.add("pia_global_time", snapshot.get("global_time"),
            help_text="Minimum subsystem virtual time across nodes.")
    out.add("pia_until", snapshot.get("until"),
            help_text="Virtual end bound of the current run.")
    nodes = snapshot.get("nodes", {})
    for name in sorted(nodes):
        node = nodes[name] or {}
        out.add("pia_node_idle", node.get("idle"), node=name)
        out.add("pia_node_rounds", node.get("rounds"), kind="counter",
                node=name)
        out.add("pia_node_pending", node.get("pending"), node=name)
        out.add("pia_node_wire_out_total", node.get("wire_out"),
                kind="counter", node=name)
        out.add("pia_node_wire_in_total", node.get("wire_in"),
                kind="counter", node=name)
        out.add("pia_node_heartbeat_age_seconds",
                node.get("heartbeat_age"), node=name)
        for row in node.get("subsystems", []) or []:
            subsystem = row.get("name", "?")
            out.add("pia_subsystem_time", row.get("time"),
                    node=name, subsystem=subsystem)
            out.add("pia_subsystem_dispatched_total", row.get("dispatched"),
                    kind="counter", node=name, subsystem=subsystem)
            out.add("pia_subsystem_stalls_total", row.get("stalls"),
                    kind="counter", node=name, subsystem=subsystem)
            out.add("pia_subsystem_queue_depth", row.get("queue_depth"),
                    node=name, subsystem=subsystem)
    telemetry = snapshot.get("telemetry", {}) or {}
    for name, value in sorted((telemetry.get("counters") or {}).items()):
        out.add("pia_counter_total", value, kind="counter",
                help_text="Streamed simulation counters, folded across "
                          "workers.", name=_name(name))
    for name, value in sorted((telemetry.get("gauges") or {}).items()):
        out.add("pia_gauge", value,
                help_text="Streamed simulation gauges (max across "
                          "workers).", name=_name(name))
    for row in snapshot.get("health", []) or []:
        labels = {"src": row.get("src", "?"), "dst": row.get("dst", "?")}
        out.add("pia_link_messages_total", row.get("messages"),
                kind="counter", **labels)
        out.add("pia_link_bytes_total", row.get("bytes"), kind="counter",
                **labels)
        out.add("pia_link_ewma_delay_seconds", row.get("ewma_delay"),
                **labels)
        out.add("pia_link_rate", row.get("rate"), **labels)
        out.add("pia_link_queue_depth", row.get("queue_depth"), **labels)
        out.add("pia_link_stall_fraction", row.get("stall_fraction"),
                **labels)
        out.add("pia_link_health_score", row.get("score"),
                help_text="Advisory per-link health in [0, 1].", **labels)
    for name, series in sorted((snapshot.get("series") or {}).items()):
        points = (series or {}).get("points") or []
        if points:
            out.add("pia_series_last", points[-1][1],
                    help_text="Last streamed time-series point per "
                              "series.", name=_name(name))
    return "\n".join(out.lines) + "\n"


class TelemetryServer(ThreadingHTTPServer):
    """An HTTP server bound to a zero-argument snapshot source."""

    daemon_threads = True

    def __init__(self, address, source: Callable[[], Optional[dict]]):
        super().__init__(address, _Handler)
        self.source = source


class _Handler(BaseHTTPRequestHandler):
    server: TelemetryServer

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _json(self, status: int, document) -> None:
        self._reply(status, json.dumps(document, indent=2, sort_keys=True)
                    + "\n", "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        snapshot = self.server.source()
        if path == "/":
            self._reply(
                200,
                "pia telemetry endpoint\n"
                "  /status.json  full status snapshot\n"
                "  /metrics      Prometheus text format\n"
                "  /series.json  streamed time-series\n"
                "  /health.json  streamed link health\n",
                "text/plain; charset=utf-8")
            return
        if path == "/metrics":
            self._reply(200, prometheus_text(snapshot),
                        "text/plain; version=0.0.4; charset=utf-8")
            return
        if snapshot is None:
            self._json(503, {"error": "no status snapshot published yet"})
            return
        if path in ("/status.json", "/status"):
            self._json(200, snapshot)
        elif path in ("/series.json", "/series"):
            self._json(200, {"series": snapshot.get("series", {})})
        elif path in ("/health.json", "/health"):
            self._json(200, {"health": snapshot.get("health", [])})
        else:
            self._json(404, {"error": f"unknown path {path!r}"})


def make_server(source: Callable[[], Optional[dict]], *,
                host: str = "127.0.0.1", port: int = 0) -> TelemetryServer:
    """Bind a :class:`TelemetryServer` over ``source`` (port 0 = ephemeral)."""
    return TelemetryServer((host, port), source)


def serve_status_file(path: str, *, host: str = "127.0.0.1",
                      port: int = 0) -> TelemetryServer:
    """Bind a server over the status snapshot file at ``path``."""
    return make_server(lambda: read_snapshot(path), host=host, port=port)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.serve",
        description="HTTP endpoint (JSON + Prometheus text) over a "
                    "run's live status snapshots (see "
                    "MultiprocessCoSimulation.run's status_path).")
    parser.add_argument("path", help="status JSON file the run publishes")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8000,
                        help="bind port (default 8000; 0 = ephemeral)")
    args = parser.parse_args(argv)
    server = serve_status_file(args.path, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving telemetry for {args.path} on http://{host}:{port}/",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:   # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":    # pragma: no cover - exercised via CLI
    sys.exit(main())
