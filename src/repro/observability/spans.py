"""Causal trace context: spans minted per message, linked across nodes.

Every data-plane :class:`~repro.transport.message.Message` carries a
compact trace context minted by the sending transport — a plain tuple
``(trace_id, span, parent, hop)`` so it pickles as-is across process
boundaries and batch frames:

* ``trace_id`` — the root span of the causal chain (equal to ``span``
  for a chain's first message),
* ``span`` — this message's own identity, ``"<origin-node>:<ordinal>"``,
* ``parent`` — the span of the message whose dispatch caused this send
  (``None`` at a chain root),
* ``hop`` — a Lamport-style hop counter: the number of message edges
  from the chain root.

Span ordinals are per-origin-node counters.  A node's sends are driven
by its own deterministic virtual execution, so for a given scenario and
seed the minted ids are identical under the cooperative, threaded and
multiprocess executors — which is what makes traces (and everything
derived from them, e.g. stall attribution) comparable across deployment
modes.

Safe-time protocol messages (``SAFE_TIME_REQUEST``/``REPLY``/``GRANT``)
are deliberately *not* minted: their emission rate is a property of the
executor's wall-clock pacing, not of the simulation, and minting them
would desynchronise the deterministic ordinal streams above.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover
    from ..transport.message import Message

#: Wire form of one trace context (see module docstring).
TraceContext = Tuple[str, str, Optional[str], int]

#: Message-kind *values* that never carry a trace context (see module
#: docstring).  Kept as the enum values rather than the enum members so
#: this module — which the whole observability package loads — never
#: imports the transport package (the transports import observability).
UNTRACED_KINDS = frozenset((
    "safe-time-request",
    "safe-time-reply",
    "safe-time-grant",
))


class SpanMinter:
    """Mints deterministic span ids, one ordinal stream per origin node.

    Not locked: a node's sends all happen on the thread (or process)
    executing that node, so each per-origin counter is only ever touched
    from one thread.
    """

    def __init__(self) -> None:
        self._ordinals: Dict[str, int] = {}
        #: Migration epoch.  Epoch 0 keeps the legacy ``origin:ordinal``
        #: span format; after a failover bumps the epoch, spans are
        #: namespaced ``origin@eN:ordinal`` so a restarted ordinal stream
        #: can never collide with spans minted before the rollback.
        self.epoch = 0

    def mint(self, origin: str,
             cause: Optional[TraceContext] = None) -> TraceContext:
        """Mint the context for a message sent by ``origin``.

        ``cause`` is the context of the message whose dispatch triggered
        this send (``None`` for a spontaneous, chain-root send).
        """
        ordinal = self._ordinals.get(origin, 0) + 1
        self._ordinals[origin] = ordinal
        stem = origin if self.epoch == 0 else f"{origin}@e{self.epoch}"
        span = f"{stem}:{ordinal}"
        if cause is None:
            return (span, span, None, 0)
        return (cause[0], span, cause[1], cause[3] + 1)

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def ordinals(self) -> Dict[str, int]:
        """Current per-origin counters (transferred on migration so the
        moved node's ordinal stream continues where it left off)."""
        return dict(self._ordinals)

    def load_ordinals(self, ordinals: Dict[str, int]) -> None:
        self._ordinals.update(ordinals)

    def reset(self) -> None:
        self._ordinals.clear()
        self.epoch = 0


def ensure_context(telemetry, message: Message) -> Optional[TraceContext]:
    """Mint ``message``'s trace context at the transport send boundary.

    Idempotent: a message that already carries a context (a fault-plane
    duplicate or retry re-entering the transport) keeps it, so every copy
    of a message shares the original send's span.
    """
    # ``kind.untraced`` is precomputed from UNTRACED_KINDS where the
    # enum is defined (transport.message): reading one attribute beats
    # the Python-level ``Enum.value`` descriptor plus a set probe on
    # every send.
    if message.trace is None and not message.kind.untraced:
        message.trace = telemetry.spans.mint(message.src, telemetry.cause)
    return message.trace


def span_details(context: Optional[TraceContext]) -> dict:
    """The detail kwargs a trace record carries for one context."""
    if context is None:
        return {}
    return {"trace_id": context[0], "span": context[1],
            "parent": context[2], "hop": context[3]}


def span_origin(span: str) -> str:
    """The node that minted ``span`` (the prefix of its id, minus any
    post-failover ``@eN`` epoch namespace)."""
    stem = span.rsplit(":", 1)[0]
    return stem.rsplit("@e", 1)[0]


def _as_dict(record) -> dict:
    return record if isinstance(record, dict) else record.to_dict()


def causal_chains(records) -> dict:
    """Link a trace's message records into causal chains.

    Accepts :class:`~.trace.TraceRecord` objects or their dicts and
    returns::

        {"sends":            {span: send-record},
         "receives":         {span: [recv-record, ...]},
         "orphan_receives":  [recv-record, ...],   # span never sent
         "broken_parents":   [send-record, ...],   # parent span unknown
         "max_hop":          int}

    An orphan receive means a message was drained whose send was never
    recorded — on a complete trace that is a propagation bug (on a
    truncated ring it just means the send was evicted).  Duplicated
    deliveries are *not* orphans: every copy shares the original span,
    so they land as extra entries under ``receives[span]``.
    """
    sends: Dict[str, dict] = {}
    receives: Dict[str, List[dict]] = {}
    orphans: List[dict] = []
    broken: List[dict] = []
    max_hop = 0
    dicts = [_as_dict(r) for r in records]
    for rec in dicts:
        if rec.get("kind") == TraceKind.MSG_SEND and "span" in rec:
            sends.setdefault(rec["span"], rec)
            max_hop = max(max_hop, rec.get("hop", 0))
    for rec in dicts:
        if rec.get("kind") != TraceKind.MSG_RECV or "span" not in rec:
            continue
        span = rec["span"]
        receives.setdefault(span, []).append(rec)
        if span not in sends:
            orphans.append(rec)
    for rec in sends.values():
        parent = rec.get("parent")
        if parent is not None and parent not in sends:
            broken.append(rec)
    return {"sends": sends, "receives": receives,
            "orphan_receives": orphans, "broken_parents": broken,
            "max_hop": max_hop}
