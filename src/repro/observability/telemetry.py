"""The telemetry facade instrumented code talks to.

One :class:`Telemetry` instance is shared by everything belonging to one
simulation (a :class:`~repro.core.simulator.Simulator` or a
:class:`~repro.distributed.executor.CoSimulation`): its scheduler(s),
checkpoint stores, channels, snapshot managers and transport all feed the
same registry and trace buffer, so a single
:class:`~repro.observability.report.RunReport` can describe the whole run.

Instrumentation sites follow one discipline::

    t = self.telemetry
    if t.enabled:
        t.count("scheduler.dispatched")
        t.trace(TraceKind.DISPATCH, time=..., subject=...)

The ``enabled`` check is the no-op fast path: objects never attached to a
real telemetry hold the shared :data:`NULL_TELEMETRY`, whose ``enabled``
is permanently ``False`` — one attribute read per hot-path visit.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
from contextlib import nullcontext
from typing import Optional

from .flight import FlightRecorder
from .metrics import MetricsRegistry, Timer
from .spans import SpanMinter
from .trace import TraceBuffer, TraceRecord

_NULL_TIMER = nullcontext()


class Telemetry:
    """A metrics registry plus a bounded trace buffer, with an on/off gate."""

    def __init__(self, *, enabled: bool = True,
                 trace_capacity: int = 4096) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.trace_buffer = TraceBuffer(trace_capacity)
        #: Deterministic per-origin span ids for causal tracing.
        self.spans = SpanMinter()
        #: Always-on black box (see :mod:`.flight`): stays enabled even
        #: when the metrics/trace gate is off, so post-mortems do not
        #: depend on full telemetry having been switched on.  Disable it
        #: explicitly (``telemetry.flight.enabled = False``) to shed its
        #: last few percent of dispatch cost.
        self.flight = FlightRecorder()
        #: Optional :class:`~.timeseries.TimeSeriesRecorder`, ticked by
        #: the executors at round boundaries when attached.
        self.series = None
        #: Optional :class:`~.health.LinkHealthMonitor`, fed by the
        #: transport send/poll boundary when attached.
        self.health = None
        #: The trace context currently being dispatched, thread-local:
        #: under the threaded executor several node threads share one
        #: Telemetry, and each must see only its own dispatch's cause.
        self._cause = threading.local()
        self._seq = itertools.count(1)

    @property
    def cause(self):
        """Trace context of the in-flight dispatch (``None`` outside one)."""
        return getattr(self._cause, "value", None)

    @cause.setter
    def cause(self, context) -> None:
        self._cause.value = context

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.registry.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample in histogram ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.registry.histogram(name).observe(value)

    def timer(self, name: str):
        """Context manager accumulating wall time under ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return self.registry.timer(name)

    def trace(self, kind: str, *, time: float = 0.0, subject: str = "",
              **details) -> None:
        """Append one structured record (no-op while disabled)."""
        if not self.enabled:
            return
        self.trace_buffer.append(
            TraceRecord(next(self._seq), kind, time, subject, details,
                        wall=_time.time()))

    # ------------------------------------------------------------------
    def attach_series(self, recorder) -> "object":
        """Attach a :class:`~.timeseries.TimeSeriesRecorder`; returns it."""
        self.series = recorder
        return recorder

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget everything recorded so far (the gate is untouched)."""
        self.registry.reset()
        self.trace_buffer.clear()
        self.spans.reset()
        self.flight.clear()
        if self.series is not None:
            self.series.clear()
        if self.health is not None:
            self.health.reset()
        self._seq = itertools.count(1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return (f"<Telemetry {state} counters={len(self.registry.counters)} "
                f"trace={len(self.trace_buffer)}>")


class _NullTelemetry(Telemetry):
    """The shared default sink: permanently disabled.

    Every instrumented object starts pointing here, so instrumentation
    costs one attribute read until a real :class:`Telemetry` is attached.
    Being shared, it must never be switched on.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False, trace_capacity=1)
        # Shared sink: its flight recorder must stay off too, so code
        # never attached to a real Telemetry pays one attribute read.
        self.flight.enabled = False

    def enable(self) -> None:
        raise RuntimeError(
            "NULL_TELEMETRY is the shared disabled sink; attach a real "
            "Telemetry() instance instead of enabling it")


#: Default sink for objects not attached to any simulation's telemetry.
NULL_TELEMETRY = _NullTelemetry()
