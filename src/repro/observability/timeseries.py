"""Streaming time-series over the metrics registry.

The :class:`~.metrics.MetricsRegistry` holds *current* values; this
module adds the time dimension: a :class:`TimeSeriesRecorder` samples
every counter and gauge (or a named subset) into bounded per-metric
rings, on a **virtual-time** cadence, a **wall-clock** cadence, or both.

Sampling is pulled from the executors' round boundaries — never from the
dispatch hot loop — so a run without a recorder attached pays one
``is None`` test per round.  Virtual-cadence samples are deterministic
under the cooperative executor: the sample times are a pure function of
the round structure, which the conservative protocol fixes.  Wall-cadence
samples (and any sampling under the parallel executors, whose round
pacing is OS-dependent) are measurements; like timers, they stay out of
the deterministic report projection.

Multiprocess runs keep one recorder per worker; the coordinator merges
the per-node dumps with :func:`~.merge.merge_series` (series keyed
``node/metric``) and, when streaming is enabled, folds incremental
:meth:`~TimeSeriesRecorder.take_delta` shipments into the live status
snapshots.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Dict, Iterable, List, Optional

#: Ring capacity per series: enough for a long run at a sane cadence
#: without unbounded growth.
DEFAULT_CAPACITY = 1024


class TimeSeries:
    """One metric's bounded ``(time, value)`` ring, oldest first."""

    __slots__ = ("name", "points", "appended")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.points: deque = deque(maxlen=capacity)
        #: Points ever appended (the ring may have evicted older ones);
        #: lets streaming consumers find "new since last shipment".
        self.appended = 0

    def append(self, t: float, value: float) -> None:
        self.points.append((t, value))
        self.appended += 1

    def as_list(self) -> List[list]:
        return [[t, v] for t, v in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeries {self.name} n={len(self.points)}>"


class TimeSeriesRecorder:
    """Samples registry counters and gauges into bounded rings.

    ``virtual_interval`` samples whenever virtual time crosses the next
    multiple of the interval (checked at round boundaries, so one round
    spanning several intervals yields one point — sampling can only
    observe state where the executor surfaces, and skipping keeps the
    cadence monotone).  ``wall_interval`` samples on elapsed wall clock.
    At least one cadence must be set; ``names`` optionally restricts
    which metrics are sampled.
    """

    def __init__(self, *, virtual_interval: Optional[float] = None,
                 wall_interval: Optional[float] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 names: Optional[Iterable[str]] = None) -> None:
        if virtual_interval is None and wall_interval is None:
            virtual_interval = 1.0
        if virtual_interval is not None and virtual_interval <= 0:
            raise ValueError(
                f"virtual_interval must be positive: {virtual_interval!r}")
        if wall_interval is not None and wall_interval <= 0:
            raise ValueError(
                f"wall_interval must be positive: {wall_interval!r}")
        self.virtual_interval = virtual_interval
        self.wall_interval = wall_interval
        self.capacity = capacity
        self.names = frozenset(names) if names is not None else None
        self.series: Dict[str, TimeSeries] = {}
        #: Samples taken (each covers every selected metric).
        self.samples = 0
        self._next_virtual = 0.0 if virtual_interval is not None else None
        self._next_wall: Optional[float] = None
        self._shipped: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name, self.capacity)
        return series

    def sample(self, t: float, registry) -> None:
        """Record one point of every selected counter and gauge at ``t``."""
        self.samples += 1
        names = self.names
        for name, counter in registry.counters.items():
            if names is None or name in names:
                self._series(name).append(t, counter.value)
        for name, gauge in registry.gauges.items():
            if names is None or name in names:
                self._series(name).append(t, gauge.value)

    def tick(self, now: float, registry, *,
             wall: Optional[float] = None) -> bool:
        """Round-boundary hook: sample iff a cadence is due.

        ``now`` is the executor's current virtual time; ``wall`` defaults
        to ``time.monotonic()`` and exists so tests can drive the wall
        cadence deterministically.  Returns whether a sample was taken.
        """
        due = False
        interval = self.virtual_interval
        if interval is not None and now >= self._next_virtual:
            due = True
            self._next_virtual = (now // interval + 1.0) * interval
        interval = self.wall_interval
        if interval is not None:
            if wall is None:
                wall = _time.monotonic()
            if self._next_wall is None:
                self._next_wall = wall + interval
            elif wall >= self._next_wall:
                due = True
                self._next_wall = wall + interval
        if due:
            self.sample(now, registry)
        return due

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """``{name: {"points": [[t, value], ...]}}``, sorted by name."""
        return {name: {"points": self.series[name].as_list()}
                for name in sorted(self.series)}

    def take_delta(self) -> dict:
        """Points appended since the previous call, marking them shipped.

        The streaming path: workers call this at status-probe time and
        ship only the fresh tail of each ring.  Points evicted between
        shipments are simply lost from the stream — the final report
        carries each worker's full (bounded) rings regardless.
        """
        out: Dict[str, List[list]] = {}
        for name in sorted(self.series):
            series = self.series[name]
            fresh = series.appended - self._shipped.get(name, 0)
            if fresh <= 0:
                continue
            points = series.as_list()
            out[name] = points[-fresh:] if fresh < len(points) else points
            self._shipped[name] = series.appended
        return out

    def clear(self) -> None:
        """Forget every point and re-arm both cadences."""
        self.series.clear()
        self._shipped.clear()
        self.samples = 0
        self._next_virtual = (0.0 if self.virtual_interval is not None
                              else None)
        self._next_wall = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TimeSeriesRecorder series={len(self.series)} "
                f"samples={self.samples}>")
