"""The bounded structured trace: typed records of what the kernel did.

Where metrics answer "how many", the trace answers "what happened, in
order": every record carries the virtual time it describes, the subject
(usually a subsystem or a directed link) and kind-specific detail fields.
The buffer is a ring — old records are dropped, never the run — so
tracing is safe to leave on for arbitrarily long simulations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class TraceKind:
    """The record vocabulary.  Plain strings so records JSON-serialise."""

    #: A scheduler dispatched one event.
    DISPATCH = "dispatch"
    #: A scheduler stopped at a channel horizon with work remaining.
    STALL = "stall"
    #: A safe-time grant was accepted from a peer.
    GRANT = "grant"
    #: An optimistic straggler forced a coordinated rollback.
    ROLLBACK = "rollback"
    #: A local checkpoint image was saved.
    CHECKPOINT_SAVE = "checkpoint-save"
    #: A subsystem was restored from a checkpoint image.
    CHECKPOINT_RESTORE = "checkpoint-restore"
    #: A subsystem performed its Chandy-Lamport cut.
    SNAPSHOT_CUT = "snapshot-cut"
    #: A message entered the transport.
    MSG_SEND = "msg-send"
    #: A message was drained from a node's inbox.
    MSG_RECV = "msg-recv"
    #: A fault plan perturbed a message (drop/duplicate/delay/reorder).
    FAULT_INJECT = "fault-inject"
    #: A send attempt was retried (injected drop or real transport error).
    RETRY = "retry"
    #: A scheduled node crash took effect.
    NODE_CRASH = "node-crash"
    #: A failed node was restored from the last consistent snapshot.
    NODE_RECOVER = "node-recover"
    #: A failed node was dropped from the run (graceful degradation).
    NODE_DROP = "node-drop"
    #: A node moved to a fresh worker (live migration or failover).
    MIGRATION = "migration"


#: Core field names details must never shadow (see TraceRecord.to_dict).
_CORE_FIELDS = frozenset(("seq", "kind", "time", "subject"))


@dataclass(frozen=True)
class TraceRecord:
    """One structured observation."""

    seq: int              # per-telemetry monotone ordinal
    kind: str             # a :class:`TraceKind` value
    time: float           # virtual time the record describes
    subject: str          # subsystem, component or "src->dst" link
    details: dict = field(default_factory=dict)
    #: Wall clock at record time — nondeterministic, so excluded from
    #: equality and :meth:`to_dict` (the wall-clock timeline view reads
    #: it straight off the record).
    wall: float = field(default=0.0, compare=False)

    def to_dict(self) -> dict:
        """Flatten into one dict; detail keys that would shadow a core
        field are emitted namespaced as ``detail.<key>`` instead."""
        data = {"seq": self.seq, "kind": self.kind, "time": self.time,
                "subject": self.subject}
        for key, value in self.details.items():
            data[f"detail.{key}" if key in _CORE_FIELDS else key] = value
        return data


class TraceBuffer:
    """A ring buffer of :class:`TraceRecord`; bounded, never blocking."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._records: "deque[TraceRecord]" = deque(maxlen=capacity)
        #: Records ever appended (dropped ones included).
        self.appended = 0

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)
        self.appended += 1

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return self.appended - len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        self._records.clear()
        self.appended = 0
