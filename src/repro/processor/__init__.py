"""The embedded-software substrate: processors, memory, interrupts, ISS."""

from .assembler import AssemblyError, assemble, assemble_with_symbols
from .interrupts import (
    DATA_OFFSET,
    FLAG_OFFSET,
    LINE_STRIDE,
    InterruptController,
    InterruptLine,
)
from .isa import NUM_REGS, OPCODES, Instruction, IssComponent, IssError
from .memory import Memory
from .software import MemRead, MemWrite, SoftwareComponent
from .timing import (
    ARM7,
    GENERIC,
    I960,
    PENTIUM_PRO_200,
    PROFILES,
    BasicBlockTimer,
    ProcessorProfile,
)

__all__ = [
    "ARM7", "AssemblyError", "BasicBlockTimer", "DATA_OFFSET", "FLAG_OFFSET",
    "GENERIC", "I960", "Instruction", "InterruptController", "InterruptLine",
    "IssComponent", "IssError", "LINE_STRIDE", "MemRead", "MemWrite",
    "Memory", "NUM_REGS", "OPCODES", "PENTIUM_PRO_200", "PROFILES",
    "ProcessorProfile", "SoftwareComponent", "assemble",
    "assemble_with_symbols",
]
