"""A two-pass assembler for the tiny ISS.

Syntax, one instruction per line::

    ; comments run to end of line (# also works)
    .equ BUF 0x100          ; named constants
    start:                  ; labels (own line or before an instruction)
        LDI  r1, 10
        LDI  r2, BUF
    loop:
        ST   r1, 0(r2)      ; memory operands are imm(reg)
        ADDI r1, r1, -1
        BNE  r1, r0, loop
        OUT  r1, result     ; ports are bare identifiers
        HALT

Immediates accept decimal, ``0x`` hex, ``-`` signs, ``'c'`` characters,
``.equ`` constants and (for jumps/branches and LDI) label names.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.errors import SimulationError
from .isa import NUM_REGS, OPCODES, Instruction


class AssemblyError(SimulationError):
    """The program text could not be assembled."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):")
_REG_RE = re.compile(r"^[rR](\d+)$")
_MEM_RE = re.compile(r"^(.*)\(\s*[rR](\d+)\s*\)$")
_IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")


def _strip(line: str) -> str:
    for marker in (";", "#"):
        cut = line.find(marker)
        if cut != -1:
            line = line[:cut]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text else []


class _Pass:
    def __init__(self, source: str) -> None:
        self.labels: Dict[str, int] = {}
        self.constants: Dict[str, int] = {}
        #: (line number, opcode, operand strings)
        self.pending: List[Tuple[int, str, List[str]]] = []
        self._scan(source)

    def _scan(self, source: str) -> None:
        index = 0
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip(raw)
            if not line:
                continue
            while True:
                match = _LABEL_RE.match(line)
                if match is None:
                    break
                label = match.group(1)
                if label in self.labels:
                    raise AssemblyError(f"duplicate label {label!r}", lineno)
                self.labels[label] = index
                line = line[match.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            op = parts[0].upper()
            operands = _split_operands(parts[1] if len(parts) > 1 else "")
            if op == ".EQU":
                if len(operands) == 1:
                    operands = parts[1].split()
                if len(operands) != 2:
                    raise AssemblyError(".equ needs NAME VALUE", lineno)
                self.constants[operands[0]] = self._number(operands[1], lineno)
                continue
            if op.startswith("."):
                raise AssemblyError(f"unknown directive {op!r}", lineno)
            if op not in OPCODES:
                raise AssemblyError(f"unknown opcode {op!r}", lineno)
            self.pending.append((lineno, op, operands))
            index += 1

    # ------------------------------------------------------------------
    def _number(self, text: str, lineno: int) -> int:
        text = text.strip()
        if len(text) == 3 and text[0] == text[2] == "'":
            return ord(text[1])
        if text in self.constants:
            return self.constants[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblyError(f"bad number {text!r}", lineno) from None

    def _immediate(self, text: str, lineno: int) -> int:
        if _IDENT_RE.match(text):
            if text in self.labels:
                return self.labels[text]
            if text in self.constants:
                return self.constants[text]
            raise AssemblyError(f"unknown symbol {text!r}", lineno)
        return self._number(text, lineno)

    def _register(self, text: str, lineno: int) -> int:
        match = _REG_RE.match(text)
        if match is None:
            raise AssemblyError(f"expected register, got {text!r}", lineno)
        reg = int(match.group(1))
        if not 0 <= reg < NUM_REGS:
            raise AssemblyError(f"no register r{reg}", lineno)
        return reg

    def _port(self, text: str, lineno: int) -> str:
        if not _IDENT_RE.match(text):
            raise AssemblyError(f"bad port name {text!r}", lineno)
        return text

    def resolve(self) -> List[Instruction]:
        program: List[Instruction] = []
        for lineno, op, operands in self.pending:
            signature, __ = OPCODES[op]
            expected = len(signature) - signature.count("A")  # A eats one
            if signature.count("A"):
                expected += 1
            if len(operands) != expected:
                raise AssemblyError(
                    f"{op} takes {expected} operands, got {len(operands)}",
                    lineno)
            args: List = []
            cursor = 0
            for kind in signature:
                text = operands[cursor]
                cursor += 1
                if kind == "R":
                    args.append(self._register(text, lineno))
                elif kind == "I":
                    args.append(self._immediate(text, lineno))
                elif kind == "P":
                    args.append(self._port(text, lineno))
                elif kind == "A":
                    match = _MEM_RE.match(text)
                    if match is None:
                        raise AssemblyError(
                            f"expected imm(reg), got {text!r}", lineno)
                    offset_text = match.group(1).strip() or "0"
                    args.append(self._immediate(offset_text, lineno))
                    args.append(int(match.group(2)))
                else:  # pragma: no cover - signatures are static
                    raise AssemblyError(f"bad signature {kind!r}", lineno)
            program.append(Instruction(op, tuple(args), lineno))
        return program


def assemble(source: str) -> List[Instruction]:
    """Assemble ``source`` into a program for :class:`IssComponent`."""
    return _Pass(source).resolve()


def assemble_with_symbols(source: str):
    """Assemble and also return (labels, constants) for debuggers."""
    p = _Pass(source)
    return p.resolve(), dict(p.labels), dict(p.constants)
