"""Interrupt delivery into processor memory (paper section 2.1.1).

An :class:`InterruptController` is a reactive component sitting between
interrupt sources (device nets) and a processor's memory.  When a line
fires, the controller performs the interrupt handler's memory side
effects — asynchronously, at the interrupt's virtual time: it latches the
payload into a per-line mailbox, sets the line's pending flag, and bumps a
global pending counter.

Those writes go through :meth:`Memory.external_write`, so under the
optimistic policy a firmware that already read one of these addresses at a
later local time triggers a :class:`ConsistencyViolation` — the very
situation Pia resolves by dynamically marking the address synchronous and
rewinding (see :meth:`Simulator.run_with_recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.component import ReactiveComponent
from ..core.errors import ConfigurationError
from ..core.port import PortDirection
from .memory import Memory

#: Layout of one interrupt line's mailbox in processor memory.
LINE_STRIDE = 8          # flag word + data word
FLAG_OFFSET = 0
DATA_OFFSET = 4


@dataclass(frozen=True)
class InterruptLine:
    """One wired interrupt source."""

    name: str
    index: int
    base_addr: int

    @property
    def flag_addr(self) -> int:
        return self.base_addr + FLAG_OFFSET

    @property
    def data_addr(self) -> int:
        return self.base_addr + DATA_OFFSET


class InterruptController(ReactiveComponent):
    """Latches device events into a processor's memory-mapped mailboxes."""

    def __init__(self, name: str, memory: Memory, *,
                 base_addr: int = 0xF000,
                 pending_count_addr: Optional[int] = None) -> None:
        super().__init__(name)
        # The memory belongs to the processor component; it is shared by
        # reference and restored in place there, so it must not be part of
        # this component's own checkpoint image.
        self.memory = memory
        self._infra_keys.add("memory")
        self.base_addr = base_addr
        self.pending_count_addr = pending_count_addr \
            if pending_count_addr is not None else base_addr - 4
        self.lines: Dict[str, InterruptLine] = {}
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def add_line(self, name: str) -> InterruptLine:
        """Wire a new interrupt source; creates the input port ``name``."""
        if name in self.lines:
            raise ConfigurationError(f"{self.name}: duplicate line {name!r}")
        index = len(self.lines)
        line = InterruptLine(name, index,
                             self.base_addr + index * LINE_STRIDE)
        self.lines[name] = line
        self.add_port(name, PortDirection.IN)
        return line

    def line(self, name: str) -> InterruptLine:
        try:
            return self.lines[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no interrupt line {name!r}") from None

    def mark_mailboxes_synchronous(self) -> None:
        """The *static* treatment: declare every mailbox address
        synchronous up front (paper: "if we can statically determine which
        addresses ... are either written or read by interrupt handlers")."""
        table = self.memory.table
        table.mark_range(self.pending_count_addr, self.pending_count_addr + 4)
        for line in self.lines.values():
            table.mark_range(line.base_addr, line.base_addr + LINE_STRIDE)

    # ------------------------------------------------------------------
    def on_event(self, port: str, time: float, value) -> None:
        """A device raised ``port`` at virtual ``time``."""
        line = self.line(port)
        payload = value if isinstance(value, int) else 1
        if self.memory.read(line.flag_addr) != 0:
            # Previous interrupt not yet acknowledged: latch is full.
            self.dropped += 1
            return
        self.memory.external_write(line.data_addr, payload & 0xFFFFFFFF, time)
        self.memory.external_write(line.flag_addr, 1, time)
        count = self.memory.read(self.pending_count_addr)
        self.memory.external_write(self.pending_count_addr, count + 1, time)
        self.delivered += 1
