"""A tiny load/store instruction-set simulator.

The paper notes "there is no reason that the component can't be an
instruction set simulator of a particular processor, but we have not yet
devoted any effort to ... implementing such components".  This module
implements that future-work component: a 16-register, 32-bit load/store
machine whose ``IN``/``OUT`` instructions are wired to Pia ports, whose
loads and stores run through the synchronous-address machinery, and whose
per-instruction cycle costs come from the processor profile.

Programs are written in the assembly dialect of
:mod:`repro.processor.assembler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.port import PortDirection
from ..core.process import Advance, Command, Receive, Send, Sync
from ..core.sync import SyncPolicy
from .software import MemRead, MemWrite, SoftwareComponent
from .timing import GENERIC, ProcessorProfile

NUM_REGS = 16
WORD_MASK = 0xFFFFFFFF


class IssError(SimulationError):
    """A fault raised by the simulated processor (bad opcode, div by 0)."""


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction; operands are already resolved."""

    op: str
    args: Tuple = ()
    #: source line, for diagnostics
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op} {', '.join(map(str, self.args))}".strip()


#: opcode -> (operand signature, timing class)
#: signatures: R register, I immediate, A address operand (imm, reg), P port
OPCODES = {
    "ADD": ("RRR", "alu"), "SUB": ("RRR", "alu"), "AND": ("RRR", "alu"),
    "OR": ("RRR", "alu"), "XOR": ("RRR", "alu"), "SHL": ("RRR", "alu"),
    "SHR": ("RRR", "alu"), "SLT": ("RRR", "alu"),
    "MUL": ("RRR", "mul"), "DIV": ("RRR", "div"), "REM": ("RRR", "div"),
    "ADDI": ("RRI", "alu"), "ANDI": ("RRI", "alu"), "ORI": ("RRI", "alu"),
    "SLTI": ("RRI", "alu"),
    "LDI": ("RI", "alu"), "MOV": ("RR", "alu"),
    "LD": ("RA", "load"), "ST": ("RA", "store"),
    "LDB": ("RA", "load"), "STB": ("RA", "store"),
    "BEQ": ("RRI", "branch"), "BNE": ("RRI", "branch"),
    "BLT": ("RRI", "branch"), "BGE": ("RRI", "branch"),
    "JMP": ("I", "branch_taken"), "JAL": ("RI", "call"), "JR": ("R", "ret"),
    "IN": ("RP", "io"), "OUT": ("RP", "io"),
    "SYNC": ("", "sync"), "NOP": ("", "nop"), "HALT": ("", "nop"),
}


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


class IssComponent(SoftwareComponent):
    """A processor component executing an assembled program."""

    def __init__(self, name: str, program: List[Instruction], *,
                 profile: ProcessorProfile = GENERIC,
                 memory_size: int = 64 * 1024,
                 sync_policy: SyncPolicy = SyncPolicy.STATIC,
                 synchronous_addresses=(),
                 ports: Optional[dict] = None,
                 fuel: int = 1_000_000,
                 yield_every: Optional[int] = 25_000) -> None:
        super().__init__(name, profile=profile, memory_size=memory_size,
                         sync_policy=sync_policy,
                         synchronous_addresses=synchronous_addresses)
        # The program is immutable: exclude it from checkpoint images.
        self.program = list(program)
        self._infra_keys.add("program")
        self.fuel = fuel
        #: Scheduling quantum: after this many instructions without a
        #: blocking command, the core synchronises with system time —
        #: bounding the run-ahead of busy-wait loops the way a preemptive
        #: host scheduler would.  ``None`` disables it.
        self.yield_every = yield_every
        self._since_yield = 0
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.instret = 0
        for port_name, direction in (ports or {}).items():
            self.add_port(port_name, PortDirection(direction))

    # ------------------------------------------------------------------
    def firmware(self) -> Iterator[Command]:
        while not self.halted:
            if self.instret >= self.fuel:
                raise IssError(
                    f"{self.name}: out of fuel after {self.instret} "
                    "instructions (runaway program?)")
            if not 0 <= self.pc < len(self.program):
                raise IssError(f"{self.name}: pc {self.pc} outside program")
            instr = self.program[self.pc]
            self.instret += 1
            self._since_yield += 1
            if self.yield_every is not None \
                    and self._since_yield >= self.yield_every:
                self._since_yield = 0
                yield Sync()
            yield from self._execute_instr(instr)

    # ------------------------------------------------------------------
    def _charge(self, timing_class: str) -> Advance:
        return self.timer.spin(self.profile.cycles_for(timing_class))

    def _execute_instr(self, instr: Instruction) -> Iterator[Command]:
        op = instr.op
        a = instr.args
        next_pc = self.pc + 1
        __, timing = OPCODES[op]

        if op in ("ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "SLT",
                  "MUL", "DIV", "REM"):
            lhs, rhs = self.regs[a[1]], self.regs[a[2]]
            self._set(a[0], self._alu(op, lhs, rhs, instr))
        elif op in ("ADDI", "ANDI", "ORI", "SLTI"):
            base = {"ADDI": "ADD", "ANDI": "AND",
                    "ORI": "OR", "SLTI": "SLT"}[op]
            self._set(a[0], self._alu(base, self.regs[a[1]], a[2], instr))
        elif op == "LDI":
            self._set(a[0], a[1])
        elif op == "MOV":
            self._set(a[0], self.regs[a[1]])
        elif op in ("LD", "LDB"):
            width = 1 if op == "LDB" else 4
            addr = (self.regs[a[2]] + a[1]) & WORD_MASK
            value = yield MemRead(addr, width)
            self._set(a[0], value)
        elif op in ("ST", "STB"):
            width = 1 if op == "STB" else 4
            addr = (self.regs[a[2]] + a[1]) & WORD_MASK
            yield MemWrite(addr, self.regs[a[0]], width)
        elif op in ("BEQ", "BNE", "BLT", "BGE"):
            lhs, rhs = _signed(self.regs[a[0]]), _signed(self.regs[a[1]])
            taken = {"BEQ": lhs == rhs, "BNE": lhs != rhs,
                     "BLT": lhs < rhs, "BGE": lhs >= rhs}[op]
            if taken:
                next_pc = a[2]
                timing = "branch_taken"
        elif op == "JMP":
            next_pc = a[0]
        elif op == "JAL":
            self._set(a[0], self.pc + 1)
            next_pc = a[1]
        elif op == "JR":
            next_pc = self.regs[a[0]]
        elif op == "IN":
            __, value = yield Receive(a[1])
            if not isinstance(value, int):
                raise IssError(
                    f"{self.name}: IN {a[1]} received non-integer {value!r}")
            self._set(a[0], value)
        elif op == "OUT":
            yield Send(a[1], self.regs[a[0]] & WORD_MASK)
        elif op == "SYNC":
            yield Sync()
        elif op == "NOP":
            pass
        elif op == "HALT":
            self.halted = True
        else:  # pragma: no cover - assembler validates opcodes
            raise IssError(f"{self.name}: unknown opcode {op!r}")

        yield self._charge(timing)
        self.pc = next_pc

    def _alu(self, op: str, lhs: int, rhs: int, instr: Instruction) -> int:
        if op == "ADD":
            return lhs + rhs
        if op == "SUB":
            return lhs - rhs
        if op == "AND":
            return lhs & rhs
        if op == "OR":
            return lhs | rhs
        if op == "XOR":
            return lhs ^ rhs
        if op == "SHL":
            return lhs << (rhs & 31)
        if op == "SHR":
            return (lhs & WORD_MASK) >> (rhs & 31)
        if op == "SLT":
            return 1 if _signed(lhs) < _signed(rhs) else 0
        if op in ("MUL",):
            return lhs * rhs
        if op in ("DIV", "REM"):
            if rhs == 0:
                raise IssError(
                    f"{self.name}: division by zero at line {instr.line}")
            return lhs // rhs if op == "DIV" else lhs % rhs
        raise IssError(f"bad ALU op {op}")  # pragma: no cover

    def _set(self, reg: int, value: int) -> None:
        if reg != 0:                 # r0 is hardwired to zero
            self.regs[reg] = value & WORD_MASK

    # ------------------------------------------------------------------
    def reg(self, index: int) -> int:
        """Read a register (test/debug convenience)."""
        return self.regs[index]
