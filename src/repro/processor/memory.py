"""Processor-local memory with synchronous-address semantics (paper 2.1.1).

The memory itself is ordinary little-endian byte storage.  What makes it
Pia-specific is the attached :class:`~repro.core.sync.SyncTable`: loads and
stores of *synchronous* addresses force the owning component to level its
local time with system time first, and — under the optimistic policy —
accesses of unmarked addresses are logged so that a late interrupt-handler
write can be detected as a consistency violation.

The sync table is deliberately **shared, not copied**, when a component is
checkpointed: an address marked synchronous after a violation must stay
marked across the rollback, or re-execution would repeat the violation
forever.
"""

from __future__ import annotations

import copy
from typing import Optional

from ..core.errors import SimulationError
from ..core.sync import SyncPolicy, SyncTable


class Memory:
    """Byte-addressable little-endian memory with a sync table."""

    def __init__(self, size: int, *, sync_table: Optional[SyncTable] = None,
                 fill: int = 0) -> None:
        if size <= 0:
            raise SimulationError(f"memory size must be > 0, got {size}")
        self.size = size
        self.data = bytearray([fill & 0xFF]) * size
        self.table = sync_table if sync_table is not None else SyncTable()
        self.reads = 0
        self.writes = 0
        self.external_writes = 0

    # ------------------------------------------------------------------
    def _check_range(self, addr: int, width: int) -> None:
        if width < 1:
            raise SimulationError(f"access width must be >= 1, got {width}")
        if addr < 0 or addr + width > self.size:
            raise SimulationError(
                f"memory access [{addr:#x}, {addr + width:#x}) outside "
                f"[0, {self.size:#x})")

    def read(self, addr: int, width: int = 4) -> int:
        """Raw read; framework code only — firmware goes through commands."""
        self._check_range(addr, width)
        self.reads += 1
        return int.from_bytes(self.data[addr:addr + width], "little")

    def write(self, addr: int, value: int, width: int = 4) -> None:
        self._check_range(addr, width)
        self.writes += 1
        self.data[addr:addr + width] = (value & ((1 << (8 * width)) - 1)) \
            .to_bytes(width, "little")

    def load_bytes(self, addr: int, blob: bytes) -> None:
        """Bulk initialisation (program images, DMA buffers)."""
        self._check_range(addr, max(len(blob), 1))
        self.data[addr:addr + len(blob)] = blob

    def dump_bytes(self, addr: int, length: int) -> bytes:
        self._check_range(addr, max(length, 1))
        return bytes(self.data[addr:addr + length])

    # ------------------------------------------------------------------
    # sync semantics
    # ------------------------------------------------------------------
    def needs_sync(self, addr: int, width: int = 4) -> bool:
        return any(self.table.is_synchronous(a)
                   for a in range(addr, addr + width))

    def record_access(self, addr: int, local_time: float,
                      width: int = 4) -> None:
        for a in range(addr, addr + width):
            self.table.record_access(a, local_time)

    def external_write(self, addr: int, value: int, time: float,
                       width: int = 4) -> None:
        """An asynchronous write (interrupt handler / DMA) at ``time``.

        Raises :class:`~repro.core.errors.ConsistencyViolation` when the
        owning component already consumed a stale value (optimistic
        policy).  The check runs *before* the write so the memory is
        untouched when the simulation rewinds.
        """
        self._check_range(addr, width)
        for a in range(addr, addr + width):
            self.table.check_external_write(a, time)
        self.external_writes += 1
        self.write(addr, value, width)

    # ------------------------------------------------------------------
    def __deepcopy__(self, memo: dict) -> "Memory":
        clone = Memory.__new__(Memory)
        clone.size = self.size
        clone.data = bytearray(self.data)
        clone.table = self.table          # shared by design (see module doc)
        clone.reads = self.reads
        clone.writes = self.writes
        clone.external_writes = self.external_writes
        memo[id(self)] = clone
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Memory {self.size}B {self.table.policy.value}>"
