"""Software components: embedded programs running on a processor model.

"Currently in Pia, processors running software are represented by a
component which has as its behavior the actual software (in Java) that
would run on the embedded [processor]" (paper section 2.1).  Here the
actual software is a Python generator; timing estimates are embedded as
:meth:`BasicBlockTimer.block` commands, and memory is accessed through the
:class:`MemRead`/:class:`MemWrite` commands so the synchronous-address
machinery (and its optimistic violation detection) applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..core.component import BLOCKED, REPLAY_END, ProcessComponent
from ..core.errors import SimulationError
from ..core.process import Command
from ..core.sync import SyncPolicy, SyncTable
from .memory import Memory
from .timing import GENERIC, BasicBlockTimer, ProcessorProfile


@dataclass(frozen=True)
class MemRead(Command):
    """Read ``width`` bytes at ``addr``; resumes with the integer value.

    Synchronous addresses make the component level its local time with
    system time before the read (so every pending interrupt write lands
    first); optimistic addresses are read immediately and logged.
    """

    addr: int
    width: int = 4


@dataclass(frozen=True)
class MemWrite(Command):
    """Write ``value`` (``width`` bytes) at ``addr``; same sync semantics."""

    addr: int
    value: int = 0
    width: int = 4


class SoftwareComponent(ProcessComponent):
    """A processor running firmware, with memory and a timing estimator.

    Subclasses implement :meth:`firmware`.  Inside it:

    * ``yield self.timer.block(alu=5, load=2)`` charges a basic block;
    * ``value = yield MemRead(addr)`` / ``yield MemWrite(addr, value)``
      access memory under the synchronous-address rules;
    * all the core commands (``Send``, ``Receive``, ``Transfer``...) work
      as usual.
    """

    def __init__(self, name: str, *, profile: ProcessorProfile = GENERIC,
                 memory_size: int = 64 * 1024,
                 sync_policy: SyncPolicy = SyncPolicy.STATIC,
                 synchronous_addresses=()) -> None:
        super().__init__(name)
        self._pending_mem: Optional[Command] = None
        self._seal_infra()
        # The table is infrastructure shared across rollbacks.  The memory
        # object is also infrastructure — other components (interrupt
        # controllers, DMA engines) hold references to it, so restores must
        # mutate it in place rather than replace it; its *contents* are
        # snapshotted explicitly below.
        self.sync_table = SyncTable(synchronous_addresses, sync_policy,
                                    owner=name)
        self.memory = Memory(memory_size, sync_table=self.sync_table)
        self._infra_keys.update({"sync_table", "memory"})
        self.profile = profile
        self.timer = BasicBlockTimer(profile)

    # ------------------------------------------------------------------
    def firmware(self) -> Iterator[Command]:
        """The embedded program; override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def run(self) -> Iterator[Command]:
        return self.firmware()

    # ------------------------------------------------------------------
    # memory command execution (the gate/read/write state machine)
    # ------------------------------------------------------------------
    def _execute_extra(self, cmd: Command) -> Any:
        if isinstance(cmd, (MemRead, MemWrite)):
            return self._execute_mem(cmd)
        return super()._execute_extra(cmd)

    def _execute_mem(self, cmd: Command) -> Any:
        if self.replaying:
            __, gated = self.replay_take("gate")
            if gated:
                result = self.block_on_wait(self.local_time)
                if result is BLOCKED:
                    self._pending_mem = cmd
                    return BLOCKED
            # Accesses re-record so the (shared) table's optimistic log is
            # rebuilt for the run-ahead window being replayed.
            self.memory.record_access(cmd.addr, self.local_time, cmd.width)
            if isinstance(cmd, MemRead):
                return self.replay_take("memread")[1]
            return None
        gated = self.memory.needs_sync(cmd.addr, cmd.width) \
            and self.subsystem is not None \
            and self.subsystem.scheduler.now < self.local_time
        self.log_append("gate", gated)
        if gated:
            result = self.block_on_wait(self.local_time)
            assert result is BLOCKED      # live waits always block
            self._pending_mem = cmd
            return BLOCKED
        return self._finish_mem(cmd)

    def _finish_mem(self, cmd: Command) -> Any:
        self.memory.record_access(cmd.addr, self.local_time, cmd.width)
        if isinstance(cmd, MemRead):
            value = self.memory.read(cmd.addr, cmd.width)
            self.log_append("memread", value)
            return value
        self.memory.write(cmd.addr, cmd.value, cmd.width)
        return None

    def _engine(self, resume_value: Any) -> None:
        # A wake that completes a gated memory access must hand the
        # *memory value* to the generator, not the wake time.
        if self._pending_mem is not None and resume_value is not None \
                and not self.replaying:
            cmd = self._pending_mem
            self._pending_mem = None
            resume_value = self._finish_mem(cmd)
        super()._engine(resume_value)

    # ------------------------------------------------------------------
    def snapshot(self):
        snap = super().snapshot()
        snap.extra["pending_mem"] = self._pending_mem
        snap.extra["memory_image"] = (bytes(self.memory.data),
                                      self.memory.reads, self.memory.writes,
                                      self.memory.external_writes)
        return snap

    def restore(self, snap) -> None:
        self._pending_mem = None
        super().restore(snap)
        replayed = self._pending_mem
        expected = snap.extra.get("pending_mem")
        if replayed != expected:
            raise SimulationError(
                f"{self.name}: replay reconstructed pending access "
                f"{replayed!r} but snapshot recorded {expected!r}")
        # Reinstate memory contents in place: other components keep their
        # references to this very object.
        data, reads, writes, external = snap.extra["memory_image"]
        self.memory.data[:] = data
        self.memory.reads = reads
        self.memory.writes = writes
        self.memory.external_writes = external
