"""Basic-block timing estimation (paper section 2.1).

"Specific processors are characterized by their timing characteristics (in
the form of a basic block timing estimator) ...  the timing estimates are
embedded in the source code, and when the simulator encounters one of
these, it updates a version of virtual time."

A :class:`ProcessorProfile` is a cycle table; a :class:`BasicBlockTimer`
turns operation mixes into :class:`~repro.core.process.Advance` commands
the firmware yields, exactly where the paper's Java components embed their
hand-made estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from ..core.errors import ConfigurationError
from ..core.process import Advance


@dataclass(frozen=True)
class ProcessorProfile:
    """Cycle costs of one processor family."""

    name: str
    clock_hz: float
    cycles: Dict[str, int] = field(default_factory=dict)
    default_cycles: int = 1

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"{self.name}: clock must be > 0")

    def cycles_for(self, op: str) -> int:
        return self.cycles.get(op, self.default_cycles)

    def seconds(self, cycles: Union[int, float]) -> float:
        return cycles / self.clock_hz


_BASE_OPS = {
    "alu": 1, "mul": 4, "div": 12, "load": 2, "store": 2, "branch": 2,
    "branch_taken": 3, "call": 4, "ret": 3, "nop": 1, "io": 6, "sync": 2,
}

#: The paper's measurement hosts: Pentium Pro 200 MHz workstations.
PENTIUM_PRO_200 = ProcessorProfile(
    "pentium-pro-200", 200e6,
    dict(_BASE_OPS, mul=3, div=18, load=1, store=1))

#: Intel's i960, the processor of the paper's remote evaluation example.
I960 = ProcessorProfile(
    "i960", 33e6,
    dict(_BASE_OPS, mul=5, div=35, branch_taken=4))

#: A small embedded core of the era, for the handheld unit.
ARM7 = ProcessorProfile(
    "arm7", 25e6,
    dict(_BASE_OPS, mul=4, div=40, load=3, store=2, branch_taken=3))

#: An abstract single-cycle machine for tests.
GENERIC = ProcessorProfile("generic", 1e6, {})

PROFILES = {p.name: p for p in (PENTIUM_PRO_200, I960, ARM7, GENERIC)}


class BasicBlockTimer:
    """Accumulates cycle estimates for basic blocks of firmware."""

    def __init__(self, profile: ProcessorProfile) -> None:
        self.profile = profile
        #: total cycles charged through this timer (for utilisation stats)
        self.total_cycles = 0

    def cycles(self, **op_counts: int) -> int:
        """Cycle cost of a block, e.g. ``cycles(alu=12, load=3, branch=1)``."""
        total = 0
        for op, count in op_counts.items():
            if count < 0:
                raise ConfigurationError(f"negative op count for {op!r}")
            total += self.profile.cycles_for(op) * count
        return total

    def block(self, **op_counts: int) -> Advance:
        """An ``Advance`` worth one basic block — yield it from firmware."""
        cycles = self.cycles(**op_counts)
        self.total_cycles += cycles
        return Advance(self.profile.seconds(cycles))

    def spin(self, cycles: int) -> Advance:
        """An ``Advance`` worth a raw cycle count."""
        if cycles < 0:
            raise ConfigurationError(f"negative cycle count {cycles}")
        self.total_cycles += cycles
        return Advance(self.profile.seconds(cycles))
