"""Communication protocols with multiple detail levels (paper section 2.1.3)."""

from .assertions import ActionRule, AssertionCodec, assertion_level
from .base import (
    HEADER_BYTES,
    INCOMPLETE,
    Protocol,
    ProtocolCodec,
    WireValue,
    reassemble_step,
)
from .bus import FixedWidthBusCodec, TransactionCodec, bus_protocol
from .dma import DmaBlockCodec, DmaBurstCodec, dma_protocol
from .i2c import (
    FAST_MODE_HZ,
    STANDARD_MODE_HZ,
    I2CByteCodec,
    I2CHardwareCodec,
    i2c_protocol,
)
from .library import ProtocolLibrary, default_library, standard_library
from .packetized import PacketCodec, packet_protocol

__all__ = [
    "ActionRule", "AssertionCodec", "DmaBlockCodec", "DmaBurstCodec",
    "FAST_MODE_HZ", "FixedWidthBusCodec", "HEADER_BYTES", "I2CByteCodec",
    "I2CHardwareCodec", "INCOMPLETE", "PacketCodec", "Protocol",
    "ProtocolCodec", "ProtocolLibrary", "STANDARD_MODE_HZ",
    "TransactionCodec", "WireValue", "assertion_level", "bus_protocol",
    "default_library", "dma_protocol", "i2c_protocol", "packet_protocol",
    "reassemble_step", "standard_library",
]
