"""Assertion-based user-defined detail levels (paper section 2, ref [7]).

"In the cases where the user must provide additional instructions for
levels of detail not currently in any library, we allow these to be
entered as a set of assertions which describe the activating conditions,
and results of any action."

An :class:`ActionRule` pairs an *activating condition* — a predicate over
the transfer about to happen — with a *result* describing how the payload
is rendered on the wire: how many chunks, and the delay of each.  Rules
are written as small arithmetic expressions over the variables

``size``
    payload size in bytes;
``chunks``
    the chunk count chosen by the rule (available in ``dt``);
``index``
    the current chunk index (available in ``dt``);
``chunk_size``
    bytes in the current chunk (available in ``dt``).

Example::

    codec = AssertionCodec([
        ActionRule(when="size <= 64", chunks="1", dt="1e-6"),
        ActionRule(when="size > 64", chunks="size / 1024", dt="5e-6 + chunk_size / 20e6"),
    ])
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.errors import ProtocolError
from .base import Protocol, ProtocolCodec
from .bus import _as_bytes

#: Names usable in rule expressions besides the transfer variables.
_SAFE_FUNCS = {
    "min": min, "max": max, "abs": abs, "ceil": math.ceil,
    "floor": math.floor, "sqrt": math.sqrt, "log2": math.log2,
}


def _evaluate(expr: str, variables: Dict[str, Any]) -> Any:
    """Evaluate a rule expression in a sandboxed namespace."""
    if not isinstance(expr, str):
        return expr
    try:
        code = compile(expr, "<action-rule>", "eval")
    except SyntaxError as exc:
        raise ProtocolError(f"bad rule expression {expr!r}: {exc}") from exc
    for name in code.co_names:
        if name not in variables and name not in _SAFE_FUNCS:
            raise ProtocolError(
                f"rule expression {expr!r} references unknown name {name!r}")
    namespace = {"__builtins__": {}}
    namespace.update(_SAFE_FUNCS)
    namespace.update(variables)
    return eval(code, namespace)  # noqa: S307 - sandboxed above


@dataclass
class ActionRule:
    """One assertion: activating condition + rendering result."""

    #: Predicate over ``size``; e.g. ``"size <= 64"``.  ``"True"`` matches all.
    when: str = "True"
    #: Chunk-count expression over ``size``; fractional values round up.
    chunks: str = "1"
    #: Per-chunk delay expression over ``size``/``chunks``/``index``/``chunk_size``.
    dt: str = "0.0"

    def matches(self, size: int) -> bool:
        return bool(_evaluate(self.when, {"size": size}))

    def chunk_count(self, size: int) -> int:
        count = _evaluate(self.chunks, {"size": size})
        count = int(math.ceil(count))
        if count < 1:
            raise ProtocolError(
                f"rule {self.when!r} produced chunk count {count} for "
                f"size {size}")
        return count

    def delay(self, size: int, chunks: int, index: int, chunk_size: int) -> float:
        value = float(_evaluate(self.dt, {
            "size": size, "chunks": chunks, "index": index,
            "chunk_size": chunk_size,
        }))
        if value < 0:
            raise ProtocolError(f"rule {self.when!r} produced negative dt")
        return value


class AssertionCodec(ProtocolCodec):
    """A detail level assembled from :class:`ActionRule` assertions."""

    def __init__(self, rules: List[ActionRule]) -> None:
        if not rules:
            raise ProtocolError("an assertion codec needs at least one rule")
        self.rules = list(rules)

    def _select(self, size: int) -> ActionRule:
        for rule in self.rules:
            if rule.matches(size):
                return rule
        raise ProtocolError(f"no rule's activating condition matched size {size}")

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, "assertion")
        size = len(data)
        rule = self._select(size)
        chunks = rule.chunk_count(size)
        base = size // chunks
        remainder = size % chunks
        offset = 0
        for index in range(chunks):
            length = base + (1 if index < remainder else 0)
            piece = data[offset:offset + length]
            offset += length
            yield rule.delay(size, chunks, index, len(piece)), piece


def assertion_level(protocol: Protocol, level: str,
                    rules: List[ActionRule]) -> Protocol:
    """Attach a user-defined level built from assertions to ``protocol``."""
    protocol.add_level(level, AssertionCodec(rules))
    return protocol
