"""Protocol library foundations: codecs, detail levels, wire framing.

The paper (section 2.1.3) builds "a library of standard communication
protocols, each with several built-in detail levels".  A
:class:`Protocol` is a named family of :class:`ProtocolCodec` objects, one
per detail level.  A codec expands a logical payload into a timed sequence
of *wire values*; the sequence begins with a small self-describing header
so the receiving side can reassemble transfers regardless of — and across —
detail-level switches.

Wire values are plain tuples:

``("HDR", transfer_id, level, nchunks, mode)``
    Announces a transfer of ``nchunks`` data chunks emitted at ``level``.
    ``mode`` is ``"bytes"`` (chunks concatenate) or ``"object"`` (a single
    chunk carries an arbitrary object).

``("CHK", transfer_id, index, data)``
    The ``index``-th chunk of the transfer.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.errors import ProtocolError

WireValue = Tuple[Any, ...]

#: Nominal size in bytes of a wire header (for bandwidth accounting).
HEADER_BYTES = 16


class _IncompleteSentinel:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<incomplete>"


#: Returned by :func:`reassemble_step` while a transfer is still partial.
INCOMPLETE = _IncompleteSentinel()


class ProtocolCodec:
    """One detail level of a protocol.

    Subclasses implement :meth:`chunk_payload`, which splits a payload into
    ``(dt, data)`` pieces; the base class wraps them in the generic framing.
    """

    #: The detail-level name this codec renders (e.g. ``"word"``).
    level = "default"
    #: Nominal wire bytes consumed by one chunk (header excluded).
    chunk_wire_bytes = 0

    #: Fixed virtual-time cost of the header exchange.
    header_time = 0.0

    def expand(self, payload: Any, transfer_id: Any) -> Iterator[Tuple[float, WireValue]]:
        """Yield ``(dt, wire_value)`` for the complete transfer."""
        pieces = list(self.chunk_payload(payload))
        mode = "bytes" if isinstance(payload, (bytes, bytearray, memoryview)) \
            else "object"
        yield self.header_time, ("HDR", transfer_id, self.level, len(pieces), mode)
        for index, (dt, data) in enumerate(pieces):
            yield dt, ("CHK", transfer_id, index, data)

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        """Split ``payload`` into timed data pieces; override per level."""
        raise NotImplementedError

    def payload_size(self, payload: Any) -> int:
        """Logical size of ``payload`` in bytes (best effort for objects)."""
        if isinstance(payload, (bytes, bytearray, memoryview)):
            return len(payload)
        return 64  # nominal size for control objects

    def wire_bytes(self, payload: Any) -> int:
        """Total nominal bytes this codec puts on the wire for ``payload``."""
        pieces = sum(1 for __ in self.chunk_payload(payload))
        per_chunk = self.chunk_wire_bytes or self.payload_size(payload)
        if self.chunk_wire_bytes:
            return HEADER_BYTES + pieces * per_chunk
        return HEADER_BYTES + self.payload_size(payload)

    def transfer_time(self, payload: Any) -> float:
        """Total virtual time one transfer of ``payload`` takes."""
        return self.header_time + sum(dt for dt, __ in self.chunk_payload(payload))


class Protocol:
    """A named family of codecs, one per detail level."""

    def __init__(self, name: str, codecs: Dict[str, ProtocolCodec],
                 *, default_level: Optional[str] = None) -> None:
        if not codecs:
            raise ProtocolError(f"protocol {name}: no codecs given")
        self.name = name
        self._codecs = dict(codecs)
        for level, codec in self._codecs.items():
            codec.level = level
        self.default_level = default_level if default_level is not None \
            else sorted(self._codecs)[0]
        if self.default_level not in self._codecs:
            raise ProtocolError(
                f"protocol {name}: default level {self.default_level!r} "
                "has no codec")

    def levels(self) -> set:
        return set(self._codecs)

    def codec(self, level: str) -> ProtocolCodec:
        try:
            return self._codecs[level]
        except KeyError:
            raise ProtocolError(
                f"protocol {self.name}: no codec for level {level!r} "
                f"(available: {sorted(self._codecs)})") from None

    def add_level(self, level: str, codec: ProtocolCodec) -> None:
        """Register a user-supplied detail level (paper section 2)."""
        codec.level = level
        self._codecs[level] = codec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Protocol {self.name} levels={sorted(self._codecs)}>"


def reassemble_step(partial: Dict[Any, dict], wire: WireValue) -> Any:
    """Advance reassembly with one wire value.

    ``partial`` maps in-flight transfer ids to their accumulation state.
    Returns the completed payload, or :data:`INCOMPLETE`.
    """
    if not isinstance(wire, tuple) or not wire:
        raise ProtocolError(f"malformed wire value: {wire!r}")
    tag = wire[0]
    if tag == "HDR":
        __, transfer_id, level, nchunks, mode = wire
        if nchunks == 0:
            return b"" if mode == "bytes" else None
        partial[transfer_id] = {
            "level": level, "expected": nchunks, "mode": mode, "chunks": {},
        }
        return INCOMPLETE
    if tag == "CHK":
        __, transfer_id, index, data = wire
        state = partial.get(transfer_id)
        if state is None:
            raise ProtocolError(
                f"chunk for unknown transfer {transfer_id!r} "
                "(header lost or duplicated?)")
        if index in state["chunks"]:
            raise ProtocolError(
                f"duplicate chunk {index} for transfer {transfer_id!r}")
        state["chunks"][index] = data
        if len(state["chunks"]) < state["expected"]:
            return INCOMPLETE
        del partial[transfer_id]
        ordered = [state["chunks"][i] for i in range(state["expected"])]
        if state["mode"] == "bytes":
            return b"".join(bytes(piece) for piece in ordered)
        if state["expected"] == 1:
            return ordered[0]
        return ordered
    raise ProtocolError(f"unknown wire tag {tag!r}")
