"""Parallel-bus protocols: word, byte and transaction detail levels.

The evaluation (paper section 4) uses *word passage* — individual four-byte
words passed across the network — as its most detailed transfer mode.  The
codecs here render a logical payload at that granularity, one bus cycle per
word (or byte), or as a single abstract transaction.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from ..core.errors import ProtocolError
from .base import Protocol, ProtocolCodec


def _as_bytes(payload: Any, codec: str) -> bytes:
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return bytes(payload)
    raise ProtocolError(
        f"{codec}: sub-transaction detail levels carry bytes, "
        f"not {type(payload).__name__}")


class FixedWidthBusCodec(ProtocolCodec):
    """Pass ``width`` bytes per bus cycle of ``cycle_time`` seconds."""

    def __init__(self, width: int, cycle_time: float) -> None:
        if width < 1:
            raise ProtocolError(f"bus width must be >= 1, got {width}")
        if cycle_time <= 0:
            raise ProtocolError(f"cycle time must be > 0, got {cycle_time}")
        self.width = width
        self.cycle_time = cycle_time
        self.chunk_wire_bytes = width

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, f"bus/{self.width}")
        for offset in range(0, len(data), self.width):
            yield self.cycle_time, data[offset:offset + self.width]
        if not data:
            return


class TransactionCodec(ProtocolCodec):
    """One abstract transfer: setup overhead plus bandwidth-limited body."""

    def __init__(self, bandwidth: float, overhead: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ProtocolError(f"bandwidth must be > 0, got {bandwidth}")
        self.bandwidth = bandwidth
        self.overhead = overhead

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        size = self.payload_size(payload)
        yield self.overhead + size / self.bandwidth, payload


def bus_protocol(name: str = "bus", *, word_width: int = 4,
                 cycle_time: float = 2e-7,
                 transaction_bandwidth: float = 20e6,
                 transaction_overhead: float = 1e-5) -> Protocol:
    """The standard parallel bus: ``word``, ``byte`` and ``transaction``.

    Defaults approximate a 1998-era 20 MB/s embedded bus: a 4-byte word per
    200 ns cycle.
    """
    return Protocol(name, {
        "word": FixedWidthBusCodec(word_width, cycle_time),
        "byte": FixedWidthBusCodec(1, cycle_time),
        "transaction": TransactionCodec(transaction_bandwidth,
                                        transaction_overhead),
    }, default_level="word")
