"""DMA burst transfers, as used by the WubbleU cellular chip.

The chosen WubbleU architecture (paper section 4) has a cellular
communication ASIC "which transfers packets to the system through DMA".

``word``
    Programmed-I/O style: one bus word at a time.
``burst``
    DMA bursts of ``burst_words`` words with a setup cost per burst.
``block``
    One descriptor-driven block transfer with a single setup cost.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from ..core.errors import ProtocolError
from .base import Protocol, ProtocolCodec
from .bus import FixedWidthBusCodec, _as_bytes


class DmaBurstCodec(ProtocolCodec):
    """Bursts of ``burst_words`` bus words per chunk."""

    def __init__(self, *, word_width: int = 4, burst_words: int = 8,
                 cycle_time: float = 2e-7, setup_time: float = 1e-6) -> None:
        if burst_words < 1:
            raise ProtocolError(f"burst length must be >= 1, got {burst_words}")
        self.word_width = word_width
        self.burst_words = burst_words
        self.cycle_time = cycle_time
        self.setup_time = setup_time
        self.chunk_wire_bytes = word_width * burst_words

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, "dma/burst")
        stride = self.word_width * self.burst_words
        for offset in range(0, len(data), stride):
            piece = data[offset:offset + stride]
            words = -(-len(piece) // self.word_width)
            yield self.setup_time + words * self.cycle_time, piece


class DmaBlockCodec(ProtocolCodec):
    """A whole block moved behind one descriptor."""

    def __init__(self, *, word_width: int = 4, cycle_time: float = 2e-7,
                 setup_time: float = 5e-6) -> None:
        self.word_width = word_width
        self.cycle_time = cycle_time
        self.setup_time = setup_time

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, "dma/block")
        words = -(-len(data) // self.word_width)
        yield self.setup_time + words * self.cycle_time, data


def dma_protocol(name: str = "dma", *, word_width: int = 4,
                 burst_words: int = 8, cycle_time: float = 2e-7,
                 burst_setup: float = 1e-6,
                 block_setup: float = 5e-6) -> Protocol:
    """The DMA protocol family: ``word``, ``burst`` and ``block``.

    The ``word`` level models programmed I/O: each word costs several bus
    cycles of CPU load/store loop, which is what makes DMA worthwhile.
    """
    return Protocol(name, {
        "word": FixedWidthBusCodec(word_width, 5 * cycle_time),
        "burst": DmaBurstCodec(word_width=word_width, burst_words=burst_words,
                               cycle_time=cycle_time, setup_time=burst_setup),
        "block": DmaBlockCodec(word_width=word_width, cycle_time=cycle_time,
                               setup_time=block_setup),
    }, default_level="burst")
