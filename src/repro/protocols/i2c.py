"""An I2C-style serial protocol with hardware, byte and transaction levels.

The paper's switchpoint example (section 2.1.3) switches an
``I2CComponent`` to ``hardwareLevel`` and a ``VidCamComponent`` to
``byteLevel`` — this module provides exactly those levels.

``hardwareLevel``
    Bit-accurate timing: a start condition, then 9 bit-slots per byte
    (8 data bits + acknowledge), then a stop condition.  Wire values are
    still bytes (posting individual bits would multiply event count by
    eight without changing any observable the framework exposes), but the
    per-byte delay is the true 9-bit-slot figure and the start/stop
    conditions appear as explicit zero-length chunks.
``byteLevel``
    One chunk per byte at the effective byte rate.
``transaction``
    The whole message as a single abstract transfer.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from .base import Protocol, ProtocolCodec
from .bus import TransactionCodec, _as_bytes

#: Standard-mode I2C: 100 kbit/s.
STANDARD_MODE_HZ = 100_000
#: Fast-mode I2C: 400 kbit/s.
FAST_MODE_HZ = 400_000


class I2CHardwareCodec(ProtocolCodec):
    """Bit-slot accurate rendering of an I2C write transaction."""

    chunk_wire_bytes = 1

    def __init__(self, scl_hz: int = STANDARD_MODE_HZ) -> None:
        self.scl_hz = scl_hz
        self.bit_time = 1.0 / scl_hz

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, "i2c/hardware")
        last = len(data) - 1
        for index, byte in enumerate(data):
            # 8 data bits + ACK slot per byte.
            dt = 9 * self.bit_time
            if index == 0:
                # Start condition + 7-bit address + R/W bit + ACK slot.
                dt += 10 * self.bit_time
            if index == last:
                dt += self.bit_time   # stop condition
            yield dt, bytes([byte])


class I2CByteCodec(ProtocolCodec):
    """Byte-level rendering: one chunk per data byte, amortised timing."""

    chunk_wire_bytes = 1

    def __init__(self, scl_hz: int = STANDARD_MODE_HZ) -> None:
        self.scl_hz = scl_hz
        self.byte_time = 9.0 / scl_hz

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, "i2c/byte")
        for byte in data:
            yield self.byte_time, bytes([byte])


def i2c_protocol(name: str = "i2c", *, scl_hz: int = STANDARD_MODE_HZ) -> Protocol:
    """The I2C protocol family with the paper's level names."""
    byte_rate = scl_hz / 9.0   # bytes per second including ACK slots
    return Protocol(name, {
        "hardwareLevel": I2CHardwareCodec(scl_hz),
        "byteLevel": I2CByteCodec(scl_hz),
        "transaction": TransactionCodec(byte_rate, overhead=11.0 / scl_hz),
    }, default_level="byteLevel")
