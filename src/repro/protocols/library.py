"""The standard protocol library (paper section 2.1.3).

"We are in the process of building a library of standard communication
protocols, each with several built-in detail levels."  This module is that
library: a registry of ready-made protocol families, extensible with
user-defined ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.errors import ProtocolError
from .base import Protocol
from .bus import bus_protocol
from .dma import dma_protocol
from .i2c import FAST_MODE_HZ, i2c_protocol
from .packetized import packet_protocol


class ProtocolLibrary:
    """A named registry of protocol factories.

    Factories (rather than instances) are stored so every request yields a
    fresh, independently configurable protocol object.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Protocol]] = {}

    def register(self, name: str, factory: Callable[..., Protocol],
                 *, replace: bool = False) -> None:
        if name in self._factories and not replace:
            raise ProtocolError(f"protocol {name!r} already registered")
        self._factories[name] = factory

    def names(self) -> list:
        return sorted(self._factories)

    def get(self, name: str, **params) -> Protocol:
        try:
            factory = self._factories[name]
        except KeyError:
            raise ProtocolError(
                f"no protocol named {name!r} in the library "
                f"(available: {self.names()})") from None
        return factory(name, **params)


def standard_library() -> ProtocolLibrary:
    """The built-in protocols every Pia installation ships with."""
    library = ProtocolLibrary()
    library.register("bus32", lambda name, **kw: bus_protocol(name, **kw))
    library.register("bus8", lambda name, **kw: bus_protocol(
        name, word_width=kw.pop("word_width", 1), **kw))
    library.register("packet", lambda name, **kw: packet_protocol(name, **kw))
    library.register("i2c", lambda name, **kw: i2c_protocol(name, **kw))
    library.register("i2c-fast", lambda name, **kw: i2c_protocol(
        name, scl_hz=kw.pop("scl_hz", FAST_MODE_HZ), **kw))
    library.register("dma", lambda name, **kw: dma_protocol(name, **kw))
    return library


_default_library: Optional[ProtocolLibrary] = None


def default_library() -> ProtocolLibrary:
    """The process-wide shared library instance."""
    global _default_library
    if _default_library is None:
        _default_library = standard_library()
    return _default_library
