"""Packetised transfer: the paper's *packet passage* mode.

In the evaluation (section 4) the alternative to word passage is "packet
passage where the data was sent across the channel in 1KB packets".
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from ..core.errors import ProtocolError
from .base import Protocol, ProtocolCodec
from .bus import FixedWidthBusCodec, TransactionCodec, _as_bytes


class PacketCodec(ProtocolCodec):
    """Split a payload into fixed-size packets.

    Each packet costs ``per_packet_overhead`` (header processing,
    scheduling) plus its bytes at ``bandwidth``.
    """

    def __init__(self, packet_size: int = 1024, *,
                 bandwidth: float = 20e6,
                 per_packet_overhead: float = 5e-6) -> None:
        if packet_size < 1:
            raise ProtocolError(f"packet size must be >= 1, got {packet_size}")
        if bandwidth <= 0:
            raise ProtocolError(f"bandwidth must be > 0, got {bandwidth}")
        self.packet_size = packet_size
        self.bandwidth = bandwidth
        self.per_packet_overhead = per_packet_overhead
        self.chunk_wire_bytes = packet_size

    def chunk_payload(self, payload: Any) -> Iterator[Tuple[float, Any]]:
        data = _as_bytes(payload, f"packet/{self.packet_size}")
        for offset in range(0, len(data), self.packet_size):
            packet = data[offset:offset + self.packet_size]
            yield (self.per_packet_overhead + len(packet) / self.bandwidth,
                   packet)


def packet_protocol(name: str = "packet", *, packet_size: int = 1024,
                    word_width: int = 4, cycle_time: float = 2e-7,
                    bandwidth: float = 20e6,
                    per_packet_overhead: float = 5e-6,
                    transaction_overhead: float = 1e-5) -> Protocol:
    """A link offering ``word``, ``packet`` and ``transaction`` levels.

    This is the protocol family Table 1 sweeps: the same data rendered as
    individual 4-byte words or as 1 KB packets.
    """
    return Protocol(name, {
        "word": FixedWidthBusCodec(word_width, cycle_time),
        "packet": PacketCodec(packet_size, bandwidth=bandwidth,
                              per_packet_overhead=per_packet_overhead),
        "transaction": TransactionCodec(bandwidth, transaction_overhead),
    }, default_level="packet")
