"""Wrappers connecting external design tools to Pia (paper section 2)."""

from .wrapper import ExternalToolComponent, ToolError, python_tool_argv

__all__ = ["ExternalToolComponent", "ToolError", "python_tool_argv"]
