"""Wrapping external design tools into the co-simulation (paper section 2).

"Design tools can have built in support for Pia sockets (as do all the
Chinook tools), but if not, the tools can be connected through a
customized wrapper."

:class:`ExternalToolComponent` is that wrapper: it runs a foreign tool as
a subprocess and speaks a small newline-delimited JSON protocol with it,
so anything that can read stdin and write stdout — a legacy simulator, a
synthesis engine, a checker written in another language — participates in
the simulation as an ordinary component.

The wire protocol (one JSON object per line):

simulator -> tool
    ``{"op": "init", "config": {...}}``      once, before anything else
    ``{"op": "deliver", "port": p, "time": t, "value": v}``
    ``{"op": "save"}`` / ``{"op": "restore", "state": s}``  (optional)
    ``{"op": "quit"}``

tool -> simulator (after init/deliver, a sequence of actions terminated
by a flow op)
    ``{"op": "advance", "dt": seconds}``
    ``{"op": "send", "port": p, "value": v, "delay": seconds}``
    ``{"op": "log", "text": ...}``
    ``{"op": "yield"}``     — done for now, wait for the next delivery
    ``{"op": "halt"}``      — the tool is finished
    ``{"op": "state", "state": s}`` / ``{"op": "ok"}``  — save/restore replies

Values must be JSON-serialisable.  Tools that implement ``save``/
``restore`` participate fully in checkpoint/rollback; for others a restore
reinstates only the wrapper's bookkeeping and the tool keeps running
forward (the same contract as non-Pia-aware hardware).
"""

from __future__ import annotations

import json
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..core.component import ReactiveComponent
from ..core.errors import PiaError
from ..core.port import PortDirection


class ToolError(PiaError):
    """The external tool misbehaved (died, bad protocol, timeout)."""


class ExternalToolComponent(ReactiveComponent):
    """A foreign tool process as a reactive component."""

    def __init__(self, name: str, argv: Sequence[str], *,
                 in_ports: Sequence[str] = ("in",),
                 out_ports: Sequence[str] = ("out",),
                 config: Optional[dict] = None,
                 supports_state: bool = False) -> None:
        super().__init__(name)
        # The subprocess and its pipes are infrastructure, never part of a
        # checkpoint image.
        self._argv = list(argv)
        self._proc: Optional[subprocess.Popen] = None
        self._infra_keys.update({"_argv", "_proc"})
        self.config = dict(config or {})
        self.supports_state = supports_state
        self.tool_log: List[str] = []
        self.halted = False
        self.deliveries = 0
        for port in in_ports:
            self.add_port(port, PortDirection.IN)
        for port in out_ports:
            self.add_port(port, PortDirection.OUT)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def _ensure_process(self) -> subprocess.Popen:
        if self._proc is None or self._proc.poll() is not None:
            raise ToolError(f"{self.name}: tool process is not running")
        return self._proc

    def _spawn(self) -> None:
        try:
            self._proc = subprocess.Popen(
                self._argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                text=True, bufsize=1)
        except OSError as exc:
            raise ToolError(
                f"{self.name}: cannot start {self._argv!r}: {exc}") from exc

    def close(self) -> None:
        """Terminate the tool process (idempotent)."""
        if self._proc is None:
            return
        try:
            if self._proc.poll() is None:
                self._request({"op": "quit"}, expect_reply=False)
                self._proc.wait(timeout=5.0)
        except (ToolError, subprocess.TimeoutExpired, OSError):
            self._proc.kill()
        finally:
            self._proc = None

    def __del__(self):  # pragma: no cover - GC timing
        try:
            if self._proc is not None and self._proc.poll() is None:
                self._proc.kill()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # protocol plumbing
    # ------------------------------------------------------------------
    def _write(self, message: dict) -> None:
        proc = self._ensure_process()
        try:
            assert proc.stdin is not None
            proc.stdin.write(json.dumps(message) + "\n")
            proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise ToolError(f"{self.name}: tool pipe broke: {exc}") from exc

    def _read(self) -> dict:
        proc = self._ensure_process()
        assert proc.stdout is not None
        line = proc.stdout.readline()
        if not line:
            raise ToolError(
                f"{self.name}: tool exited mid-conversation "
                f"(code {proc.poll()})")
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ToolError(
                f"{self.name}: tool spoke garbage: {line!r}") from exc
        if not isinstance(message, dict) or "op" not in message:
            raise ToolError(f"{self.name}: malformed tool message {message!r}")
        return message

    def _request(self, message: dict, *, expect_reply: bool = True) -> None:
        self._write(message)
        if not expect_reply:
            return
        self._drain_actions()

    def _drain_actions(self) -> None:
        """Apply tool actions until a flow op arrives."""
        while True:
            action = self._read()
            op = action["op"]
            if op == "advance":
                self.advance(float(action["dt"]))
            elif op == "send":
                self.send(action["port"], action["value"],
                          float(action.get("delay", 0.0)))
            elif op == "log":
                self.tool_log.append(str(action.get("text", "")))
            elif op == "yield":
                return
            elif op == "halt":
                self.halted = True
                return
            else:
                raise ToolError(
                    f"{self.name}: unknown tool action {op!r}")

    # ------------------------------------------------------------------
    # component behaviour
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._spawn()
        self._request({"op": "init", "config": self.config})

    def on_event(self, port: str, time: float, value: Any) -> None:
        if self.halted:
            return
        self.deliveries += 1
        self._request({"op": "deliver", "port": port, "time": time,
                       "value": value})

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self):
        snap = super().snapshot()
        if self.supports_state and self._proc is not None:
            self._write({"op": "save"})
            reply = self._read()
            if reply.get("op") != "state":
                raise ToolError(
                    f"{self.name}: expected state reply, got {reply!r}")
            snap.extra["tool_state"] = reply.get("state")
        return snap

    def restore(self, snap) -> None:
        super().restore(snap)
        if "tool_state" in snap.extra and self._proc is not None:
            self._write({"op": "restore",
                         "state": snap.extra["tool_state"]})
            reply = self._read()
            if reply.get("op") != "ok":
                raise ToolError(
                    f"{self.name}: tool failed to restore: {reply!r}")
            self.halted = False


def python_tool_argv(script_path: str) -> List[str]:
    """Argv running ``script_path`` under the current interpreter —
    convenient for tools shipped as Python files."""
    return [sys.executable, "-u", script_path]
