"""Inter-node transports: the reproduction's substitute for Java RMI."""

from .accounting import LinkStats, NetworkAccounting
from .inmemory import InMemoryTransport
from .latency import (
    BROADBAND,
    INTERNET,
    LAN,
    PRESETS,
    SAME_HOST,
    LatencyModel,
    preset,
)
from .message import Message, MessageKind, decode, encode, wire_size
from .tcp import TcpTransport

__all__ = [
    "BROADBAND", "INTERNET", "InMemoryTransport", "LAN", "LatencyModel",
    "LinkStats", "Message", "MessageKind", "NetworkAccounting", "PRESETS",
    "SAME_HOST", "TcpTransport", "decode", "encode", "preset", "wire_size",
]
