"""Inter-node transports: the reproduction's substitute for Java RMI."""

from .accounting import LinkStats, NetworkAccounting
from .batch import SendBatcher
from .inmemory import InMemoryTransport
from .latency import (
    BROADBAND,
    INTERNET,
    LAN,
    PRESETS,
    SAME_HOST,
    LatencyModel,
    preset,
)
from .message import (
    BatchFrame,
    Message,
    MessageKind,
    decode,
    decode_any,
    encode,
    encode_batch,
    wire_size,
)
from .tcp import TcpTransport

__all__ = [
    "BROADBAND", "BatchFrame", "INTERNET", "InMemoryTransport", "LAN",
    "LatencyModel", "LinkStats", "Message", "MessageKind",
    "NetworkAccounting", "PRESETS", "SAME_HOST", "SendBatcher",
    "TcpTransport", "decode", "decode_any", "encode", "encode_batch",
    "preset", "wire_size",
]
